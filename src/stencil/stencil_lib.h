// The stencil-computation class library (paper Section 2, Figure 2),
// written in WJ IR through the builder DSL — the code a WootinJ library
// developer would write in restricted Java.
//
// Components (mirroring the class diagram):
//   * StencilSolver (interface marker) with abstract OneDSolver /
//     ThreeDSolver bases; users subclass them (Dif1DSolver per Listing 1,
//     Dif3DSolver for Section 4.1's evaluation);
//   * DiffusionQuantity — the PhysQuantity feature: the 7-point
//     coefficients of the diffusion operator;
//   * FloatGridDblB — double-buffered float grid with periodic indexing;
//   * StencilRunner hierarchy — the Parallelism feature:
//       StencilCPU3DDblB       sequential, double buffering
//       StencilCPU3D_MPI       1-D slab decomposition over MPI ranks
//       StencilGPU3D           all compute on the (simulated) GPU
//       StencilGPU3D_MPI       slabs + GPU per node, halos staged via host
//     every runner's `run(steps)` returns the final grid checksum (f64),
//     the observable that differential tests and benches compare;
//   * the one-point stencil of Listings 3-4 (Generator/Solver interfaces,
//     Stencil base, StencilOnGpuAndMPI) used by the quickstart example.
//
// Host-side composition helpers build the runner object graphs through the
// interpreter, exactly like Listing 2's main method.
#pragma once

#include "interp/interp.h"
#include "ir/builder.h"

namespace wj::stencil {

/// 7-point diffusion coefficients (the PhysQuantity feature).
struct DiffusionCoeffs {
    float cc, cw, ce, cn, cs, cb, ct;

    /// Standard explicit scheme: kappa*dt/dx^2 per axis, center = 1-6k.
    static DiffusionCoeffs forKappa(float kappa, float dt, float dx);
};

/// Registers the library classes (grid, solvers, quantities, runners).
void registerLibrary(ProgramBuilder& pb);

/// Registers the user-level classes of the evaluation apps (Dif1DSolver,
/// Dif3DSolver) — what the paper's *library user* writes.
void registerDiffusionApp(ProgramBuilder& pb);

/// Library + diffusion app in one validated program.
Program buildProgram();

// ---- composition helpers (Listing 2's main-method idiom) -----------------

/// new StencilCPU3DDblB(new Dif3DSolver(), quantity, new FloatGridDblB(nx,ny,nz), seed)
Value makeCpuRunner(Interp& in, int nx, int ny, int nz, const DiffusionCoeffs& c, int seed);

/// Ablation twin of makeCpuRunner: identical math through raw floats
/// instead of ScalarFloat boxes (see bench_abl_boxing).
Value makeCpuRawRunner(Interp& in, int nx, int ny, int nz, const DiffusionCoeffs& c, int seed);

/// MPI runner; nzLocal is the per-rank slab depth.
Value makeMpiRunner(Interp& in, int nx, int ny, int nzLocal, const DiffusionCoeffs& c, int seed);

/// EXTENSION: MPI runner with nonblocking halo exchange overlapped with the
/// interior sweep. Bit-identical results to makeMpiRunner.
Value makeMpiOverlapRunner(Interp& in, int nx, int ny, int nzLocal, const DiffusionCoeffs& c,
                           int seed);

/// GPU runner (whole grid on one simulated device).
Value makeGpuRunner(Interp& in, int nx, int ny, int nz, const DiffusionCoeffs& c, int seed,
                    int blockSize = 128);

/// GPU runner whose kernel stages x-rows through @Shared block memory with
/// syncthreads (requires nx %% blockSize == 0).
Value makeGpuSharedRunner(Interp& in, int nx, int ny, int nz, const DiffusionCoeffs& c,
                          int seed, int blockSize);

/// GPU+MPI runner (slab per rank, one device per rank).
Value makeGpuMpiRunner(Interp& in, int nx, int ny, int nzLocal, const DiffusionCoeffs& c,
                       int seed, int blockSize = 128);

/// 1-D runner for the Listing 1 solver (heat1d example).
Value makeCpu1DRunner(Interp& in, int n, float a, float b, int seed);

/// EXTENSION: three-point cell-chain runner over an array of six-field
/// `Cell` objects (array-of-structs) — the showcase of the proveLayout
/// AoS→SoA pass. Every element access is a field path and every store a
/// fresh `new Cell(...)`, so under WJ_SOA=1 the translator splits the
/// buffers into per-field lanes and the interior sweep vectorizes.
/// run(steps) returns the f64 checksum over all six lanes.
Value makeCellRunner(Interp& in, int n, float ca, float cb, int seed);

/// Host-side reference: the same computation in plain C++ (used by tests to
/// pin the numerics of every platform variant). Returns the checksum.
double referenceDiffusion3D(int nx, int ny, int nz, const DiffusionCoeffs& c, int seed,
                            int steps);

/// Reference for the 1-D solver.
double referenceDiffusion1D(int n, float a, float b, int seed, int steps);

/// Reference for the cell-chain runner (same numerics, same fold order).
double referenceCellChain(int n, float ca, float cb, int seed, int steps);

} // namespace wj::stencil
