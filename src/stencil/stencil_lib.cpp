#include "stencil/stencil_lib.h"

#include <vector>

#include "runtime/rng_hash.h"
#include "support/diagnostics.h"

namespace wj::stencil {

using namespace wj::dsl;

DiffusionCoeffs DiffusionCoeffs::forKappa(float kappa, float dt, float dx) {
    const float k = kappa * dt / (dx * dx);
    return DiffusionCoeffs{1.0f - 6.0f * k, k, k, k, k, k, k};
}

namespace {

Type f32() { return Type::f32(); }
Type f32arr() { return Type::array(Type::f32()); }
Type i32() { return Type::i32(); }
Type f64() { return Type::f64(); }

// The DSL trees are uniquely owned, so every use site builds its own nodes.
// `(z*ny + y)*nx + x` on this-grid fields (FloatGridDblB bodies only).
ExprPtr gridIdx(ExprPtr x, ExprPtr y, ExprPtr z) {
    return add(mul(add(mul(std::move(z), selff("ny")), std::move(y)), selff("nx")), std::move(x));
}

void buildValueClasses(ProgramBuilder& pb) {
    // ScalarFloat — the solver's boxed value (Listing 1). Strict-final and
    // semi-immutable; the JIT flattens it to a bare float.
    {
        auto& c = pb.cls("ScalarFloat").finalClass();
        c.field("v", f32());
        c.ctor().param("v_", f32()).body(blk(setSelf("v", lv("v_"))));
        c.method("val", f32()).body(blk(ret(selff("v"))));
    }
    // DiffusionQuantity — the PhysQuantity feature: 7-point coefficients.
    {
        auto& c = pb.cls("DiffusionQuantity").finalClass();
        for (const char* f : {"cc", "cw", "ce", "cn", "cs", "cb", "ct"}) c.field(f, f32());
        auto& ct = c.ctor();
        for (const char* f : {"cc_", "cw_", "ce_", "cn_", "cs_", "cb_", "ct_"}) ct.param(f, f32());
        ct.body(blk(setSelf("cc", lv("cc_")), setSelf("cw", lv("cw_")), setSelf("ce", lv("ce_")),
                    setSelf("cn", lv("cn_")), setSelf("cs", lv("cs_")), setSelf("cb", lv("cb_")),
                    setSelf("ct", lv("ct_"))));
    }
}

void buildGrid(ProgramBuilder& pb) {
    auto& c = pb.cls("FloatGridDblB").finalClass();
    c.field("cur", f32arr()).field("nxt", f32arr());
    c.field("nx", i32()).field("ny", i32()).field("nz", i32());
    c.ctor()
        .param("nx_", i32())
        .param("ny_", i32())
        .param("nz_", i32())
        .body(blk(setSelf("nx", lv("nx_")), setSelf("ny", lv("ny_")), setSelf("nz", lv("nz_")),
                  setSelf("cur", newArr(f32(), mul(mul(lv("nx_"), lv("ny_")), lv("nz_")))),
                  setSelf("nxt", newArr(f32(), mul(mul(lv("nx_"), lv("ny_")), lv("nz_"))))));

    c.method("idx", i32())
        .param("x", i32())
        .param("y", i32())
        .param("z", i32())
        .body(blk(ret(gridIdx(lv("x"), lv("y"), lv("z")))));

    c.method("get", f32())
        .param("x", i32())
        .param("y", i32())
        .param("z", i32())
        .body(blk(ret(aget(selff("cur"), call(self(), "idx", lv("x"), lv("y"), lv("z"))))));

    // Periodic read: indices may be -1..n, wrapped with (+n)%n.
    c.method("getWrap", f32())
        .param("x", i32())
        .param("y", i32())
        .param("z", i32())
        .body(blk(decl("xx", i32(), rem(add(lv("x"), selff("nx")), selff("nx"))),
                  decl("yy", i32(), rem(add(lv("y"), selff("ny")), selff("ny"))),
                  decl("zz", i32(), rem(add(lv("z"), selff("nz")), selff("nz"))),
                  ret(aget(selff("cur"), call(self(), "idx", lv("xx"), lv("yy"), lv("zz"))))));

    c.method("set", Type::voidTy())
        .param("x", i32())
        .param("y", i32())
        .param("z", i32())
        .param("v", f32())
        .body(blk(aset(selff("nxt"), call(self(), "idx", lv("x"), lv("y"), lv("z")), lv("v")),
                  retVoid()));

    // Double buffering: swap the (array-typed, hence mutable) buffers.
    c.method("swap", Type::voidTy())
        .body(blk(decl("t", f32arr(), selff("cur")), setSelf("cur", selff("nxt")),
                  setSelf("nxt", lv("t")), retVoid()));

    c.method("fill", Type::voidTy())
        .param("seed", i32())
        .body(blk(forRange("i", ci(0), alen(selff("cur")),
                           blk(aset(selff("cur"), lv("i"),
                                    intr(Intrinsic::RngHashF32, lv("seed"), lv("i"))))),
                  retVoid()));

    c.method("checksum", f64())
        .body(blk(decl("s", f64(), cd(0.0)),
                  forRange("i", ci(0), alen(selff("cur")),
                           blk(assign("s", add(lv("s"),
                                               cast(f64(), aget(selff("cur"), lv("i"))))))),
                  ret(lv("s"))));
}

void buildSolverHierarchy(ProgramBuilder& pb) {
    pb.cls("StencilSolver").interfaceClass();

    {
        auto& c = pb.cls("ThreeDSolver").implements("StencilSolver");
        auto& m = c.method("solve", Type::cls("ScalarFloat")).abstractMethod();
        for (const char* p : {"c", "w", "e", "n", "s", "b", "t"}) m.param(p, Type::cls("ScalarFloat"));
        m.param("q", Type::cls("DiffusionQuantity"));
    }
    {
        auto& c = pb.cls("OneDSolver").implements("StencilSolver");
        c.method("solve", Type::cls("ScalarFloat"))
            .param("left", Type::cls("ScalarFloat"))
            .param("right", Type::cls("ScalarFloat"))
            .param("selfv", Type::cls("ScalarFloat"))
            .abstractMethod();
    }
    // Ablation twin of ThreeDSolver: identical math, raw floats instead of
    // ScalarFloat boxes. Comparing the two quantifies what object inlining
    // buys (bench_abl_boxing): after translation they should cost the same.
    {
        auto& c = pb.cls("ThreeDSolverRaw").implements("StencilSolver");
        auto& m = c.method("solveRaw", f32()).abstractMethod();
        for (const char* p2 : {"c", "w", "e", "n", "s", "b", "t"}) m.param(p2, f32());
        m.param("q", Type::cls("DiffusionQuantity"));
    }
}

void buildRunners(ProgramBuilder& pb) {
    pb.cls("StencilRunner").method("run", f64()).param("steps", i32()).abstractMethod();

    // ---------------------------------------------------------------- CPU
    {
        auto& c = pb.cls("StencilCPU3DDblB").extends("StencilRunner");
        c.field("solver", Type::cls("ThreeDSolver"));
        c.field("q", Type::cls("DiffusionQuantity"));
        c.field("grid", Type::cls("FloatGridDblB"));
        c.field("seed", i32());
        c.ctor()
            .param("solver_", Type::cls("ThreeDSolver"))
            .param("q_", Type::cls("DiffusionQuantity"))
            .param("grid_", Type::cls("FloatGridDblB"))
            .param("seed_", i32())
            .body(blk(setSelf("solver", lv("solver_")), setSelf("q", lv("q_")),
                      setSelf("grid", lv("grid_")), setSelf("seed", lv("seed_"))));

        // One grid sweep: 7-point gather with periodic wrap, solver applied
        // per cell. This is where the interpreter pays 7 boxed allocations
        // and one dynamic dispatch per cell, and the JIT pays nothing.
        c.method("step", Type::voidTy())
            .body(blk(
                forRange("z", ci(0), getf(selff("grid"), "nz"),
                blk(forRange("y", ci(0), getf(selff("grid"), "ny"),
                blk(forRange("x", ci(0), getf(selff("grid"), "nx"),
                blk(decl("r", Type::cls("ScalarFloat"),
                         call(selff("solver"), "solve",
                              newObj("ScalarFloat", call(selff("grid"), "get", lv("x"), lv("y"), lv("z"))),
                              newObj("ScalarFloat", call(selff("grid"), "getWrap", sub(lv("x"), ci(1)), lv("y"), lv("z"))),
                              newObj("ScalarFloat", call(selff("grid"), "getWrap", add(lv("x"), ci(1)), lv("y"), lv("z"))),
                              newObj("ScalarFloat", call(selff("grid"), "getWrap", lv("x"), sub(lv("y"), ci(1)), lv("z"))),
                              newObj("ScalarFloat", call(selff("grid"), "getWrap", lv("x"), add(lv("y"), ci(1)), lv("z"))),
                              newObj("ScalarFloat", call(selff("grid"), "getWrap", lv("x"), lv("y"), sub(lv("z"), ci(1)))),
                              newObj("ScalarFloat", call(selff("grid"), "getWrap", lv("x"), lv("y"), add(lv("z"), ci(1)))),
                              selff("q"))),
                    exprS(call(selff("grid"), "set", lv("x"), lv("y"), lv("z"),
                               call(lv("r"), "val"))))))))),
                retVoid()));

        c.method("run", f64())
            .param("steps", i32())
            .body(blk(exprS(call(selff("grid"), "fill", selff("seed"))),
                      forRange("s", ci(0), lv("steps"),
                               blk(exprS(call(self(), "step")),
                                   exprS(call(selff("grid"), "swap")))),
                      ret(call(selff("grid"), "checksum"))));
    }


    // -------------------------------------- CPU+MPI with comm/compute overlap
    // EXTENSION beyond the paper: the classic halo-overlap optimization.
    // Ghost receives are posted nonblocking, interior planes (which need no
    // ghosts) are computed while the halos are in flight, then the runner
    // waits and finishes the two boundary planes. Bit-identical to
    // StencilCPU3D_MPI; bench_abl_overlap quantifies the hidden latency.
    {
        auto& c = pb.cls("StencilCPU3D_MPI_Overlap").extends("StencilRunner");
        c.field("solver", Type::cls("ThreeDSolver"));
        c.field("q", Type::cls("DiffusionQuantity"));
        c.field("nx", i32()).field("ny", i32()).field("nzLocal", i32()).field("seed", i32());
        c.ctor()
            .param("solver_", Type::cls("ThreeDSolver"))
            .param("q_", Type::cls("DiffusionQuantity"))
            .param("nx_", i32())
            .param("ny_", i32())
            .param("nzLocal_", i32())
            .param("seed_", i32())
            .body(blk(setSelf("solver", lv("solver_")), setSelf("q", lv("q_")),
                      setSelf("nx", lv("nx_")), setSelf("ny", lv("ny_")),
                      setSelf("nzLocal", lv("nzLocal_")), setSelf("seed", lv("seed_"))));

        // Sweep of z in [z0, z1) over the ghost-padded slab.
        auto& step = c.method("stepRange", Type::voidTy());
        step.param("cur", f32arr()).param("nxt", f32arr()).param("z0", i32()).param("z1", i32());
        step.body(blk(
            decl("nx", i32(), selff("nx")), decl("ny", i32(), selff("ny")),
            decl("plane", i32(), mul(lv("nx"), lv("ny"))),
            forI32("z", lv("z0"), lt(lv("z"), lv("z1")), add(lv("z"), ci(1)),
            blk(forRange("y", ci(0), lv("ny"),
            blk(forRange("x", ci(0), lv("nx"),
            blk(decl("xm", i32(), rem(add(sub(lv("x"), ci(1)), lv("nx")), lv("nx"))),
                decl("xp", i32(), rem(add(lv("x"), ci(1)), lv("nx"))),
                decl("ym", i32(), rem(add(sub(lv("y"), ci(1)), lv("ny")), lv("ny"))),
                decl("yp", i32(), rem(add(lv("y"), ci(1)), lv("ny"))),
                decl("base", i32(), add(mul(lv("z"), lv("plane")), mul(lv("y"), lv("nx")))),
                decl("r", Type::cls("ScalarFloat"),
                     call(selff("solver"), "solve",
                          newObj("ScalarFloat", aget(lv("cur"), add(lv("base"), lv("x")))),
                          newObj("ScalarFloat", aget(lv("cur"), add(lv("base"), lv("xm")))),
                          newObj("ScalarFloat", aget(lv("cur"), add(lv("base"), lv("xp")))),
                          newObj("ScalarFloat",
                                 aget(lv("cur"), add(add(mul(lv("z"), lv("plane")),
                                                        mul(lv("ym"), lv("nx"))), lv("x")))),
                          newObj("ScalarFloat",
                                 aget(lv("cur"), add(add(mul(lv("z"), lv("plane")),
                                                        mul(lv("yp"), lv("nx"))), lv("x")))),
                          newObj("ScalarFloat",
                                 aget(lv("cur"), sub(add(lv("base"), lv("x")), lv("plane")))),
                          newObj("ScalarFloat",
                                 aget(lv("cur"), add(add(lv("base"), lv("x")), lv("plane")))),
                          selff("q"))),
                aset(lv("nxt"), add(lv("base"), lv("x")), call(lv("r"), "val")))))))),
            retVoid()));

        c.method("run", f64())
            .param("steps", i32())
            .body(blk(
                decl("rank", i32(), mpiRank()),
                decl("size", i32(), mpiSize()),
                decl("nx", i32(), selff("nx")), decl("ny", i32(), selff("ny")),
                decl("nzL", i32(), selff("nzLocal")),
                decl("plane", i32(), mul(lv("nx"), lv("ny"))),
                decl("total", i32(), mul(lv("plane"), add(lv("nzL"), ci(2)))),
                decl("cur", f32arr(), newArr(f32(), lv("total"))),
                decl("nxt", f32arr(), newArr(f32(), lv("total"))),
                forRange("z", ci(0), lv("nzL"),
                blk(decl("gz", i32(), add(mul(lv("rank"), lv("nzL")), lv("z"))),
                    forRange("i", ci(0), lv("plane"),
                    blk(aset(lv("cur"), add(mul(add(lv("z"), ci(1)), lv("plane")), lv("i")),
                             intr(Intrinsic::RngHashF32, selff("seed"),
                                  add(mul(lv("gz"), lv("plane")), lv("i")))))))),
                decl("up", i32(), rem(add(lv("rank"), ci(1)), lv("size"))),
                decl("down", i32(), rem(sub(add(lv("rank"), lv("size")), ci(1)), lv("size"))),
                forRange("s", ci(0), lv("steps"), blk(
                    ifs(gt(lv("size"), ci(1)),
                        blk(// Post ghost receives, push boundaries, compute the
                            // interior while the halos are in flight.
                            decl("rBot", i32(),
                                 intr(Intrinsic::MpiIrecvF32, lv("cur"), ci(0), lv("plane"),
                                      lv("down"), ci(11))),
                            decl("rTop", i32(),
                                 intr(Intrinsic::MpiIrecvF32, lv("cur"),
                                      mul(add(lv("nzL"), ci(1)), lv("plane")), lv("plane"),
                                      lv("up"), ci(12))),
                            exprS(intr(Intrinsic::MpiSendF32, lv("cur"),
                                       mul(lv("nzL"), lv("plane")), lv("plane"), lv("up"),
                                       ci(11))),
                            exprS(intr(Intrinsic::MpiSendF32, lv("cur"), lv("plane"),
                                       lv("plane"), lv("down"), ci(12))),
                            exprS(call(self(), "stepRange", lv("cur"), lv("nxt"), ci(2),
                                       lv("nzL"))),
                            exprS(intr(Intrinsic::MpiWait, lv("rBot"))),
                            exprS(intr(Intrinsic::MpiWait, lv("rTop"))),
                            exprS(call(self(), "stepRange", lv("cur"), lv("nxt"), ci(1), ci(2))),
                            exprS(call(self(), "stepRange", lv("cur"), lv("nxt"), lv("nzL"),
                                       add(lv("nzL"), ci(1))))),
                        blk(forRange("i", ci(0), lv("plane"),
                            blk(aset(lv("cur"), lv("i"),
                                     aget(lv("cur"), add(mul(lv("nzL"), lv("plane")), lv("i")))),
                                aset(lv("cur"),
                                     add(mul(add(lv("nzL"), ci(1)), lv("plane")), lv("i")),
                                     aget(lv("cur"), add(lv("plane"), lv("i")))))),
                            exprS(call(self(), "stepRange", lv("cur"), lv("nxt"), ci(1),
                                       add(lv("nzL"), ci(1)))))),
                    decl("tswap", f32arr(), lv("cur")),
                    assign("cur", lv("nxt")),
                    assign("nxt", lv("tswap")))),
                decl("local", f64(), cd(0.0)),
                forRange("i", lv("plane"), mul(lv("plane"), add(lv("nzL"), ci(1))),
                         blk(assign("local", add(lv("local"), cast(f64(), aget(lv("cur"), lv("i"))))))),
                decl("sum", f64(), lv("local")),
                ifs(gt(lv("size"), ci(1)),
                    blk(assign("sum", intr(Intrinsic::MpiAllreduceSumF64, lv("local"))))),
                exprS(intr(Intrinsic::FreeArray, lv("cur"))),
                exprS(intr(Intrinsic::FreeArray, lv("nxt"))),
                ret(lv("sum"))));
    }

    // ----------------------------------------------------- CPU (raw twin)
    {
        auto& c = pb.cls("StencilCPU3DRaw").extends("StencilRunner");
        c.field("solver", Type::cls("ThreeDSolverRaw"));
        c.field("q", Type::cls("DiffusionQuantity"));
        c.field("grid", Type::cls("FloatGridDblB"));
        c.field("seed", i32());
        c.ctor()
            .param("solver_", Type::cls("ThreeDSolverRaw"))
            .param("q_", Type::cls("DiffusionQuantity"))
            .param("grid_", Type::cls("FloatGridDblB"))
            .param("seed_", i32())
            .body(blk(setSelf("solver", lv("solver_")), setSelf("q", lv("q_")),
                      setSelf("grid", lv("grid_")), setSelf("seed", lv("seed_"))));
        c.method("step", Type::voidTy())
            .body(blk(
                forRange("z", ci(0), getf(selff("grid"), "nz"),
                blk(forRange("y", ci(0), getf(selff("grid"), "ny"),
                blk(forRange("x", ci(0), getf(selff("grid"), "nx"),
                blk(decl("r", f32(),
                         call(selff("solver"), "solveRaw",
                              call(selff("grid"), "get", lv("x"), lv("y"), lv("z")),
                              call(selff("grid"), "getWrap", sub(lv("x"), ci(1)), lv("y"), lv("z")),
                              call(selff("grid"), "getWrap", add(lv("x"), ci(1)), lv("y"), lv("z")),
                              call(selff("grid"), "getWrap", lv("x"), sub(lv("y"), ci(1)), lv("z")),
                              call(selff("grid"), "getWrap", lv("x"), add(lv("y"), ci(1)), lv("z")),
                              call(selff("grid"), "getWrap", lv("x"), lv("y"), sub(lv("z"), ci(1))),
                              call(selff("grid"), "getWrap", lv("x"), lv("y"), add(lv("z"), ci(1))),
                              selff("q"))),
                    exprS(call(selff("grid"), "set", lv("x"), lv("y"), lv("z"), lv("r"))))))))),
                retVoid()));
        c.method("run", f64())
            .param("steps", i32())
            .body(blk(exprS(call(selff("grid"), "fill", selff("seed"))),
                      forRange("s", ci(0), lv("steps"),
                               blk(exprS(call(self(), "step")),
                                   exprS(call(selff("grid"), "swap")))),
                      ret(call(selff("grid"), "checksum"))));
    }

    // ------------------------------------------------------------ CPU+MPI
    {
        auto& c = pb.cls("StencilCPU3D_MPI").extends("StencilRunner");
        c.field("solver", Type::cls("ThreeDSolver"));
        c.field("q", Type::cls("DiffusionQuantity"));
        c.field("nx", i32()).field("ny", i32()).field("nzLocal", i32()).field("seed", i32());
        c.ctor()
            .param("solver_", Type::cls("ThreeDSolver"))
            .param("q_", Type::cls("DiffusionQuantity"))
            .param("nx_", i32())
            .param("ny_", i32())
            .param("nzLocal_", i32())
            .param("seed_", i32())
            .body(blk(setSelf("solver", lv("solver_")), setSelf("q", lv("q_")),
                      setSelf("nx", lv("nx_")), setSelf("ny", lv("ny_")),
                      setSelf("nzLocal", lv("nzLocal_")), setSelf("seed", lv("seed_"))));

        // Interior sweep over a ghost-padded slab (z in [1, nzLocal]).
        auto& step = c.method("step", Type::voidTy());
        step.param("cur", f32arr()).param("nxt", f32arr());
        step.body(blk(
            decl("nx", i32(), selff("nx")), decl("ny", i32(), selff("ny")),
            decl("plane", i32(), mul(lv("nx"), lv("ny"))),
            forRange("z", ci(1), add(selff("nzLocal"), ci(1)),
            blk(forRange("y", ci(0), lv("ny"),
            blk(forRange("x", ci(0), lv("nx"),
            blk(decl("xm", i32(), rem(add(sub(lv("x"), ci(1)), lv("nx")), lv("nx"))),
                decl("xp", i32(), rem(add(lv("x"), ci(1)), lv("nx"))),
                decl("ym", i32(), rem(add(sub(lv("y"), ci(1)), lv("ny")), lv("ny"))),
                decl("yp", i32(), rem(add(lv("y"), ci(1)), lv("ny"))),
                decl("base", i32(), add(mul(lv("z"), lv("plane")), mul(lv("y"), lv("nx")))),
                decl("r", Type::cls("ScalarFloat"),
                     call(selff("solver"), "solve",
                          newObj("ScalarFloat", aget(lv("cur"), add(lv("base"), lv("x")))),
                          newObj("ScalarFloat", aget(lv("cur"), add(lv("base"), lv("xm")))),
                          newObj("ScalarFloat", aget(lv("cur"), add(lv("base"), lv("xp")))),
                          newObj("ScalarFloat",
                                 aget(lv("cur"), add(add(mul(lv("z"), lv("plane")),
                                                        mul(lv("ym"), lv("nx"))), lv("x")))),
                          newObj("ScalarFloat",
                                 aget(lv("cur"), add(add(mul(lv("z"), lv("plane")),
                                                        mul(lv("yp"), lv("nx"))), lv("x")))),
                          newObj("ScalarFloat",
                                 aget(lv("cur"), sub(add(lv("base"), lv("x")), lv("plane")))),
                          newObj("ScalarFloat",
                                 aget(lv("cur"), add(add(lv("base"), lv("x")), lv("plane")))),
                          selff("q"))),
                aset(lv("nxt"), add(lv("base"), lv("x")), call(lv("r"), "val")))))))),
            retVoid()));

        c.method("run", f64())
            .param("steps", i32())
            .body(blk(
                decl("rank", i32(), mpiRank()),
                decl("size", i32(), mpiSize()),
                decl("nx", i32(), selff("nx")), decl("ny", i32(), selff("ny")),
                decl("nzL", i32(), selff("nzLocal")),
                decl("plane", i32(), mul(lv("nx"), lv("ny"))),
                decl("total", i32(), mul(lv("plane"), add(lv("nzL"), ci(2)))),
                decl("cur", f32arr(), newArr(f32(), lv("total"))),
                decl("nxt", f32arr(), newArr(f32(), lv("total"))),
                // Initialize interior from GLOBAL cell indices so every rank
                // count computes the same global problem.
                forRange("z", ci(0), lv("nzL"),
                blk(decl("gz", i32(), add(mul(lv("rank"), lv("nzL")), lv("z"))),
                    forRange("i", ci(0), lv("plane"),
                    blk(aset(lv("cur"), add(mul(add(lv("z"), ci(1)), lv("plane")), lv("i")),
                             intr(Intrinsic::RngHashF32, selff("seed"),
                                  add(mul(lv("gz"), lv("plane")), lv("i")))))))),
                decl("up", i32(), rem(add(lv("rank"), ci(1)), lv("size"))),
                decl("down", i32(), rem(sub(add(lv("rank"), lv("size")), ci(1)), lv("size"))),
                // Checkpoint/restart: when the host armed the CheckpointStore,
                // resume from the last consistent snapshot of the whole slab
                // (ghosts included; they are refreshed by the next exchange).
                // Returns -1 when starting fresh or the store is disarmed.
                decl("start", i32(),
                     intr(Intrinsic::CkptLoadF32, lv("cur"), lv("total"), ci(0))),
                ifs(lt(lv("start"), ci(0)), blk(assign("start", ci(0)))),
                forRange("s", lv("start"), lv("steps"), blk(
                    ifs(gt(lv("size"), ci(1)),
                        // Halo exchange: top interior plane up / bottom ghost
                        // from below, then the mirror direction.
                        blk(exprS(intr(Intrinsic::MpiSendRecvF32, lv("cur"),
                                       mul(lv("nzL"), lv("plane")), lv("plane"), lv("up"),
                                       lv("cur"), ci(0), lv("down"), ci(11))),
                            exprS(intr(Intrinsic::MpiSendRecvF32, lv("cur"),
                                       mul(ci(1), lv("plane")), lv("plane"), lv("down"),
                                       lv("cur"), mul(add(lv("nzL"), ci(1)), lv("plane")),
                                       lv("up"), ci(12)))),
                        // size == 1: periodic wrap within the local slab.
                        blk(forRange("i", ci(0), lv("plane"),
                            blk(aset(lv("cur"), lv("i"),
                                     aget(lv("cur"), add(mul(lv("nzL"), lv("plane")), lv("i")))),
                                aset(lv("cur"),
                                     add(mul(add(lv("nzL"), ci(1)), lv("plane")), lv("i")),
                                     aget(lv("cur"), add(lv("plane"), lv("i")))))))),
                    exprS(call(self(), "step", lv("cur"), lv("nxt"))),
                    decl("tswap", f32arr(), lv("cur")),
                    assign("cur", lv("nxt")),
                    assign("nxt", lv("tswap")),
                    exprS(intr(Intrinsic::CkptSaveF32, lv("cur"), lv("total"),
                               ci(0), add(lv("s"), ci(1)))))),
                // Global checksum over interiors.
                decl("local", f64(), cd(0.0)),
                forRange("i", lv("plane"), mul(lv("plane"), add(lv("nzL"), ci(1))),
                         blk(assign("local", add(lv("local"), cast(f64(), aget(lv("cur"), lv("i"))))))),
                decl("sum", f64(), lv("local")),
                ifs(gt(lv("size"), ci(1)),
                    blk(assign("sum", intr(Intrinsic::MpiAllreduceSumF64, lv("local"))))),
                exprS(intr(Intrinsic::FreeArray, lv("cur"))),
                exprS(intr(Intrinsic::FreeArray, lv("nxt"))),
                ret(lv("sum"))));
    }

    // ---------------------------------------------------------------- GPU
    {
        auto& c = pb.cls("StencilGPU3D").extends("StencilRunner");
        c.field("solver", Type::cls("ThreeDSolver"));
        c.field("q", Type::cls("DiffusionQuantity"));
        c.field("nx", i32()).field("ny", i32()).field("nz", i32());
        c.field("seed", i32()).field("blockSize", i32());
        c.ctor()
            .param("solver_", Type::cls("ThreeDSolver"))
            .param("q_", Type::cls("DiffusionQuantity"))
            .param("nx_", i32()).param("ny_", i32()).param("nz_", i32())
            .param("seed_", i32()).param("blockSize_", i32())
            .body(blk(setSelf("solver", lv("solver_")), setSelf("q", lv("q_")),
                      setSelf("nx", lv("nx_")), setSelf("ny", lv("ny_")),
                      setSelf("nz", lv("nz_")), setSelf("seed", lv("seed_")),
                      setSelf("blockSize", lv("blockSize_"))));

        // The whole-grid update kernel (Listing 4's runGPU idiom): one
        // logical thread per cell; the solver call inside is devirtualized
        // into a __device__ function by the translator.
        auto& k = c.method("stepKernel", Type::voidTy()).global();
        k.param("conf", Type::cls(Program::cudaConfigClass()));
        k.param("cur", f32arr()).param("nxt", f32arr());
        k.body(blk(
            decl("i", i32(), add(mul(bidxX(), bdimX()), tidxX())),
            decl("nx", i32(), selff("nx")), decl("ny", i32(), selff("ny")),
            decl("nz", i32(), selff("nz")),
            decl("total", i32(), mul(mul(lv("nx"), lv("ny")), lv("nz"))),
            ifs(lt(lv("i"), lv("total")), blk(
                decl("x", i32(), rem(lv("i"), lv("nx"))),
                decl("y", i32(), rem(divE(lv("i"), lv("nx")), lv("ny"))),
                decl("z", i32(), divE(lv("i"), mul(lv("nx"), lv("ny")))),
                decl("xm", i32(), rem(add(sub(lv("x"), ci(1)), lv("nx")), lv("nx"))),
                decl("xp", i32(), rem(add(lv("x"), ci(1)), lv("nx"))),
                decl("ym", i32(), rem(add(sub(lv("y"), ci(1)), lv("ny")), lv("ny"))),
                decl("yp", i32(), rem(add(lv("y"), ci(1)), lv("ny"))),
                decl("zm", i32(), rem(add(sub(lv("z"), ci(1)), lv("nz")), lv("nz"))),
                decl("zp", i32(), rem(add(lv("z"), ci(1)), lv("nz"))),
                decl("r", Type::cls("ScalarFloat"),
                     call(selff("solver"), "solve",
                          newObj("ScalarFloat", aget(lv("cur"), add(mul(add(mul(lv("z"), lv("ny")), lv("y")), lv("nx")), lv("x")))),
                          newObj("ScalarFloat", aget(lv("cur"), add(mul(add(mul(lv("z"), lv("ny")), lv("y")), lv("nx")), lv("xm")))),
                          newObj("ScalarFloat", aget(lv("cur"), add(mul(add(mul(lv("z"), lv("ny")), lv("y")), lv("nx")), lv("xp")))),
                          newObj("ScalarFloat", aget(lv("cur"), add(mul(add(mul(lv("z"), lv("ny")), lv("ym")), lv("nx")), lv("x")))),
                          newObj("ScalarFloat", aget(lv("cur"), add(mul(add(mul(lv("z"), lv("ny")), lv("yp")), lv("nx")), lv("x")))),
                          newObj("ScalarFloat", aget(lv("cur"), add(mul(add(mul(lv("zm"), lv("ny")), lv("y")), lv("nx")), lv("x")))),
                          newObj("ScalarFloat", aget(lv("cur"), add(mul(add(mul(lv("zp"), lv("ny")), lv("y")), lv("nx")), lv("x")))),
                          selff("q"))),
                aset(lv("nxt"), lv("i"), call(lv("r"), "val")))),
            retVoid()));

        c.method("run", f64())
            .param("steps", i32())
            .body(blk(
                decl("total", i32(), mul(mul(selff("nx"), selff("ny")), selff("nz"))),
                decl("host", f32arr(), newArr(f32(), lv("total"))),
                forRange("i", ci(0), lv("total"),
                         blk(aset(lv("host"), lv("i"),
                                  intr(Intrinsic::RngHashF32, selff("seed"), lv("i"))))),
                decl("dcur", f32arr(), intr(Intrinsic::GpuMallocF32, lv("total"))),
                decl("dnxt", f32arr(), intr(Intrinsic::GpuMallocF32, lv("total"))),
                exprS(intr(Intrinsic::GpuMemcpyH2DF32, lv("dcur"), lv("host"), lv("total"))),
                decl("bs", i32(), selff("blockSize")),
                decl("blocks", i32(), divE(sub(add(lv("total"), lv("bs")), ci(1)), lv("bs"))),
                decl("conf", Type::cls(Program::cudaConfigClass()),
                     cudaConfig(dim3of(lv("blocks")), dim3of(lv("bs")), ci(0))),
                forRange("s", ci(0), lv("steps"), blk(
                    exprS(call(self(), "stepKernel", lv("conf"), lv("dcur"), lv("dnxt"))),
                    decl("tswap", f32arr(), lv("dcur")),
                    assign("dcur", lv("dnxt")),
                    assign("dnxt", lv("tswap")))),
                exprS(intr(Intrinsic::GpuMemcpyD2HF32, lv("host"), lv("dcur"), lv("total"))),
                exprS(intr(Intrinsic::GpuFree, lv("dcur"))),
                exprS(intr(Intrinsic::GpuFree, lv("dnxt"))),
                decl("sum", f64(), cd(0.0)),
                forRange("i", ci(0), lv("total"),
                         blk(assign("sum", add(lv("sum"), cast(f64(), aget(lv("host"), lv("i"))))))),
                exprS(intr(Intrinsic::FreeArray, lv("host"))),
                ret(lv("sum"))));
    }


    // --------------------------------------------- GPU with @Shared tiles
    // The paper's @Shared feature in the stencil library: each block stages
    // its x-row segment (plus one halo cell each side) into shared memory,
    // barriers, then reads x-neighbors from shared while y/z neighbors come
    // from global memory. Requires nx %% blockSize == 0.
    {
        auto& c = pb.cls("StencilGPU3DShared").extends("StencilRunner");
        c.field("solver", Type::cls("ThreeDSolver"));
        c.field("q", Type::cls("DiffusionQuantity"));
        c.field("nx", i32()).field("ny", i32()).field("nz", i32());
        c.field("seed", i32()).field("blockSize", i32());
        c.ctor()
            .param("solver_", Type::cls("ThreeDSolver"))
            .param("q_", Type::cls("DiffusionQuantity"))
            .param("nx_", i32()).param("ny_", i32()).param("nz_", i32())
            .param("seed_", i32()).param("blockSize_", i32())
            .body(blk(setSelf("solver", lv("solver_")), setSelf("q", lv("q_")),
                      setSelf("nx", lv("nx_")), setSelf("ny", lv("ny_")),
                      setSelf("nz", lv("nz_")), setSelf("seed", lv("seed_")),
                      setSelf("blockSize", lv("blockSize_"))));

        auto& k = c.method("stepKernel", Type::voidTy()).global();
        k.param("conf", Type::cls(Program::cudaConfigClass()));
        k.param("cur", f32arr()).param("nxt", f32arr());
        k.body(blk(
            decl("tx", i32(), tidxX()),
            decl("bs", i32(), bdimX()),
            decl("nx", i32(), selff("nx")), decl("ny", i32(), selff("ny")),
            decl("nz", i32(), selff("nz")),
            decl("segsPerRow", i32(), divE(lv("nx"), lv("bs"))),
            decl("seg", i32(), bidxX()),
            decl("x0", i32(), mul(rem(lv("seg"), lv("segsPerRow")), lv("bs"))),
            decl("y", i32(), rem(divE(lv("seg"), lv("segsPerRow")), lv("ny"))),
            decl("z", i32(), divE(lv("seg"), mul(lv("segsPerRow"), lv("ny")))),
            decl("x", i32(), add(lv("x0"), lv("tx"))),
            decl("sh", f32arr(), intr(Intrinsic::CudaSharedF32)),
            decl("rowBase", i32(), mul(add(mul(lv("z"), lv("ny")), lv("y")), lv("nx"))),
            aset(lv("sh"), add(lv("tx"), ci(1)), aget(lv("cur"), add(lv("rowBase"), lv("x")))),
            ifs(eq(lv("tx"), ci(0)), blk(
                aset(lv("sh"), ci(0),
                     aget(lv("cur"),
                          add(lv("rowBase"),
                              rem(add(sub(lv("x0"), ci(1)), lv("nx")), lv("nx"))))))),
            ifs(eq(lv("tx"), sub(lv("bs"), ci(1))), blk(
                aset(lv("sh"), add(lv("bs"), ci(1)),
                     aget(lv("cur"), add(lv("rowBase"), rem(add(lv("x0"), lv("bs")), lv("nx"))))))),
            exprS(intr(Intrinsic::CudaSyncThreads)),
            decl("ym", i32(), rem(add(sub(lv("y"), ci(1)), lv("ny")), lv("ny"))),
            decl("yp", i32(), rem(add(lv("y"), ci(1)), lv("ny"))),
            decl("zm", i32(), rem(add(sub(lv("z"), ci(1)), lv("nz")), lv("nz"))),
            decl("zp", i32(), rem(add(lv("z"), ci(1)), lv("nz"))),
            decl("r", Type::cls("ScalarFloat"),
                 call(selff("solver"), "solve",
                      newObj("ScalarFloat", aget(lv("sh"), add(lv("tx"), ci(1)))),
                      newObj("ScalarFloat", aget(lv("sh"), lv("tx"))),
                      newObj("ScalarFloat", aget(lv("sh"), add(lv("tx"), ci(2)))),
                      newObj("ScalarFloat",
                             aget(lv("cur"), add(mul(add(mul(lv("z"), lv("ny")), lv("ym")), lv("nx")), lv("x")))),
                      newObj("ScalarFloat",
                             aget(lv("cur"), add(mul(add(mul(lv("z"), lv("ny")), lv("yp")), lv("nx")), lv("x")))),
                      newObj("ScalarFloat",
                             aget(lv("cur"), add(mul(add(mul(lv("zm"), lv("ny")), lv("y")), lv("nx")), lv("x")))),
                      newObj("ScalarFloat",
                             aget(lv("cur"), add(mul(add(mul(lv("zp"), lv("ny")), lv("y")), lv("nx")), lv("x")))),
                      selff("q"))),
            aset(lv("nxt"), add(lv("rowBase"), lv("x")), call(lv("r"), "val")),
            retVoid()));

        c.method("run", f64())
            .param("steps", i32())
            .body(blk(
                decl("nx", i32(), selff("nx")), decl("ny", i32(), selff("ny")),
                decl("nz", i32(), selff("nz")),
                decl("total", i32(), mul(mul(lv("nx"), lv("ny")), lv("nz"))),
                decl("host", f32arr(), newArr(f32(), lv("total"))),
                forRange("i", ci(0), lv("total"),
                         blk(aset(lv("host"), lv("i"),
                                  intr(Intrinsic::RngHashF32, selff("seed"), lv("i"))))),
                decl("dcur", f32arr(), intr(Intrinsic::GpuMallocF32, lv("total"))),
                decl("dnxt", f32arr(), intr(Intrinsic::GpuMallocF32, lv("total"))),
                exprS(intr(Intrinsic::GpuMemcpyH2DF32, lv("dcur"), lv("host"), lv("total"))),
                decl("bs", i32(), selff("blockSize")),
                decl("blocks", i32(), mul(mul(divE(lv("nx"), lv("bs")), lv("ny")), lv("nz"))),
                decl("conf", Type::cls(Program::cudaConfigClass()),
                     cudaConfig(dim3of(lv("blocks")), dim3of(lv("bs")),
                                mul(add(lv("bs"), ci(2)), ci(4)))),
                forRange("s", ci(0), lv("steps"), blk(
                    exprS(call(self(), "stepKernel", lv("conf"), lv("dcur"), lv("dnxt"))),
                    decl("tswap", f32arr(), lv("dcur")),
                    assign("dcur", lv("dnxt")),
                    assign("dnxt", lv("tswap")))),
                exprS(intr(Intrinsic::GpuMemcpyD2HF32, lv("host"), lv("dcur"), lv("total"))),
                exprS(intr(Intrinsic::GpuFree, lv("dcur"))),
                exprS(intr(Intrinsic::GpuFree, lv("dnxt"))),
                decl("sum", f64(), cd(0.0)),
                forRange("i", ci(0), lv("total"),
                         blk(assign("sum", add(lv("sum"), cast(f64(), aget(lv("host"), lv("i"))))))),
                exprS(intr(Intrinsic::FreeArray, lv("host"))),
                ret(lv("sum"))));
    }

    // ------------------------------------------------------------ GPU+MPI
    {
        auto& c = pb.cls("StencilGPU3D_MPI").extends("StencilRunner");
        c.field("solver", Type::cls("ThreeDSolver"));
        c.field("q", Type::cls("DiffusionQuantity"));
        c.field("nx", i32()).field("ny", i32()).field("nzLocal", i32());
        c.field("seed", i32()).field("blockSize", i32());
        c.ctor()
            .param("solver_", Type::cls("ThreeDSolver"))
            .param("q_", Type::cls("DiffusionQuantity"))
            .param("nx_", i32()).param("ny_", i32()).param("nzLocal_", i32())
            .param("seed_", i32()).param("blockSize_", i32())
            .body(blk(setSelf("solver", lv("solver_")), setSelf("q", lv("q_")),
                      setSelf("nx", lv("nx_")), setSelf("ny", lv("ny_")),
                      setSelf("nzLocal", lv("nzLocal_")), setSelf("seed", lv("seed_")),
                      setSelf("blockSize", lv("blockSize_"))));

        // Ghost-padded slab kernel: z in [1, nzLocal]; z neighbors read the
        // ghost planes the host staged before the launch.
        auto& k = c.method("stepKernel", Type::voidTy()).global();
        k.param("conf", Type::cls(Program::cudaConfigClass()));
        k.param("cur", f32arr()).param("nxt", f32arr());
        k.body(blk(
            decl("i", i32(), add(mul(bidxX(), bdimX()), tidxX())),
            decl("nx", i32(), selff("nx")), decl("ny", i32(), selff("ny")),
            decl("nzL", i32(), selff("nzLocal")),
            decl("plane", i32(), mul(lv("nx"), lv("ny"))),
            decl("inner", i32(), mul(lv("plane"), lv("nzL"))),
            ifs(lt(lv("i"), lv("inner")), blk(
                decl("x", i32(), rem(lv("i"), lv("nx"))),
                decl("y", i32(), rem(divE(lv("i"), lv("nx")), lv("ny"))),
                decl("z", i32(), add(divE(lv("i"), lv("plane")), ci(1))),
                decl("xm", i32(), rem(add(sub(lv("x"), ci(1)), lv("nx")), lv("nx"))),
                decl("xp", i32(), rem(add(lv("x"), ci(1)), lv("nx"))),
                decl("ym", i32(), rem(add(sub(lv("y"), ci(1)), lv("ny")), lv("ny"))),
                decl("yp", i32(), rem(add(lv("y"), ci(1)), lv("ny"))),
                decl("idx", i32(), add(add(mul(lv("z"), lv("plane")), mul(lv("y"), lv("nx"))), lv("x"))),
                decl("r", Type::cls("ScalarFloat"),
                     call(selff("solver"), "solve",
                          newObj("ScalarFloat", aget(lv("cur"), lv("idx"))),
                          newObj("ScalarFloat", aget(lv("cur"), add(add(mul(lv("z"), lv("plane")), mul(lv("y"), lv("nx"))), lv("xm")))),
                          newObj("ScalarFloat", aget(lv("cur"), add(add(mul(lv("z"), lv("plane")), mul(lv("y"), lv("nx"))), lv("xp")))),
                          newObj("ScalarFloat", aget(lv("cur"), add(add(mul(lv("z"), lv("plane")), mul(lv("ym"), lv("nx"))), lv("x")))),
                          newObj("ScalarFloat", aget(lv("cur"), add(add(mul(lv("z"), lv("plane")), mul(lv("yp"), lv("nx"))), lv("x")))),
                          newObj("ScalarFloat", aget(lv("cur"), sub(lv("idx"), lv("plane")))),
                          newObj("ScalarFloat", aget(lv("cur"), add(lv("idx"), lv("plane")))),
                          selff("q"))),
                aset(lv("nxt"), lv("idx"), call(lv("r"), "val")))),
            retVoid()));

        c.method("run", f64())
            .param("steps", i32())
            .body(blk(
                decl("rank", i32(), mpiRank()),
                decl("size", i32(), mpiSize()),
                decl("nx", i32(), selff("nx")), decl("ny", i32(), selff("ny")),
                decl("nzL", i32(), selff("nzLocal")),
                decl("plane", i32(), mul(lv("nx"), lv("ny"))),
                decl("total", i32(), mul(lv("plane"), add(lv("nzL"), ci(2)))),
                decl("host", f32arr(), newArr(f32(), lv("total"))),
                forRange("z", ci(0), lv("nzL"),
                blk(decl("gz", i32(), add(mul(lv("rank"), lv("nzL")), lv("z"))),
                    forRange("i", ci(0), lv("plane"),
                    blk(aset(lv("host"), add(mul(add(lv("z"), ci(1)), lv("plane")), lv("i")),
                             intr(Intrinsic::RngHashF32, selff("seed"),
                                  add(mul(lv("gz"), lv("plane")), lv("i")))))))),
                decl("dcur", f32arr(), intr(Intrinsic::GpuMallocF32, lv("total"))),
                decl("dnxt", f32arr(), intr(Intrinsic::GpuMallocF32, lv("total"))),
                exprS(intr(Intrinsic::GpuMemcpyH2DF32, lv("dcur"), lv("host"), lv("total"))),
                decl("sTop", f32arr(), newArr(f32(), lv("plane"))),
                decl("sBot", f32arr(), newArr(f32(), lv("plane"))),
                decl("gTop", f32arr(), newArr(f32(), lv("plane"))),
                decl("gBot", f32arr(), newArr(f32(), lv("plane"))),
                decl("up", i32(), rem(add(lv("rank"), ci(1)), lv("size"))),
                decl("down", i32(), rem(sub(add(lv("rank"), lv("size")), ci(1)), lv("size"))),
                decl("bs", i32(), selff("blockSize")),
                decl("inner", i32(), mul(lv("plane"), lv("nzL"))),
                decl("blocks", i32(), divE(sub(add(lv("inner"), lv("bs")), ci(1)), lv("bs"))),
                decl("conf", Type::cls(Program::cudaConfigClass()),
                     cudaConfig(dim3of(lv("blocks")), dim3of(lv("bs")), ci(0))),
                forRange("s", ci(0), lv("steps"), blk(
                    // Stage interior boundary planes through the host —
                    // M2050-era CUDA had no GPUDirect here (paper setup).
                    exprS(intr(Intrinsic::GpuMemcpyD2HOffF32, lv("sTop"), ci(0),
                               lv("dcur"), mul(lv("nzL"), lv("plane")), lv("plane"))),
                    exprS(intr(Intrinsic::GpuMemcpyD2HOffF32, lv("sBot"), ci(0),
                               lv("dcur"), lv("plane"), lv("plane"))),
                    ifs(gt(lv("size"), ci(1)),
                        blk(exprS(intr(Intrinsic::MpiSendRecvF32, lv("sTop"), ci(0), lv("plane"),
                                       lv("up"), lv("gBot"), ci(0), lv("down"), ci(21))),
                            exprS(intr(Intrinsic::MpiSendRecvF32, lv("sBot"), ci(0), lv("plane"),
                                       lv("down"), lv("gTop"), ci(0), lv("up"), ci(22)))),
                        blk(forRange("i", ci(0), lv("plane"),
                            blk(aset(lv("gBot"), lv("i"), aget(lv("sTop"), lv("i"))),
                                aset(lv("gTop"), lv("i"), aget(lv("sBot"), lv("i"))))))),
                    exprS(intr(Intrinsic::GpuMemcpyH2DOffF32, lv("dcur"), ci(0),
                               lv("gBot"), ci(0), lv("plane"))),
                    exprS(intr(Intrinsic::GpuMemcpyH2DOffF32, lv("dcur"),
                               mul(add(lv("nzL"), ci(1)), lv("plane")),
                               lv("gTop"), ci(0), lv("plane"))),
                    exprS(call(self(), "stepKernel", lv("conf"), lv("dcur"), lv("dnxt"))),
                    decl("tswap", f32arr(), lv("dcur")),
                    assign("dcur", lv("dnxt")),
                    assign("dnxt", lv("tswap")))),
                exprS(intr(Intrinsic::GpuMemcpyD2HF32, lv("host"), lv("dcur"), lv("total"))),
                exprS(intr(Intrinsic::GpuFree, lv("dcur"))),
                exprS(intr(Intrinsic::GpuFree, lv("dnxt"))),
                decl("local", f64(), cd(0.0)),
                forRange("i", lv("plane"), mul(lv("plane"), add(lv("nzL"), ci(1))),
                         blk(assign("local", add(lv("local"), cast(f64(), aget(lv("host"), lv("i"))))))),
                decl("sum", f64(), lv("local")),
                ifs(gt(lv("size"), ci(1)),
                    blk(assign("sum", intr(Intrinsic::MpiAllreduceSumF64, lv("local"))))),
                exprS(intr(Intrinsic::FreeArray, lv("host"))),
                exprS(intr(Intrinsic::FreeArray, lv("sTop"))),
                exprS(intr(Intrinsic::FreeArray, lv("sBot"))),
                exprS(intr(Intrinsic::FreeArray, lv("gTop"))),
                exprS(intr(Intrinsic::FreeArray, lv("gBot"))),
                ret(lv("sum"))));
    }

    // ----------------------------------------------------------- 1-D CPU
    {
        auto& c = pb.cls("StencilCPU1D").extends("StencilRunner");
        c.field("solver", Type::cls("OneDSolver"));
        c.field("n", i32()).field("seed", i32());
        c.ctor()
            .param("solver_", Type::cls("OneDSolver"))
            .param("n_", i32())
            .param("seed_", i32())
            .body(blk(setSelf("solver", lv("solver_")), setSelf("n", lv("n_")),
                      setSelf("seed", lv("seed_"))));
        c.method("run", f64())
            .param("steps", i32())
            .body(blk(
                decl("n", i32(), selff("n")),
                decl("cur", f32arr(), newArr(f32(), lv("n"))),
                decl("nxt", f32arr(), newArr(f32(), lv("n"))),
                forRange("i", ci(0), lv("n"),
                         blk(aset(lv("cur"), lv("i"),
                                  intr(Intrinsic::RngHashF32, selff("seed"), lv("i"))))),
                forRange("s", ci(0), lv("steps"), blk(
                    forRange("i", ci(0), lv("n"), blk(
                        decl("r", Type::cls("ScalarFloat"),
                             call(selff("solver"), "solve",
                                  newObj("ScalarFloat",
                                         aget(lv("cur"), rem(add(sub(lv("i"), ci(1)), lv("n")), lv("n")))),
                                  newObj("ScalarFloat",
                                         aget(lv("cur"), rem(add(lv("i"), ci(1)), lv("n")))),
                                  newObj("ScalarFloat", aget(lv("cur"), lv("i"))))),
                        aset(lv("nxt"), lv("i"), call(lv("r"), "val")))),
                    decl("tswap", f32arr(), lv("cur")),
                    assign("cur", lv("nxt")),
                    assign("nxt", lv("tswap")))),
                decl("sum", f64(), cd(0.0)),
                forRange("i", ci(0), lv("n"),
                         blk(assign("sum", add(lv("sum"), cast(f64(), aget(lv("cur"), lv("i"))))))),
                exprS(intr(Intrinsic::FreeArray, lv("cur"))),
                exprS(intr(Intrinsic::FreeArray, lv("nxt"))),
                ret(lv("sum"))));
    }

    // ------------------------------------- Listings 3-4: one-point stencil
    pb.cls("Generator").interfaceClass()
        .method("make", f32arr()).param("length", i32()).param("seed", i32()).abstractMethod();
    pb.cls("Solver").interfaceClass()
        .method("solve", f32()).param("selfv", f32()).param("index", i32()).abstractMethod();
    pb.cls("Stencil")
        .method("run", f64()).param("length", i32()).param("updateCnt", i32()).abstractMethod();
    {
        auto& c = pb.cls("StencilOnGpuAndMPI").extends("Stencil");
        c.field("solver", Type::cls("Solver"));
        c.field("generator", Type::cls("Generator"));
        c.ctor()
            .param("solver_", Type::cls("Solver"))
            .param("generator_", Type::cls("Generator"))
            .body(blk(setSelf("solver", lv("solver_")), setSelf("generator", lv("generator_"))));

        // Listing 4's runGPU: one thread per element, solver devirtualized.
        auto& k = c.method("runGPU", Type::voidTy()).global();
        k.param("conf", Type::cls(Program::cudaConfigClass()));
        k.param("array", f32arr());
        k.body(blk(decl("x", i32(), tidxX()),
                   aset(lv("array"), lv("x"),
                        call(selff("solver"), "solve", aget(lv("array"), lv("x")), lv("x"))),
                   retVoid()));

        c.method("run", f64())
            .param("length", i32())
            .param("updateCnt", i32())
            .body(blk(
                decl("rank", i32(), mpiRank()),
                decl("array", f32arr(),
                     call(selff("generator"), "make", lv("length"), lv("rank"))),
                decl("arrayOnGPU", f32arr(), intr(Intrinsic::GpuMallocF32, lv("length"))),
                exprS(intr(Intrinsic::GpuMemcpyH2DF32, lv("arrayOnGPU"), lv("array"),
                           lv("length"))),
                decl("conf", Type::cls(Program::cudaConfigClass()),
                     cudaConfig(dim3of(ci(1)), dim3of(lv("length")), ci(0))),
                forRange("i", ci(0), lv("updateCnt"),
                         blk(exprS(call(self(), "runGPU", lv("conf"), lv("arrayOnGPU"))))),
                exprS(intr(Intrinsic::GpuMemcpyD2HF32, lv("array"), lv("arrayOnGPU"),
                           lv("length"))),
                exprS(intr(Intrinsic::GpuFree, lv("arrayOnGPU"))),
                decl("sum", f64(), cd(0.0)),
                forRange("j", ci(0), lv("length"),
                         blk(assign("sum", add(lv("sum"), cast(f64(), aget(lv("array"), lv("j"))))))),
                ifs(gt(mpiSize(), ci(1)),
                    blk(assign("sum", intr(Intrinsic::MpiAllreduceSumF64, lv("sum"))))),
                exprS(intr(Intrinsic::FreeArray, lv("array"))),
                ret(lv("sum"))));
    }
}

// ------------------------------------------------- AoS cell chain (SoA demo)
//
// EXTENSION: the showcase workload of the proveLayout AoS->SoA pass. `Cell`
// is a six-component f32 state record; CellStencil1D runs a three-point
// damped-averaging update over Cell[] buffers where every element access is
// a provable field path (`cur[i].u`) and every store is a fresh
// `new Cell(...)`. Under the AoS layout each lane read is struct-strided
// (24-byte stride — a gather), so the sweep is ScalarOnly; under WJ_SOA=1
// the translator stores the buffers as six contiguous lanes and the same
// loop vectorizes unit-stride.
void buildCellWorkload(ProgramBuilder& pb) {
    static const char* F[] = {"u", "v", "w", "a", "b", "c"};
    {
        auto& c = pb.cls("Cell").finalClass();
        for (const char* f : F) c.field(f, f32());
        auto& ct = c.ctor();
        for (const char* f : F) ct.param(std::string(f) + "_", f32());
        Block b;
        for (const char* f : F) b.push_back(setSelf(f, lv(std::string(f) + "_")));
        ct.body(std::move(b));
    }

    auto& c = pb.cls("CellStencil1D").extends("StencilRunner");
    c.field("n", i32()).field("seed", i32());
    c.field("ca", f32()).field("cb", f32());
    c.ctor()
        .param("n_", i32())
        .param("seed_", i32())
        .param("ca_", f32())
        .param("cb_", f32())
        .body(blk(setSelf("n", lv("n_")), setSelf("seed", lv("seed_")),
                  setSelf("ca", lv("ca_")), setSelf("cb", lv("cb_"))));

    const Type cell = Type::cls("Cell");
    const Type cellArr = Type::array(cell);
    // cur[<idx>].<f> — the one access shape the layout pass admits.
    auto lane = [](const char* arr, ExprPtr idx, const char* f) {
        return getf(aget(lv(arr), std::move(idx)), f);
    };
    // new Cell(cur[at].u, ..., cur[at].c): an element rebuilt through field
    // paths (the pass forbids whole-object copies, so the boundary
    // copy-through is written lane by lane). `at` regenerates the index
    // expression per field — DSL trees are uniquely owned.
    auto copyCell = [&](auto at) {
        std::vector<ExprPtr> args;
        for (const char* f : F) args.push_back(lane("cur", at(), f));
        return newObjV("Cell", std::move(args));
    };

    // Deterministic fill: lane k of element i seeds from index i + k*n, so
    // the six lanes decorrelate while staying reproducible.
    Block fill;
    {
        std::vector<ExprPtr> args;
        for (int k = 0; k < 6; ++k) {
            args.push_back(intr(Intrinsic::RngHashF32, selff("seed"),
                                add(lv("i"), mul(ci(k), lv("n")))));
        }
        fill.push_back(aset(lv("cur"), lv("i"), newObjV("Cell", std::move(args))));
    }

    // Interior update: f' = ca*(f[i-1] + f[i+1]) + cb*f[i] for every lane.
    Block inner;
    inner.push_back(decl("im", i32(), sub(lv("i"), ci(1))));
    inner.push_back(decl("ip", i32(), add(lv("i"), ci(1))));
    {
        std::vector<ExprPtr> upd;
        for (const char* f : F) {
            upd.push_back(
                add(mul(lv("ca"), add(lane("cur", lv("im"), f), lane("cur", lv("ip"), f))),
                    mul(lv("cb"), lane("cur", lv("i"), f))));
        }
        inner.push_back(aset(lv("nxt"), lv("i"), newObjV("Cell", std::move(upd))));
    }

    // One step: pinned ends copied through, interior swept, buffers swapped.
    // Guarded by n > 1 so degenerate sizes never swap in unwritten elements.
    Block step;
    step.push_back(aset(lv("nxt"), ci(0), copyCell([] { return ci(0); })));
    step.push_back(decl("last", i32(), sub(lv("n"), ci(1))));
    step.push_back(aset(lv("nxt"), lv("last"), copyCell([] { return lv("last"); })));
    step.push_back(forRange("i", ci(1), sub(lv("n"), ci(1)), std::move(inner)));
    step.push_back(decl("t", cellArr, lv("cur")));
    step.push_back(assign("cur", lv("nxt")));
    step.push_back(assign("nxt", lv("t")));

    Block cks;
    {
        ExprPtr s = lv("sum");
        for (const char* f : F) s = add(std::move(s), cast(f64(), lane("cur", lv("i"), f)));
        cks.push_back(assign("sum", std::move(s)));
    }

    Block body;
    body.push_back(decl("n", i32(), selff("n")));
    body.push_back(decl("ca", f32(), selff("ca")));
    body.push_back(decl("cb", f32(), selff("cb")));
    body.push_back(decl("cur", cellArr, newArr(cell, lv("n"))));
    body.push_back(decl("nxt", cellArr, newArr(cell, lv("n"))));
    body.push_back(forRange("i", ci(0), lv("n"), std::move(fill)));
    body.push_back(ifs(gt(lv("n"), ci(1)),
                       blk(forRange("s", ci(0), lv("steps"), std::move(step)))));
    body.push_back(decl("sum", f64(), cd(0.0)));
    body.push_back(forRange("i", ci(0), lv("n"), std::move(cks)));
    body.push_back(ret(lv("sum")));
    c.method("run", f64()).param("steps", i32()).body(std::move(body));

    // Lane-projection probe: the textbook AoS->SoA case. The hot loop reads
    // only the `u` lane of the six-field record into a prim f32[] — under
    // AoS every element drags all 24 bytes through the cache to use 4 and
    // the read is struct-strided (ScalarOnly); under WJ_SOA=1 the loop
    // touches just the `u` lane, unit-stride and vectorizable. `ca` decays
    // per step so no iteration's sweep is hoistable as redundant.
    Block pfill;
    {
        std::vector<ExprPtr> args;
        for (int k = 0; k < 6; ++k) {
            args.push_back(intr(Intrinsic::RngHashF32, selff("seed"),
                                add(lv("i"), mul(ci(k), lv("n")))));
        }
        pfill.push_back(aset(lv("cur"), lv("i"), newObjV("Cell", std::move(args))));
    }
    Block pinner;
    pinner.push_back(decl("im", i32(), sub(lv("i"), ci(1))));
    pinner.push_back(decl("ip", i32(), add(lv("i"), ci(1))));
    pinner.push_back(
        aset(lv("out"), lv("i"),
             add(mul(lv("ca"), add(lane("cur", lv("im"), "u"), lane("cur", lv("ip"), "u"))),
                 mul(lv("cb"), lane("cur", lv("i"), "u")))));
    Block pstep;
    pstep.push_back(aset(lv("out"), ci(0), lane("cur", ci(0), "u")));
    pstep.push_back(decl("last", i32(), sub(lv("n"), ci(1))));
    pstep.push_back(aset(lv("out"), lv("last"), lane("cur", lv("last"), "u")));
    pstep.push_back(forRange("i", ci(1), sub(lv("n"), ci(1)), std::move(pinner)));
    pstep.push_back(assign("acc", add(lv("acc"), cast(f64(), aget(lv("out"), ci(0))))));
    pstep.push_back(assign("ca", mul(lv("ca"), cf(0.999f))));

    Block pcks;
    pcks.push_back(assign("sum", add(lv("sum"), cast(f64(), aget(lv("out"), lv("i"))))));

    Block pbody;
    pbody.push_back(decl("n", i32(), selff("n")));
    pbody.push_back(decl("ca", f32(), selff("ca")));
    pbody.push_back(decl("cb", f32(), selff("cb")));
    pbody.push_back(decl("cur", cellArr, newArr(cell, lv("n"))));
    pbody.push_back(decl("out", Type::array(f32()), newArr(f32(), lv("n"))));
    pbody.push_back(forRange("i", ci(0), lv("n"), std::move(pfill)));
    pbody.push_back(decl("acc", f64(), cd(0.0)));
    pbody.push_back(ifs(gt(lv("n"), ci(1)),
                        blk(forRange("s", ci(0), lv("steps"), std::move(pstep)))));
    pbody.push_back(decl("sum", f64(), lv("acc")));
    pbody.push_back(forRange("i", ci(0), lv("n"), std::move(pcks)));
    pbody.push_back(ret(lv("sum")));
    c.method("probe", f64()).param("steps", i32()).body(std::move(pbody));
}

} // namespace

void registerLibrary(ProgramBuilder& pb) {
    buildValueClasses(pb);
    buildGrid(pb);
    buildSolverHierarchy(pb);
    buildRunners(pb);
    buildCellWorkload(pb);
}

void registerDiffusionApp(ProgramBuilder& pb) {
    // Dif3DSolver — what the paper's Section 4.1 library user writes.
    {
        auto& c = pb.cls("Dif3DSolver").extends("ThreeDSolver").finalClass();
        auto& m = c.method("solve", Type::cls("ScalarFloat"));
        for (const char* p : {"c", "w", "e", "n", "s", "b", "t"}) m.param(p, Type::cls("ScalarFloat"));
        m.param("q", Type::cls("DiffusionQuantity"));
        m.body(blk(decl(
                       "value", f32(),
                       add(add(add(add(add(add(mul(getf(lv("q"), "cc"), call(lv("c"), "val")),
                                               mul(getf(lv("q"), "cw"), call(lv("w"), "val"))),
                                           mul(getf(lv("q"), "ce"), call(lv("e"), "val"))),
                                       mul(getf(lv("q"), "cn"), call(lv("n"), "val"))),
                                   mul(getf(lv("q"), "cs"), call(lv("s"), "val"))),
                               mul(getf(lv("q"), "cb"), call(lv("b"), "val"))),
                           mul(getf(lv("q"), "ct"), call(lv("t"), "val")))),
                   ret(newObj("ScalarFloat", lv("value")))));
    }
    // Raw twin of Dif3DSolver (same arithmetic, no ScalarFloat boxes).
    {
        auto& c = pb.cls("Dif3DSolverRaw").extends("ThreeDSolverRaw").finalClass();
        auto& m = c.method("solveRaw", f32());
        for (const char* p2 : {"c", "w", "e", "n", "s", "b", "t"}) m.param(p2, f32());
        m.param("q", Type::cls("DiffusionQuantity"));
        m.body(blk(ret(
            add(add(add(add(add(add(mul(getf(lv("q"), "cc"), lv("c")),
                                    mul(getf(lv("q"), "cw"), lv("w"))),
                                mul(getf(lv("q"), "ce"), lv("e"))),
                            mul(getf(lv("q"), "cn"), lv("n"))),
                        mul(getf(lv("q"), "cs"), lv("s"))),
                    mul(getf(lv("q"), "cb"), lv("b"))),
                mul(getf(lv("q"), "ct"), lv("t"))))));
    }

    // Dif1DSolver — Listing 1 verbatim.
    {
        auto& c = pb.cls("Dif1DSolver").extends("OneDSolver").finalClass();
        c.field("a", f32()).field("b", f32());
        c.ctor().param("a_", f32()).param("b_", f32())
            .body(blk(setSelf("a", lv("a_")), setSelf("b", lv("b_"))));
        c.method("solve", Type::cls("ScalarFloat"))
            .param("left", Type::cls("ScalarFloat"))
            .param("right", Type::cls("ScalarFloat"))
            .param("selfv", Type::cls("ScalarFloat"))
            .body(blk(decl("value", f32(),
                           add(mul(selff("a"), add(call(lv("left"), "val"),
                                                   call(lv("right"), "val"))),
                               mul(selff("b"), call(lv("selfv"), "val")))),
                      ret(newObj("ScalarFloat", lv("value")))));
    }
}

Program buildProgram() {
    ProgramBuilder pb;
    registerLibrary(pb);
    registerDiffusionApp(pb);
    return pb.build();
}

// ---------------------------------------------------------- composition

namespace {

Value makeQuantity(Interp& in, const DiffusionCoeffs& c) {
    return in.instantiate("DiffusionQuantity",
                          {Value::ofF32(c.cc), Value::ofF32(c.cw), Value::ofF32(c.ce),
                           Value::ofF32(c.cn), Value::ofF32(c.cs), Value::ofF32(c.cb),
                           Value::ofF32(c.ct)});
}

} // namespace

Value makeCpuRunner(Interp& in, int nx, int ny, int nz, const DiffusionCoeffs& c, int seed) {
    Value solver = in.instantiate("Dif3DSolver", {});
    Value grid = in.instantiate("FloatGridDblB",
                                {Value::ofI32(nx), Value::ofI32(ny), Value::ofI32(nz)});
    return in.instantiate("StencilCPU3DDblB",
                          {solver, makeQuantity(in, c), grid, Value::ofI32(seed)});
}

Value makeCpuRawRunner(Interp& in, int nx, int ny, int nz, const DiffusionCoeffs& c, int seed) {
    Value solver = in.instantiate("Dif3DSolverRaw", {});
    Value grid = in.instantiate("FloatGridDblB",
                                {Value::ofI32(nx), Value::ofI32(ny), Value::ofI32(nz)});
    return in.instantiate("StencilCPU3DRaw",
                          {solver, makeQuantity(in, c), grid, Value::ofI32(seed)});
}

Value makeMpiRunner(Interp& in, int nx, int ny, int nzLocal, const DiffusionCoeffs& c, int seed) {
    Value solver = in.instantiate("Dif3DSolver", {});
    return in.instantiate("StencilCPU3D_MPI",
                          {solver, makeQuantity(in, c), Value::ofI32(nx), Value::ofI32(ny),
                           Value::ofI32(nzLocal), Value::ofI32(seed)});
}

Value makeMpiOverlapRunner(Interp& in, int nx, int ny, int nzLocal, const DiffusionCoeffs& c,
                           int seed) {
    Value solver = in.instantiate("Dif3DSolver", {});
    return in.instantiate("StencilCPU3D_MPI_Overlap",
                          {solver, makeQuantity(in, c), Value::ofI32(nx), Value::ofI32(ny),
                           Value::ofI32(nzLocal), Value::ofI32(seed)});
}

Value makeGpuRunner(Interp& in, int nx, int ny, int nz, const DiffusionCoeffs& c, int seed,
                    int blockSize) {
    Value solver = in.instantiate("Dif3DSolver", {});
    return in.instantiate("StencilGPU3D",
                          {solver, makeQuantity(in, c), Value::ofI32(nx), Value::ofI32(ny),
                           Value::ofI32(nz), Value::ofI32(seed), Value::ofI32(blockSize)});
}

Value makeGpuSharedRunner(Interp& in, int nx, int ny, int nz, const DiffusionCoeffs& c,
                          int seed, int blockSize) {
    if (nx % blockSize != 0) throw UsageError("StencilGPU3DShared requires nx % blockSize == 0");
    Value solver = in.instantiate("Dif3DSolver", {});
    return in.instantiate("StencilGPU3DShared",
                          {solver, makeQuantity(in, c), Value::ofI32(nx), Value::ofI32(ny),
                           Value::ofI32(nz), Value::ofI32(seed), Value::ofI32(blockSize)});
}

Value makeGpuMpiRunner(Interp& in, int nx, int ny, int nzLocal, const DiffusionCoeffs& c,
                       int seed, int blockSize) {
    Value solver = in.instantiate("Dif3DSolver", {});
    return in.instantiate("StencilGPU3D_MPI",
                          {solver, makeQuantity(in, c), Value::ofI32(nx), Value::ofI32(ny),
                           Value::ofI32(nzLocal), Value::ofI32(seed), Value::ofI32(blockSize)});
}

Value makeCpu1DRunner(Interp& in, int n, float a, float b, int seed) {
    Value solver = in.instantiate("Dif1DSolver", {Value::ofF32(a), Value::ofF32(b)});
    return in.instantiate("StencilCPU1D", {solver, Value::ofI32(n), Value::ofI32(seed)});
}

Value makeCellRunner(Interp& in, int n, float ca, float cb, int seed) {
    return in.instantiate("CellStencil1D", {Value::ofI32(n), Value::ofI32(seed),
                                            Value::ofF32(ca), Value::ofF32(cb)});
}

// ----------------------------------------------------------- references
//
// Plain-C++ re-statements of the same numerics, with the same operation
// order and the same rng. Tests pin every platform variant against these.

double referenceDiffusion3D(int nx, int ny, int nz, const DiffusionCoeffs& c, int seed,
                            int steps) {
    const size_t total = static_cast<size_t>(nx) * ny * nz;
    std::vector<float> cur(total), nxt(total);
    for (size_t i = 0; i < total; ++i) {
        cur[i] = wj_rng_hash_f32(seed, static_cast<int32_t>(i));
    }
    auto idx = [&](int x, int y, int z) {
        return (static_cast<size_t>(z) * ny + y) * nx + x;
    };
    for (int s = 0; s < steps; ++s) {
        for (int z = 0; z < nz; ++z)
            for (int y = 0; y < ny; ++y)
                for (int x = 0; x < nx; ++x) {
                    const int xm = (x - 1 + nx) % nx, xp = (x + 1) % nx;
                    const int ym = (y - 1 + ny) % ny, yp = (y + 1) % ny;
                    const int zm = (z - 1 + nz) % nz, zp = (z + 1) % nz;
                    const float v = c.cc * cur[idx(x, y, z)] + c.cw * cur[idx(xm, y, z)] +
                                    c.ce * cur[idx(xp, y, z)] + c.cn * cur[idx(x, ym, z)] +
                                    c.cs * cur[idx(x, yp, z)] + c.cb * cur[idx(x, y, zm)] +
                                    c.ct * cur[idx(x, y, zp)];
                    nxt[idx(x, y, z)] = v;
                }
        cur.swap(nxt);
    }
    double sum = 0;
    for (float v : cur) sum += static_cast<double>(v);
    return sum;
}

double referenceCellChain(int n, float ca, float cb, int seed, int steps) {
    struct CellV {
        float f[6];
    };
    std::vector<CellV> cur(static_cast<size_t>(n)), nxt(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        for (int k = 0; k < 6; ++k) {
            cur[static_cast<size_t>(i)].f[k] = wj_rng_hash_f32(seed, i + k * n);
        }
    }
    if (n > 1) {
        for (int s = 0; s < steps; ++s) {
            nxt[0] = cur[0];
            nxt[static_cast<size_t>(n - 1)] = cur[static_cast<size_t>(n - 1)];
            for (int i = 1; i < n - 1; ++i) {
                for (int k = 0; k < 6; ++k) {
                    nxt[static_cast<size_t>(i)].f[k] =
                        ca * (cur[static_cast<size_t>(i - 1)].f[k] +
                              cur[static_cast<size_t>(i + 1)].f[k]) +
                        cb * cur[static_cast<size_t>(i)].f[k];
                }
            }
            cur.swap(nxt);
        }
    }
    double sum = 0;
    for (int i = 0; i < n; ++i) {
        for (int k = 0; k < 6; ++k) sum += static_cast<double>(cur[static_cast<size_t>(i)].f[k]);
    }
    return sum;
}

double referenceDiffusion1D(int n, float a, float b, int seed, int steps) {
    std::vector<float> cur(static_cast<size_t>(n)), nxt(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) cur[static_cast<size_t>(i)] = wj_rng_hash_f32(seed, i);
    for (int s = 0; s < steps; ++s) {
        for (int i = 0; i < n; ++i) {
            const float left = cur[static_cast<size_t>((i - 1 + n) % n)];
            const float right = cur[static_cast<size_t>((i + 1) % n)];
            nxt[static_cast<size_t>(i)] = a * (left + right) + b * cur[static_cast<size_t>(i)];
        }
        cur.swap(nxt);
    }
    double sum = 0;
    for (float v : cur) sum += static_cast<double>(v);
    return sum;
}

} // namespace wj::stencil

