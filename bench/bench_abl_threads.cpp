// Ablation: the intra-rank multithreaded execution backend.
//
// The paper's hybrid runs put one MPI rank per node and fill the node's
// cores with threads. This bench sweeps WJ_THREADS over {1, 2, 4, 8} for
// the two loops the dependence prover parallelizes automatically — the
// diffusion interior sweep (StencilCPU3D_MPI.step, guarded on cur != nxt)
// and the Fox block multiply (OptimizedCalculator.multiplyAcc, guarded on
// br != cr) — and checks every threaded result bitwise against the serial
// run (WJ_PARALLEL=0). Wall times are REAL; speedups only materialize on a
// host with that many cores (a 1-core container shows ~1.0x throughout).
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "stencil/stencil_lib.h"

using namespace wj;

namespace {

struct Sample {
    double value = 0;    ///< checksum of the run (bitwise-compared)
    double seconds = 0;  ///< wall time of the timed invoke
};

/// jit4mpi + one warm invoke + one timed invoke under the given env.
template <typename MakeCode>
Sample timeRun(int threads, bool parallel, MakeCode make) {
    setenv("WJ_PARALLEL", parallel ? "1" : "0", 1);
    setenv("WJ_THREADS", std::to_string(threads).c_str(), 1);
    JitCode code = make();
    (void)code.invoke();  // warm: pool spawn + cache fill out of the timing
    const auto t0 = std::chrono::steady_clock::now();
    Sample s;
    s.value = code.invoke().asF64();
    s.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return s;
}

bool bitEq(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

/// One sweep table: serial row, then WJ_THREADS in {1,2,4,8}.
template <typename MakeCode>
bool sweep(const char* what, MakeCode make) {
    const Sample serial = timeRun(1, false, make);
    std::printf("%s (serial %.6fs, checksum %.17g)\n", what, serial.seconds, serial.value);
    std::printf("%10s %12s %10s %10s\n", "threads", "time", "speedup", "bitwise");
    bool ok = true;
    for (int t : {1, 2, 4, 8}) {
        const Sample par = timeRun(t, true, make);
        const bool eq = bitEq(serial.value, par.value);
        ok &= eq;
        std::printf("%10d %11.6fs %9.2fx %10s\n", t, par.seconds,
                    serial.seconds / par.seconds, eq ? "equal" : "MISMATCH");
    }
    std::printf("\n");
    return ok;
}

} // namespace

int main(int argc, char** argv) {
    const auto opts = wjbench::parseArgs(argc, argv);
    wjbench::banner("Ablation: intra-rank threading (WJ_THREADS sweep)",
                    "analysis-proven parallel loops: diffusion interior + Fox multiply",
                    "wall time REAL on this host; determinism checked bitwise");

    // Deep single-rank slab: all compute in the proven interior loop.
    const int n = opts.full ? 66 : 34;
    const int nz = opts.full ? 256 : 64;
    const int steps = opts.full ? 20 : 8;
    const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    Program sprog = stencil::buildProgram();
    Interp sin(sprog);
    bool ok = sweep("diffusion MPI x1 rank", [&] {
        Value r = stencil::makeMpiRunner(sin, n, n, nz, coeffs, 42);
        JitCode code = WootinJ::jit4mpi(sprog, r, "run", {Value::ofI32(steps)});
        code.set4MPI(1);
        return code;
    });

    const int mm = opts.full ? 256 : 128;
    Program mprog = matmul::buildProgram();
    Interp min(mprog);
    ok &= sweep("Fox matmul q=2 x4 ranks", [&] {
        Value app = matmul::makeMpiFoxApp(min, matmul::Calc::Optimized, 2);
        JitCode code = WootinJ::jit4mpi(mprog, app, "run",
                                        {Value::ofI32(mm), Value::ofI32(7)});
        code.set4MPI(4);
        return code;
    });

    std::printf("ablation check: threaded results bitwise-equal serial -> %s\n",
                ok ? "holds" : "VIOLATED");
    return ok ? 0 : 1;
}
