// Ablation: the intra-rank multithreaded execution backend.
//
// The paper's hybrid runs put one MPI rank per node and fill the node's
// cores with threads. This bench sweeps WJ_THREADS over {1, 2, 4, 8} for
// three workloads the dependence prover parallelizes automatically:
//
//   * the diffusion interior sweep (StencilCPU3D_MPI.step, guarded on
//     cur != nxt) — proven parallel-for; every threaded checksum must be
//     bitwise-equal to the serial run (WJ_PARALLEL=0);
//   * the Fox block multiply (OptimizedCalculator.multiplyAcc, guarded on
//     br != cr) — same parallel-for contract;
//   * the CG solver (CGSolver.run), whose DotProduct.dot loops the prover
//     now classifies ParallelReduce. Its dot trip count exceeds the fixed
//     reduction chunk grid, so the parallel residual is NOT bitwise-equal
//     to the serial fold (the f64 sum is regrouped); instead the contract
//     is the ordered-combine guarantee: bitwise-IDENTICAL across every
//     WJ_THREADS value, and within tolerance of the serial result.
//
// Wall times are REAL; speedups only materialize on a host with that many
// cores (a 1-core container shows ~1.0x throughout). Every row lands in
// BENCH_abl_threads.json. --smoke runs a single small CG row as a CI
// tripwire for reduction-codegen regressions.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cg/cg_lib.h"
#include "common.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "stencil/stencil_lib.h"

using namespace wj;

namespace {

struct Sample {
    double value = 0;    ///< scalar observable of the run (checksum / residual)
    double seconds = 0;  ///< median wall time of the timed invokes
};

/// jit4mpi + one warm invoke + median-of-3 timed invokes under the env.
template <typename MakeCode>
Sample timeRun(int threads, bool parallel, MakeCode make) {
    setenv("WJ_PARALLEL", parallel ? "1" : "0", 1);
    setenv("WJ_THREADS", std::to_string(threads).c_str(), 1);
    JitCode code = make();
    (void)code.invoke();  // warm: pool spawn + cache fill out of the timing
    Sample s;
    std::vector<double> times;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        s.value = code.invoke().asF64();
        times.push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
    }
    std::sort(times.begin(), times.end());
    s.seconds = times[times.size() / 2];
    return s;
}

bool bitEq(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

/// One parallel-for sweep table: serial row, then WJ_THREADS in {1,2,4,8}.
/// Contract: every threaded result bitwise-equal to the serial run.
template <typename MakeCode>
bool sweep(const std::string& what, int ranks, MakeCode make) {
    const Sample serial = timeRun(1, false, make);
    std::printf("%s (serial %.6fs, checksum %.17g)\n", what.c_str(), serial.seconds,
                serial.value);
    std::printf("%10s %12s %10s %10s\n", "threads", "time", "speedup", "bitwise");
    wjbench::jsonRow(what + " serial", serial.seconds * 1e9, 1, ranks);
    bool ok = true;
    for (int t : {1, 2, 4, 8}) {
        const Sample par = timeRun(t, true, make);
        const bool eq = bitEq(serial.value, par.value);
        ok &= eq;
        std::printf("%10d %11.6fs %9.2fx %10s\n", t, par.seconds,
                    serial.seconds / par.seconds, eq ? "equal" : "MISMATCH");
        wjbench::jsonRow(what + " threads=" + std::to_string(t), par.seconds * 1e9, t, ranks);
    }
    std::printf("\n");
    return ok;
}

/// The CG reduction sweep: serial row, then WJ_THREADS from `threadList`.
/// Contract: all threaded residuals bitwise-identical to EACH OTHER (the
/// ordered combine is thread-count-invariant), and within `relTol` of the
/// serial residual (the fixed chunk grid regroups the f64 dot sums).
template <typename MakeCode>
bool sweepReduce(const std::string& what, int ranks, const std::vector<int>& threadList,
                 double relTol, MakeCode make) {
    const Sample serial = timeRun(1, false, make);
    std::printf("%s (serial %.6fs, residual %.17g)\n", what.c_str(), serial.seconds,
                serial.value);
    std::printf("%10s %12s %10s %12s %10s\n", "threads", "time", "speedup", "cross-thrd",
                "vs-serial");
    wjbench::jsonRow(what + " serial", serial.seconds * 1e9, 1, ranks);
    bool ok = true;
    bool haveFirst = false;
    double first = 0;
    for (int t : threadList) {
        const Sample par = timeRun(t, true, make);
        if (!haveFirst) {
            haveFirst = true;
            first = par.value;
        }
        const bool eq = bitEq(first, par.value);
        const double rel =
            std::fabs(par.value - serial.value) / std::max(1.0, std::fabs(serial.value));
        const bool close = rel <= relTol;
        ok &= eq && close;
        std::printf("%10d %11.6fs %9.2fx %12s %9.1e%s\n", t, par.seconds,
                    serial.seconds / par.seconds, eq ? "identical" : "MISMATCH", rel,
                    close ? "" : " DIVERGED");
        wjbench::jsonRow(what + " threads=" + std::to_string(t), par.seconds * 1e9, t, ranks);
    }
    std::printf("\n");
    return ok;
}

} // namespace

int main(int argc, char** argv) {
    const auto opts = wjbench::parseArgs(argc, argv);
    wjbench::banner("Ablation: intra-rank threading (WJ_THREADS sweep)",
                    "proven parallel loops: diffusion interior + Fox multiply + CG reductions",
                    "wall time REAL on this host; determinism checked bitwise");

    Program cprog = cg::buildProgram();
    Interp cin(cprog);
    const int cgN = opts.smoke ? 4096 : (opts.full ? 1 << 20 : 1 << 16);
    const int cgIters = opts.smoke ? 8 : (opts.full ? 50 : 25);
    auto makeCg = [&] {
        Value solver = cg::makeCpuSolver(cin);
        JitCode code = WootinJ::jit4mpi(cprog, solver, "run",
                                        {Value::ofI32(cgN), Value::ofI32(11),
                                         Value::ofI32(cgIters)});
        code.set4MPI(1);
        return code;
    };

    if (opts.smoke) {
        // One fast row: CG at 2 threads vs serial. Catches broken reduction
        // codegen (mis-combined partials diverge far beyond the tolerance).
        const bool ok = sweepReduce("CG n=4096 x1 rank (smoke)", 1, {2}, 1e-4, makeCg);
        std::printf("smoke check: CG reduction determinism -> %s\n", ok ? "holds" : "VIOLATED");
        return ok ? 0 : 1;
    }

    // Deep single-rank slab: all compute in the proven interior loop.
    const int n = opts.full ? 66 : 34;
    const int nz = opts.full ? 256 : 64;
    const int steps = opts.full ? 20 : 8;
    const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    Program sprog = stencil::buildProgram();
    Interp sin(sprog);
    bool ok = sweep("diffusion MPI x1 rank", 1, [&] {
        Value r = stencil::makeMpiRunner(sin, n, n, nz, coeffs, 42);
        JitCode code = WootinJ::jit4mpi(sprog, r, "run", {Value::ofI32(steps)});
        code.set4MPI(1);
        return code;
    });

    const int mm = opts.full ? 256 : 128;
    Program mprog = matmul::buildProgram();
    Interp min(mprog);
    ok &= sweep("Fox matmul q=2 x4 ranks", 4, [&] {
        Value app = matmul::makeMpiFoxApp(min, matmul::Calc::Optimized, 2);
        JitCode code = WootinJ::jit4mpi(mprog, app, "run",
                                        {Value::ofI32(mm), Value::ofI32(7)});
        code.set4MPI(4);
        return code;
    });

    ok &= sweepReduce("CG n=" + std::to_string(cgN) + " x1 rank", 1, {1, 2, 4, 8}, 1e-4,
                      makeCg);

    std::printf("ablation check: parallel-for bitwise-equal serial, "
                "reductions thread-count-invariant -> %s\n",
                ok ? "holds" : "VIOLATED");
    return ok ? 0 : 1;
}
