// Figures 13-16: strong scalability of the WootinJ programs EXCLUDING
// compilation time, against C. The paper's point: the one-time 4-5 s
// compilation is the main WootinJ overhead; once excluded (it amortizes
// over long runs and is problem-size independent), WootinJ tracks C.
//
// Rows: for each of the four strong-scaling experiments (diffusion CPU/GPU,
// matmul CPU/GPU) print C, WootinJ including compilation (for a fixed
// step/iteration budget), and WootinJ excluding it.
#include "common.h"
#include "perf/perfmodel.h"

int main(int argc, char** argv) {
    const auto opts = wjbench::parseArgs(argc, argv);
    wjbench::banner("Figures 13-16", "strong scaling excluding compilation time",
                    "kernel costs MEASURED, cluster MODELED, compile time MEASURED (Table 3)");

    const auto dc = wjbench::measureDiffusionCosts(false, opts.full);
    const auto mc = wjbench::measureMatmulCosts(false, opts.full);
    const auto compiles = wjbench::measureCompileTimes();
    const auto m = wj::perf::MachineProfile::tsubame2();
    const int steps = 1000;  // the amortization budget

    // ---- Figure 13: diffusion, CPU, strong
    {
        wj::perf::StencilScaling sc{};
        sc.nx = sc.ny = 128;
        sc.nzPerNodeOrGlobal = 128 * 8;
        std::printf("Figure 13: diffusion CPU strong scaling, %d steps, seconds total\n", steps);
        std::printf("%6s %12s %14s %14s\n", "nodes", "C", "WJ+compile", "WJ-excl");
        for (int p : {1, 2, 4, 8, 16, 32, 64, 128}) {
            sc.secondsPerCell = dc.c;
            const double tc = sc.strongStepCpu(m, p) * steps;
            sc.secondsPerCell = dc.wootinj;
            const double tw = sc.strongStepCpu(m, p) * steps;
            std::printf("%6d %12.3f %14.3f %14.3f\n", p, tc, tw + compiles[0].total(), tw);
        }
    }
    // ---- Figure 14: diffusion, GPU, strong
    {
        wj::perf::StencilScaling sc{};
        sc.nx = sc.ny = 384;
        sc.nzPerNodeOrGlobal = 384 * 4;
        std::printf("\nFigure 14: diffusion GPU strong scaling, %d steps, seconds total\n", steps);
        std::printf("%6s %12s %14s %14s\n", "GPUs", "C", "WJ+compile", "WJ-excl");
        for (int p : {1, 2, 4, 8, 16, 32, 64}) {
            const double t = sc.strongStepGpu(m, p) * steps;
            std::printf("%6d %12.3f %14.3f %14.3f\n", p, t, t + compiles[1].total(), t);
        }
    }
    // ---- Figure 15: matmul, CPU, strong
    {
        wj::perf::FoxScaling f{};
        f.nPerNodeOrGlobal = 4096;
        std::printf("\nFigure 15: matmul CPU strong scaling, seconds total\n");
        std::printf("%6s %12s %14s %14s\n", "nodes", "C", "WJ+compile", "WJ-excl");
        for (int p : {1, 4, 9, 16, 25, 64, 121}) {
            f.secondsPerFma = mc.c;
            const double tc = f.totalCpu(m, p, false);
            f.secondsPerFma = mc.wootinj;
            const double tw = f.totalCpu(m, p, false);
            std::printf("%6d %12.3f %14.3f %14.3f\n", p, tc, tw + compiles[2].total(), tw);
        }
    }
    // ---- Figure 16: matmul, GPU, strong
    {
        wj::perf::FoxScaling f{};
        f.nPerNodeOrGlobal = 14592;
        std::printf("\nFigure 16: matmul GPU strong scaling, seconds total\n");
        std::printf("%6s %12s %14s %14s\n", "GPUs", "C", "WJ+compile", "WJ-excl");
        for (int p : {1, 4, 9, 16, 25, 64}) {
            const double t = f.totalGpu(m, p, false);
            std::printf("%6d %12.3f %14.3f %14.3f\n", p, t, t + compiles[3].total(), t);
        }
    }
    std::printf("\npaper shape check: WJ-excl within 3x of C in Figures 13/15 -> %s\n",
                (dc.wootinj < 3.0 * dc.c && mc.wootinj < 3.0 * mc.c) ? "holds" : "VIOLATED");
    return 0;
}
