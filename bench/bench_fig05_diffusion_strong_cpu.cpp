// Figure 5: strong scaling of the 3-D diffusion solver, CPU + MPI,
// 128x128x(128x8) total, C vs WootinJ. The modeled curve is backed by a
// REAL MiniMPI execution at a scaled size, validating that the translated
// MPI code actually computes the right answer at each rank count.
#include <cmath>

#include "common.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "perf/perfmodel.h"
#include "stencil/stencil_lib.h"

int main(int argc, char** argv) {
    const auto opts = wjbench::parseArgs(argc, argv);
    wjbench::banner("Figure 5", "strong scaling, 3-D diffusion, CPU+MPI, 128x128x1024 total",
                    "per-cell costs MEASURED; cluster timing MODELED; functional run REAL");

    const auto c = wjbench::measureDiffusionCosts(/*withInterp=*/false, opts.full);
    const auto m = wj::perf::MachineProfile::tsubame2();

    auto stencil = [&](double perCell) {
        wj::perf::StencilScaling s{};
        s.nx = 128;
        s.ny = 128;
        s.nzPerNodeOrGlobal = 128 * 8;
        s.secondsPerCell = perCell;
        return s;
    };

    std::printf("seconds per step (strong scaling) and speedup vs 1 node\n");
    std::printf("%6s %12s %10s %12s %10s\n", "nodes", "C", "speedup", "WootinJ", "speedup");
    const double c1 = stencil(c.c).strongStepCpu(m, 1);
    const double w1 = stencil(c.wootinj).strongStepCpu(m, 1);
    for (int p : {1, 2, 4, 8, 16, 32, 64, 128}) {
        const double tc = stencil(c.c).strongStepCpu(m, p);
        const double tw = stencil(c.wootinj).strongStepCpu(m, p);
        std::printf("%6d %12.5f %10.2f %12.5f %10.2f\n", p, tc, c1 / tc, tw, w1 / tw);
    }

    // Functional validation at a scaled size on real MiniMPI ranks.
    using namespace wj;
    const int nx = 16, ny = 16, nzTotal = 32, steps = 3, seed = 7;
    const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    const double expect = stencil::referenceDiffusion3D(nx, ny, nzTotal, coeffs, seed, steps);
    Program prog = stencil::buildProgram();
    Interp in(prog);
    std::printf("\nreal MiniMPI validation (%dx%dx%d, %d steps, reference %.4f):\n", nx, ny,
                nzTotal, steps, expect);
    for (int p : {1, 2, 4, 8}) {
        Value runner = stencil::makeMpiRunner(in, nx, ny, nzTotal / p, coeffs, seed);
        JitCode code = WootinJ::jit4mpi(prog, runner, "run", {Value::ofI32(steps)});
        code.set4MPI(p);
        const double got = code.invoke().asF64();
        std::printf("  ranks=%-3d checksum=%.4f  %s\n", p, got,
                    std::abs(got - expect) < std::abs(expect) * 1e-9 + 1e-9 ? "ok" : "MISMATCH");
    }
    return 0;
}
