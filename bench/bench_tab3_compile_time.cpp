// Table 3: WootinJ compilation time — code generation by the translator
// plus the external C compiler. The paper measured ~4-5 s with icc on
// TSUBAME; the structure (external compiler dominates, cost independent of
// the problem size) is what reproduces here. Both columns MEASURED.
//
// The bench also reports what the paper could not: warm rows against the
// persistent compile cache (what a relaunched job pays on the same
// machine) and the async compile pipeline overlapping all four cold
// compiles. It runs against a private throw-away WJ_CACHE_DIR so results
// are reproducible and the user's real cache is untouched.
#include <cstdlib>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "common.h"

int main(int argc, char** argv) {
    (void)wjbench::parseArgs(argc, argv);

    // Private, initially-empty cache so cold rows are genuinely cold.
    std::string cacheTmpl = std::filesystem::temp_directory_path() / "wj-tab3-cache.XXXXXX";
    const char* cacheDir = mkdtemp(cacheTmpl.data());
    if (cacheDir) {
        setenv("WJ_CACHE_DIR", cacheDir, 1);
        setenv("WJ_CACHE", "1", 1);
    }

    wjbench::banner("Table 3", "WootinJ compilation time (codegen + external C compiler)",
                    "all values MEASURED on this host");

    const auto rows = wjbench::measureCompileTimes();
    std::printf("%-28s %12s %12s %12s | %12s %12s %6s\n", "program", "codegen", "external cc",
                "cold total", "warm codegen", "cache lookup", "hit");
    for (const auto& r : rows) {
        std::printf("%-28s %9.1f ms %9.1f ms %9.1f ms | %9.1f ms %9.2f ms %6s\n", r.what.c_str(),
                    r.codegen * 1e3, r.external * 1e3, r.total() * 1e3, r.warmCodegen * 1e3,
                    r.warmLookup * 1e3, r.warmHit ? "yes" : "NO");
    }

    std::printf("\npaper shape check: external compiler dominates codegen in every row -> ");
    bool ok = true;
    for (const auto& r : rows) ok = ok && r.external > r.codegen;
    std::printf("%s\n", ok ? "holds" : "VIOLATED");
    std::printf("cache shape check: every warm row skips the external compiler -> ");
    bool warm = true;
    for (const auto& r : rows) warm = warm && r.warmHit;
    std::printf("%s\n", warm ? "holds" : "VIOLATED");

    const auto par = wjbench::measureParallelCompileTimes();
    std::printf("\nasync pipeline: %d cold units, %.1f ms summed cost, %.1f ms wall (%.2fx "
                "overlap)\n",
                par.units, par.sumSeconds * 1e3, par.wallSeconds * 1e3,
                par.wallSeconds > 0 ? par.sumSeconds / par.wallSeconds : 0.0);

    std::printf("(absolute times are smaller than the paper's 4-5 s: cc -O2 on this host vs "
                "icc -O3 -ipo on TSUBAME, and WJ programs are smaller than full Java apps)\n");

    if (cacheDir) {
        std::error_code ec;
        std::filesystem::remove_all(cacheDir, ec);
    }
    return 0;
}
