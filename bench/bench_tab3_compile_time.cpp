// Table 3: WootinJ compilation time — code generation by the translator
// plus the external C compiler. The paper measured ~4-5 s with icc on
// TSUBAME; the structure (external compiler dominates, cost independent of
// the problem size) is what reproduces here. Both columns MEASURED.
#include "common.h"

int main(int argc, char** argv) {
    (void)wjbench::parseArgs(argc, argv);
    wjbench::banner("Table 3", "WootinJ compilation time (codegen + external C compiler)",
                    "all values MEASURED on this host");

    const auto rows = wjbench::measureCompileTimes();
    std::printf("%-28s %12s %12s %12s\n", "program", "codegen", "external cc", "total");
    for (const auto& r : rows) {
        std::printf("%-28s %9.1f ms %9.1f ms %9.1f ms\n", r.what.c_str(), r.codegen * 1e3,
                    r.external * 1e3, r.total() * 1e3);
    }
    std::printf("\npaper shape check: external compiler dominates codegen in every row -> ");
    bool ok = true;
    for (const auto& r : rows) ok = ok && r.external > r.codegen;
    std::printf("%s\n", ok ? "holds" : "VIOLATED");
    std::printf("(absolute times are smaller than the paper's 4-5 s: cc -O2 on this host vs "
                "icc -O3 -ipo on TSUBAME, and WJ programs are smaller than full Java apps)\n");
    return 0;
}
