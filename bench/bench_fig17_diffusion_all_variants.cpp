// Figure 17: 3-D diffusion (paper: 128^3), single CPU thread, ALL variants:
// Java, C++, Template, Template w/o virt., WootinJ, C.
// Paper shape: WootinJ lands near C and Template, far below Java/C++.
#include "common.h"

int main(int argc, char** argv) {
    const auto opts = wjbench::parseArgs(argc, argv);
    wjbench::banner("Figure 17", "3-D diffusion, single thread, all six variants",
                    "all rows MEASURED on this host");

    const auto c = wjbench::measureDiffusionCosts(/*withInterp=*/true, opts.full);
    std::printf("%-22s %16s %12s\n", "variant", "ns/cell/step", "vs C");
    auto row = [&](const char* name, double v) {
        std::printf("%-22s %16.3f %11.1fx\n", name, v * 1e9, v / c.c);
    };
    row("Java", c.interp);
    row("C++ (virtual)", c.cppVirtual);
    row("Template", c.tmpl);
    row("Template w/o virt.", c.tmplNoVirt);
    row("WootinJ", c.wootinj);
    row("C", c.c);

    const bool shape = c.interp > c.wootinj && c.cppVirtual > c.wootinj &&
                       c.wootinj < 3.0 * c.c;
    std::printf("\npaper shape check: WootinJ beats Java & C++-virtual and is within 3x of C "
                "-> %s\n", shape ? "holds" : "VIOLATED");
    return 0;
}
