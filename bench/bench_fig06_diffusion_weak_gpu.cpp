// Figure 6: weak scaling of the 3-D diffusion solver on GPUs, 384^3 per
// GPU (fills the M2050's 3 GB). On GPUs the paper found Template and
// WootinJ indistinguishable (virtual calls were unusable in device code),
// both near C: after translation all variants run the SAME kernel shape,
// so their modeled factor is 1.0; the difference across the figure is the
// halo staging through PCIe. A real GpuSim execution at a scaled size
// validates the translated kernel.
#include <cmath>

#include "common.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "perf/perfmodel.h"
#include "stencil/stencil_lib.h"

int main(int argc, char** argv) {
    const auto opts = wjbench::parseArgs(argc, argv);
    wjbench::banner("Figure 6", "weak scaling, 3-D diffusion, GPU+MPI, 384^3 per GPU",
                    "GPU kernel MODELED (M2050 roofline, factor 1.0 for all translated "
                    "variants); halo staging via PCIe; functional run REAL on GpuSim");

    const auto m = wj::perf::MachineProfile::tsubame2();
    wj::perf::StencilScaling s{};
    s.nx = 384;
    s.ny = 384;
    s.nzPerNodeOrGlobal = 384;
    s.gpuVariantFactor = 1.0;

    std::printf("seconds per step (weak scaling, 384^3 cells per GPU)\n");
    std::printf("%6s %12s %12s %12s\n", "GPUs", "C", "Template", "WootinJ");
    for (int p : {1, 2, 4, 8, 16, 32, 64}) {
        const double t = s.weakStepGpu(m, p);
        std::printf("%6d %12.5f %12.5f %12.5f\n", p, t, t, t);
    }

    const double perCell = wjbench::measureGpuDiffusionPerCell(opts.full);
    std::printf("\nGpuSim measured cost of the translated kernel on this host: %.1f ns/cell\n",
                perCell * 1e9);

    // Real GPU+MPI execution at a scaled size.
    using namespace wj;
    const int nx = 12, ny = 12, nzTotal = 24, steps = 2, seed = 3;
    const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    const double expect = stencil::referenceDiffusion3D(nx, ny, nzTotal, coeffs, seed, steps);
    Program prog = stencil::buildProgram();
    Interp in(prog);
    std::printf("real GpuSim+MiniMPI validation (%dx%dx%d, reference %.4f):\n", nx, ny, nzTotal,
                expect);
    for (int p : {1, 2, 4}) {
        Value runner = stencil::makeGpuMpiRunner(in, nx, ny, nzTotal / p, coeffs, seed, 64);
        JitCode code = WootinJ::jit4mpi(prog, runner, "run", {Value::ofI32(steps)});
        code.set4MPI(p);
        const double got = code.invoke().asF64();
        std::printf("  GPUs=%-3d checksum=%.4f  %s\n", p, got,
                    std::abs(got - expect) < std::abs(expect) * 1e-9 + 1e-9 ? "ok" : "MISMATCH");
    }
    return 0;
}
