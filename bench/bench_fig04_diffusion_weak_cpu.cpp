// Figure 4: weak scaling of the 3-D diffusion solvers, CPU + MPI,
// 128x128x128 per node, variants C / C++ / Template / Template-w/o-virt /
// WootinJ. Per-cell costs are MEASURED per variant on this host; the
// node-count axis comes from the alpha-beta halo-exchange model with
// TSUBAME-2.0-like constants (DESIGN.md substitution table).
#include "common.h"
#include "perf/perfmodel.h"

int main(int argc, char** argv) {
    const auto opts = wjbench::parseArgs(argc, argv);
    wjbench::banner("Figure 4", "weak scaling, 3-D diffusion, CPU+MPI, 128^3 per node",
                    "per-cell costs MEASURED; cluster timing MODELED (alpha-beta)");

    const auto c = wjbench::measureDiffusionCosts(/*withInterp=*/false, opts.full);
    const auto m = wj::perf::MachineProfile::tsubame2();

    auto stencil = [&](double perCell) {
        wj::perf::StencilScaling s{};
        s.nx = 128;
        s.ny = 128;
        s.nzPerNodeOrGlobal = 128;
        s.secondsPerCell = perCell;
        return s;
    };

    std::printf("seconds per simulation step (weak scaling, 128^3 cells per node)\n");
    std::printf("%6s %12s %12s %12s %12s %12s\n", "nodes", "C", "C++", "Template", "T-no-virt",
                "WootinJ");
    for (int p : {1, 2, 4, 8, 16, 32, 64, 128}) {
        std::printf("%6d %12.5f %12.5f %12.5f %12.5f %12.5f\n", p,
                    stencil(c.c).weakStepCpu(m, p), stencil(c.cppVirtual).weakStepCpu(m, p),
                    stencil(c.tmpl).weakStepCpu(m, p), stencil(c.tmplNoVirt).weakStepCpu(m, p),
                    stencil(c.wootinj).weakStepCpu(m, p));
    }
    std::printf("\npaper shape check: WootinJ within 3x of C at every node count; C++ slowest "
                "-> %s\n",
                (c.wootinj < 3.0 * c.c && c.cppVirtual > c.wootinj) ? "holds" : "VIOLATED");
    return 0;
}
