// Tables 1 & 2: the compiler options used per program. The paper records
// its icc flag sets; WootinC records the exact external-compiler command
// each translation unit is built with (and the host flags the baselines
// got). Informational — no timing.
#include <cstdlib>

#include "common.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "stencil/stencil_lib.h"

using namespace wj;

int main(int argc, char** argv) {
    (void)wjbench::parseArgs(argc, argv);
    // Cache hits would print "(cached) ..." instead of the real command.
    setenv("WJ_CACHE", "0", 1);
    wjbench::banner("Tables 1-2", "compiler options per program",
                    "actual commands used by this build (paper used icc; see EXPERIMENTS.md)");

    const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    {
        Program prog = stencil::buildProgram();
        Interp in(prog);
        Value runner = stencil::makeCpuRunner(in, 4, 4, 4, coeffs, 1);
        JitCode code = WootinJ::jit(prog, runner, "run", {Value::ofI32(1)});
        std::printf("WootinJ (3-D diffusion):\n  %s\n\n", code.compileCommand().c_str());
    }
    {
        Program prog = matmul::buildProgram();
        Interp in(prog);
        Value app = matmul::makeCpuApp(in, matmul::Calc::Optimized);
        JitCode code = WootinJ::jit(prog, app, "run", {Value::ofI32(4), Value::ofI32(1)});
        std::printf("WootinJ (matmul):\n  %s\n\n", code.compileCommand().c_str());
    }
    std::printf("C / C++ / Template / Template-w/o-virt baselines:\n"
                "  compiled into the host binaries by CMake with "
                "-O2 -ffp-contract=off (RelWithDebInfo)\n\n");
    std::printf("paper mapping: icc \"-ipo -O3 -rcd -i-static [-xHost] [-parallel]\" -> "
                "cc \"-O2\" here;\noverride with WJ_CC / WJ_CFLAGS "
                "(see bench_abl_cc_opt for the -O0/-O1/-O2 ablation)\n");
    return 0;
}
