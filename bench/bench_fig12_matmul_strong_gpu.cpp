// Figure 12: strong scaling of matmul (Fox) on GPUs, 14592^2 x (14592x4)
// total. Modeled per Figure 11's methodology.
#include "common.h"
#include "perf/perfmodel.h"

int main(int argc, char** argv) {
    (void)wjbench::parseArgs(argc, argv);
    wjbench::banner("Figure 12", "strong scaling, matmul (Fox), GPU+MPI",
                    "tiled kernel MODELED (M2050 roofline); blocks staged over PCIe");

    const auto m = wj::perf::MachineProfile::tsubame2();
    wj::perf::FoxScaling f{};
    f.nPerNodeOrGlobal = 14592;
    f.gpuVariantFactor = 1.0;

    std::printf("total multiplication seconds and speedup vs 1 GPU (global n = %d)\n", 14592);
    std::printf("%6s %3s %12s %10s\n", "GPUs", "q", "time", "speedup");
    const double t1 = f.totalGpu(m, 1, false);
    for (int p : {1, 4, 9, 16, 25, 64}) {
        const int q = wj::perf::squareSide(p);
        const double t = f.totalGpu(m, p, false);
        std::printf("%6d %3d %12.3f %10.2f\n", p, q, t, t1 / t);
    }
    std::printf("\n(Template and WootinJ coincide on GPUs after translation)\n");
    return 0;
}
