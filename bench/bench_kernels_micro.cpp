// Google-benchmark microbenchmarks of the per-variant kernels — the raw
// material behind every figure bench, measured with gbench's methodology
// as an independent cross-check of the marginal-cost measurements.
//
// Before the gbench suite runs, main() executes the scalar-vs-simd sweep
// (each evaluation kernel jitted twice, WJ_SIMD=0 / WJ_SIMD=1) and the
// aos-vs-soa sweep (the cells object-array stencil jitted under WJ_SOA=0 /
// WJ_SOA=1 with SIMD on). Every pair is checked bitwise-equal, timed, and
// persisted as rows of BENCH_kernels_micro.json via the shared jsonRow()
// helpers. `--smoke` runs only those sweeps at reduced sizes/reps — the
// bench-smoke CI tripwire.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "cg/cg_lib.h"
#include "common.h"

#include "baselines/diffusion_baselines.h"
#include "baselines/matmul_baselines.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "minimpi/minimpi.h"
#include "stencil/stencil_lib.h"

using namespace wj;

namespace {

const auto kCoeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
constexpr int kN = 32;
constexpr int kSeed = 7;

void BM_DiffusionC(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(baselines::diffusionC(kN, kN, kN, kCoeffs, kSeed, 2));
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN * 2);
}
BENCHMARK(BM_DiffusionC);

void BM_DiffusionVirtual(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(baselines::diffusionVirtual(kN, kN, kN, kCoeffs, kSeed, 2));
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN * 2);
}
BENCHMARK(BM_DiffusionVirtual);

void BM_DiffusionTemplate(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(baselines::diffusionTemplate(kN, kN, kN, kCoeffs, kSeed, 2));
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN * 2);
}
BENCHMARK(BM_DiffusionTemplate);

void BM_DiffusionTemplateNoVirt(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            baselines::diffusionTemplateNoVirt(kN, kN, kN, kCoeffs, kSeed, 2));
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN * 2);
}
BENCHMARK(BM_DiffusionTemplateNoVirt);

void BM_DiffusionWootinJ(benchmark::State& state) {
    static Program prog = stencil::buildProgram();
    static Interp in(prog);
    static Value runner = stencil::makeCpuRunner(in, kN, kN, kN, kCoeffs, kSeed);
    static JitCode code = WootinJ::jit(prog, runner, "run", {Value::ofI32(2)});
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.invoke().asF64());
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN * 2);
}
BENCHMARK(BM_DiffusionWootinJ);

// Bounds-guard overhead: the same diffusion jit under the three WJ_BOUNDS
// modes. "Elide" runs the interval pass and guards only unproven accesses
// (zero in this kernel — it should match "Off"); "All" guards every access,
// measuring what the static analysis saves.
void diffusionBoundsRow(benchmark::State& state, const char* mode) {
    setenv("WJ_BOUNDS", mode, 1);
    Program prog = stencil::buildProgram();
    Interp in(prog);
    Value runner = stencil::makeCpuRunner(in, kN, kN, kN, kCoeffs, kSeed);
    JitCode code = WootinJ::jit(prog, runner, "run", {Value::ofI32(2)});
    unsetenv("WJ_BOUNDS");
    state.counters["guards"] = static_cast<double>(code.boundsGuards());
    state.counters["elided"] = static_cast<double>(code.boundsElided());
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.invoke().asF64());
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN * 2);
}

void BM_DiffusionBoundsOff(benchmark::State& state) { diffusionBoundsRow(state, "0"); }
BENCHMARK(BM_DiffusionBoundsOff);

void BM_DiffusionBoundsElide(benchmark::State& state) { diffusionBoundsRow(state, "1"); }
BENCHMARK(BM_DiffusionBoundsElide);

void BM_DiffusionBoundsAll(benchmark::State& state) { diffusionBoundsRow(state, "all"); }
BENCHMARK(BM_DiffusionBoundsAll);

void BM_DiffusionInterp(benchmark::State& state) {
    static Program prog = stencil::buildProgram();
    static Interp in(prog);
    static Value runner = stencil::makeCpuRunner(in, 8, 8, 8, kCoeffs, kSeed);
    for (auto _ : state) {
        benchmark::DoNotOptimize(in.call(runner, "run", {Value::ofI32(1)}).asF64());
    }
    state.SetItemsProcessed(state.iterations() * 8 * 8 * 8);
}
BENCHMARK(BM_DiffusionInterp);

void BM_MatmulC(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(baselines::matmulC(n, kSeed, kSeed + 1));
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulC)->Arg(64)->Arg(128);

void BM_MatmulWootinJ(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    static Program prog = matmul::buildProgram();
    static Interp in(prog);
    static Value app = matmul::makeCpuApp(in, matmul::Calc::Optimized);
    static JitCode code = WootinJ::jit(prog, app, "run", {Value::ofI32(64), Value::ofI32(kSeed)});
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            code.invokeWith({Value::ofI32(n), Value::ofI32(kSeed)}).asF64());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulWootinJ)->Arg(64)->Arg(128);

// MiniMPI message path: buffered copy vs the large-message fast paths.
// Below kPooledThreshold (256 B) a send is one plain vector copy; at or
// above it the payload travels in a recycled pool buffer; the move overload
// hands the caller's vector straight to the mailbox with no payload copy.
// Rank 0 streams kMsgs messages to rank 1 per world.run (both rows pay the
// same 2-thread spawn, so the per-byte difference is the transport's).
void miniMpiSendRow(benchmark::State& state, bool moveSend) {
    const size_t bytes = static_cast<size_t>(state.range(0));
    constexpr int kMsgs = 32;
    minimpi::World world(2);
    for (auto _ : state) {
        world.run([&](minimpi::Comm& c) {
            std::vector<uint8_t> buf(bytes, static_cast<uint8_t>(1));
            if (c.rank() == 0) {
                for (int m = 0; m < kMsgs; ++m) {
                    if (moveSend) {
                        // Fill a fresh buffer and hand it over: the payload
                        // is produced once and never copied again.
                        std::vector<uint8_t> out(bytes, static_cast<uint8_t>(1));
                        c.send(std::move(out), 1, m);
                    } else {
                        c.send(buf.data(), bytes, 1, m);
                    }
                }
            } else {
                for (int m = 0; m < kMsgs; ++m) c.recv(buf.data(), bytes, 0, m);
            }
        });
    }
    const auto s = world.stats();
    state.counters["pooled_msgs"] = static_cast<double>(s.pooledMessages);
    state.counters["zerocopy_msgs"] = static_cast<double>(s.zeroCopyMessages);
    state.SetBytesProcessed(state.iterations() * kMsgs * static_cast<int64_t>(bytes));
}

void BM_MiniMpiSendCopy(benchmark::State& state) { miniMpiSendRow(state, false); }
BENCHMARK(BM_MiniMpiSendCopy)->Arg(128)->Arg(4096)->Arg(65536);

void BM_MiniMpiSendMove(benchmark::State& state) { miniMpiSendRow(state, true); }
BENCHMARK(BM_MiniMpiSendMove)->Arg(4096)->Arg(65536);

void BM_GpuSimDiffusionKernel(benchmark::State& state) {
    static Program prog = stencil::buildProgram();
    static Interp in(prog);
    static Value runner = stencil::makeGpuRunner(in, 24, 24, 24, kCoeffs, kSeed, 128);
    static JitCode code = WootinJ::jit(prog, runner, "run", {Value::ofI32(2)});
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.invoke().asF64());
    }
    state.SetItemsProcessed(state.iterations() * 24 * 24 * 24 * 2);
}
BENCHMARK(BM_GpuSimDiffusionKernel);

// ------------------------------------------------- scalar-vs-simd sweep

/// Median-of-`reps` wall time of code.invokeWith(args), after one warm call.
template <typename Make>
double medianInvokeNs(JitCode& code, const std::vector<Value>& args, int reps, Make observe) {
    (void)code.invokeWith(args);  // warm: dlopen + caches out of the timing
    std::vector<double> ns;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        observe(code.invokeWith(args).asF64());
        ns.push_back(std::chrono::duration<double, std::nano>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
    }
    std::sort(ns.begin(), ns.end());
    return ns[ns.size() / 2];
}

bool simdBitEq(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

/// One kernel row pair: jit with WJ_SIMD=0 then WJ_SIMD=1, assert the
/// results bitwise-equal (the determinism contract), report both medians
/// and the measured delta. Returns false on a bitwise mismatch.
template <typename MakeCode>
bool simdPair(const std::string& what, const std::vector<Value>& args, int reps,
              MakeCode make) {
    setenv("WJ_SIMD", "0", 1);
    JitCode scalar = make();
    double scalarVal = 0;
    const double scalarNs =
        medianInvokeNs(scalar, args, reps, [&](double v) { scalarVal = v; });

    setenv("WJ_SIMD", "1", 1);
    JitCode simd = make();
    unsetenv("WJ_SIMD");
    double simdVal = 0;
    const double simdNs = medianInvokeNs(simd, args, reps, [&](double v) { simdVal = v; });

    const bool eq = simdBitEq(scalarVal, simdVal);
    std::printf("%-28s scalar %12.0fns   simd %12.0fns  (%2lldx loops vectorized, "
                "x%.2f, %s)\n",
                what.c_str(), scalarNs, simdNs,
                static_cast<long long>(simd.vectorLoops()), scalarNs / simdNs,
                eq ? "bitwise-equal" : "MISMATCH");
    wjbench::jsonRow(what + " scalar", scalarNs);
    wjbench::jsonRow(what + " simd", simdNs);
    return eq;
}

/// The sweep itself; `smoke` shrinks sizes and reps to CI-tripwire cost.
bool runSimdSweep(bool smoke) {
    const int reps = smoke ? 3 : 9;
    bool ok = true;
    {
        Program prog = stencil::buildProgram();
        Interp in(prog);
        const int n = smoke ? 16 : 48;
        Value runner = stencil::makeCpuRunner(in, n, n, n, kCoeffs, kSeed);
        const std::vector<Value> args = {Value::ofI32(2)};
        ok &= simdPair("diffusion " + std::to_string(n) + "^3", args, reps,
                       [&] { return WootinJ::jit(prog, runner, "run", args); });
    }
    {
        Program prog = matmul::buildProgram();
        Interp in(prog);
        Value app = matmul::makeCpuApp(in, matmul::Calc::Optimized);
        const int n = smoke ? 48 : 192;
        const std::vector<Value> args = {Value::ofI32(n), Value::ofI32(kSeed)};
        ok &= simdPair("matmul " + std::to_string(n) + "x" + std::to_string(n), args, reps,
                       [&] { return WootinJ::jit(prog, app, "run", args); });
    }
    {
        Program prog = cg::buildProgram();
        Interp in(prog);
        Value solver = cg::makeCpuSolver(in);
        const int n = smoke ? 256 : 4096;
        const std::vector<Value> args = {Value::ofI32(n), Value::ofI32(3),
                                         Value::ofI32(smoke ? 5 : 25)};
        ok &= simdPair("cg n=" + std::to_string(n), args, reps,
                       [&] { return WootinJ::jit(prog, solver, "run", args); });
    }
    return ok;
}

// ------------------------------------------------- aos-vs-soa sweep

/// One cells kernel — an array-of-objects workload — jitted twice under
/// WJ_SIMD=1: once with the boxed AoS element layout (WJ_SOA=0) and once
/// with the proveLayout SoA split (WJ_SOA=1). The checksums must stay
/// bitwise-equal (the standing determinism contract); both medians persist
/// as rows so the regression gate sees the layout win per size. `method`
/// picks the kernel: "probe" is the headline lane-projection sweep (the
/// hot loop reads one of the six lanes, so AoS drags 24 bytes through the
/// cache per 4 used and stays struct-strided/ScalarOnly); "run" is the
/// all-lanes damped-averaging sweep, where AoS wastes no bandwidth and the
/// layout win is vectorization only.
bool soaPair(const char* method, int n, int steps, int reps) {
    Program prog = stencil::buildProgram();
    Interp in(prog);
    Value runner = stencil::makeCellRunner(in, n, 0.25f, 0.5f, 11);
    const std::vector<Value> args = {Value::ofI32(steps)};
    const std::string what = std::string("cells ") + method + " n=" + std::to_string(n);

    setenv("WJ_SIMD", "1", 1);
    setenv("WJ_SOA", "0", 1);
    JitCode aos = WootinJ::jit(prog, runner, method, args);
    double aosVal = 0;
    const double aosNs = medianInvokeNs(aos, args, reps, [&](double v) { aosVal = v; });

    setenv("WJ_SOA", "1", 1);
    JitCode soa = WootinJ::jit(prog, runner, method, args);
    unsetenv("WJ_SOA");
    unsetenv("WJ_SIMD");
    double soaVal = 0;
    const double soaNs = medianInvokeNs(soa, args, reps, [&](double v) { soaVal = v; });

    const bool eq = simdBitEq(aosVal, soaVal);
    std::printf("%-28s aos    %12.0fns   soa  %12.0fns  (%2lldx loops vectorized, "
                "x%.2f, %s)\n",
                what.c_str(), aosNs, soaNs, static_cast<long long>(soa.vectorLoops()),
                aosNs / soaNs, eq ? "bitwise-equal" : "MISMATCH");
    wjbench::jsonRow(what + " aos+simd", aosNs);
    wjbench::jsonRow(what + " soa+simd", soaNs);
    return eq;
}

bool runSoaSweep(bool smoke) {
    std::printf("\n-- aos-vs-soa sweep: cells stencil under WJ_SIMD=1 --\n");
    const int reps = smoke ? 3 : 9;
    bool ok = true;
    if (smoke) {
        ok &= soaPair("probe", 4096, 4, reps);
        return ok;
    }
    // Non-power-of-two sizes: with lanes exactly n*4 bytes apart, pow2 n
    // maps the twelve SoA streams onto the same cache sets and the
    // conflict misses mask the layout win.
    for (int n : {20000, 250000, 1000000}) ok &= soaPair("probe", n, 8, reps);
    for (int n : {20000, 250000, 1000000}) ok &= soaPair("run", n, 8, reps);
    return ok;
}

// -------------------------------------- threads-vs-proc transport sweep

/// Median per-round-trip cost of a 2-rank ping-pong of `bytes`-byte
/// messages on `kind`. Each sample is one World::run (thread spawn or
/// fork+reap included, amortized over `msgs` round trips); the forked
/// children _exit, so the proc worlds never double-flush this bench's
/// JSON report.
double pingPongNs(minimpi::TransportKind kind, size_t bytes, int msgs, int reps) {
    minimpi::World w(2, kind);
    std::vector<double> ns;
    for (int r = 0; r <= reps; ++r) {  // r == 0 is the warm-up sample
        const auto t0 = std::chrono::steady_clock::now();
        w.run([&](minimpi::Comm& c) {
            std::vector<uint8_t> buf(bytes, static_cast<uint8_t>(1));
            for (int m = 0; m < msgs; ++m) {
                if (c.rank() == 0) {
                    c.send(buf.data(), bytes, 1, 1);
                    c.recv(buf.data(), bytes, 1, 2);
                } else {
                    c.recv(buf.data(), bytes, 0, 1);
                    c.send(buf.data(), bytes, 0, 2);
                }
            }
        });
        if (r == 0) continue;
        ns.push_back(std::chrono::duration<double, std::nano>(
                         std::chrono::steady_clock::now() - t0)
                         .count() /
                     msgs);
    }
    std::sort(ns.begin(), ns.end());
    return ns[ns.size() / 2];
}

/// Latency (small messages) and bandwidth (large messages, including the
/// proc transport's Unix-socket path above ring half-capacity) of the two
/// address-space strategies, persisted as jsonRow()s. The gap IS the
/// price of real process isolation — crash-real fault tolerance is not
/// free, and this row pair quantifies it per message size.
void runTransportSweep(bool smoke) {
    const size_t sizes[] = {64, 4096, 65536, 262144};  // 256 kB rides the socket path
    const int reps = smoke ? 3 : 7;
    std::printf("\n-- transport sweep: 2-rank ping-pong, threads vs proc --\n");
    std::printf("%12s %16s %16s %10s\n", "bytes", "threads/rt", "proc/rt", "ratio");
    for (size_t bytes : sizes) {
        if (smoke && bytes > 4096) continue;  // tripwire cost only
        const int msgs = bytes >= 65536 ? 64 : 256;
        const double t = pingPongNs(minimpi::TransportKind::Threads, bytes, msgs, reps);
        const double p = pingPongNs(minimpi::TransportKind::Proc, bytes, msgs, reps);
        std::printf("%12zu %14.0fns %14.0fns %9.2fx\n", bytes, t, p, p / t);
        const std::string label = "xport " + std::to_string(bytes) + "B";
        wjbench::jsonRow(label + " threads", t, /*threads=*/2, /*ranks=*/2);
        wjbench::jsonRow(label + " proc", p, /*threads=*/1, /*ranks=*/2);
    }
}

} // namespace

int main(int argc, char** argv) {
    const wjbench::Options opts = wjbench::parseArgs(argc, argv);
    wjbench::banner("Microbenchmarks: per-variant kernels + scalar-vs-simd + aos-vs-soa sweeps",
                    "diffusion / matmul / CG jits under WJ_SIMD=0 vs WJ_SIMD=1; "
                    "cells object-array stencil under WJ_SOA=0 vs WJ_SOA=1",
                    "median wall time REAL on this host; simd and soa checked "
                    "bitwise-equal; threads-vs-proc MiniMPI ping-pong REAL");
    runTransportSweep(opts.smoke);
    bool ok = runSimdSweep(opts.smoke);
    ok &= runSoaSweep(opts.smoke);
    if (!ok) {
        std::fprintf(stderr, "FAIL: a WJ_SIMD/WJ_SOA run diverged bitwise from its "
                             "scalar/AoS twin\n");
        return 1;
    }
    if (opts.smoke) return 0;

    // Strip the wjbench flags so gbench's own parser only sees its flags.
    std::vector<char*> gargs;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--smoke" || a == "--full" || a.rfind("--trace", 0) == 0) continue;
        gargs.push_back(argv[i]);
    }
    int gargc = static_cast<int>(gargs.size());
    benchmark::Initialize(&gargc, gargs.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
