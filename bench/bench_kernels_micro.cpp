// Google-benchmark microbenchmarks of the per-variant kernels — the raw
// material behind every figure bench, measured with gbench's methodology
// as an independent cross-check of the marginal-cost measurements.
#include <benchmark/benchmark.h>

#include "baselines/diffusion_baselines.h"
#include "baselines/matmul_baselines.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "stencil/stencil_lib.h"

using namespace wj;

namespace {

const auto kCoeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
constexpr int kN = 32;
constexpr int kSeed = 7;

void BM_DiffusionC(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(baselines::diffusionC(kN, kN, kN, kCoeffs, kSeed, 2));
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN * 2);
}
BENCHMARK(BM_DiffusionC);

void BM_DiffusionVirtual(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(baselines::diffusionVirtual(kN, kN, kN, kCoeffs, kSeed, 2));
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN * 2);
}
BENCHMARK(BM_DiffusionVirtual);

void BM_DiffusionTemplate(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(baselines::diffusionTemplate(kN, kN, kN, kCoeffs, kSeed, 2));
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN * 2);
}
BENCHMARK(BM_DiffusionTemplate);

void BM_DiffusionTemplateNoVirt(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            baselines::diffusionTemplateNoVirt(kN, kN, kN, kCoeffs, kSeed, 2));
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN * 2);
}
BENCHMARK(BM_DiffusionTemplateNoVirt);

void BM_DiffusionWootinJ(benchmark::State& state) {
    static Program prog = stencil::buildProgram();
    static Interp in(prog);
    static Value runner = stencil::makeCpuRunner(in, kN, kN, kN, kCoeffs, kSeed);
    static JitCode code = WootinJ::jit(prog, runner, "run", {Value::ofI32(2)});
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.invoke().asF64());
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN * 2);
}
BENCHMARK(BM_DiffusionWootinJ);

// Bounds-guard overhead: the same diffusion jit under the three WJ_BOUNDS
// modes. "Elide" runs the interval pass and guards only unproven accesses
// (zero in this kernel — it should match "Off"); "All" guards every access,
// measuring what the static analysis saves.
void diffusionBoundsRow(benchmark::State& state, const char* mode) {
    setenv("WJ_BOUNDS", mode, 1);
    Program prog = stencil::buildProgram();
    Interp in(prog);
    Value runner = stencil::makeCpuRunner(in, kN, kN, kN, kCoeffs, kSeed);
    JitCode code = WootinJ::jit(prog, runner, "run", {Value::ofI32(2)});
    unsetenv("WJ_BOUNDS");
    state.counters["guards"] = static_cast<double>(code.boundsGuards());
    state.counters["elided"] = static_cast<double>(code.boundsElided());
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.invoke().asF64());
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN * 2);
}

void BM_DiffusionBoundsOff(benchmark::State& state) { diffusionBoundsRow(state, "0"); }
BENCHMARK(BM_DiffusionBoundsOff);

void BM_DiffusionBoundsElide(benchmark::State& state) { diffusionBoundsRow(state, "1"); }
BENCHMARK(BM_DiffusionBoundsElide);

void BM_DiffusionBoundsAll(benchmark::State& state) { diffusionBoundsRow(state, "all"); }
BENCHMARK(BM_DiffusionBoundsAll);

void BM_DiffusionInterp(benchmark::State& state) {
    static Program prog = stencil::buildProgram();
    static Interp in(prog);
    static Value runner = stencil::makeCpuRunner(in, 8, 8, 8, kCoeffs, kSeed);
    for (auto _ : state) {
        benchmark::DoNotOptimize(in.call(runner, "run", {Value::ofI32(1)}).asF64());
    }
    state.SetItemsProcessed(state.iterations() * 8 * 8 * 8);
}
BENCHMARK(BM_DiffusionInterp);

void BM_MatmulC(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(baselines::matmulC(n, kSeed, kSeed + 1));
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulC)->Arg(64)->Arg(128);

void BM_MatmulWootinJ(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    static Program prog = matmul::buildProgram();
    static Interp in(prog);
    static Value app = matmul::makeCpuApp(in, matmul::Calc::Optimized);
    static JitCode code = WootinJ::jit(prog, app, "run", {Value::ofI32(64), Value::ofI32(kSeed)});
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            code.invokeWith({Value::ofI32(n), Value::ofI32(kSeed)}).asF64());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulWootinJ)->Arg(64)->Arg(128);

void BM_GpuSimDiffusionKernel(benchmark::State& state) {
    static Program prog = stencil::buildProgram();
    static Interp in(prog);
    static Value runner = stencil::makeGpuRunner(in, 24, 24, 24, kCoeffs, kSeed, 128);
    static JitCode code = WootinJ::jit(prog, runner, "run", {Value::ofI32(2)});
    for (auto _ : state) {
        benchmark::DoNotOptimize(code.invoke().asF64());
    }
    state.SetItemsProcessed(state.iterations() * 24 * 24 * 24 * 2);
}
BENCHMARK(BM_GpuSimDiffusionKernel);

} // namespace

BENCHMARK_MAIN();
