// Figure 10: strong scaling of matmul (Fox), CPU + MPI, 2048x2048x(2048x8)
// total work, C vs WootinJ — with a REAL MiniMPI Fox execution at a scaled
// size validating the translated algorithm at several grid sizes.
#include <cmath>

#include "common.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "perf/perfmodel.h"

int main(int argc, char** argv) {
    const auto opts = wjbench::parseArgs(argc, argv);
    wjbench::banner("Figure 10", "strong scaling, matmul (Fox), CPU+MPI, 2048^2 x 16384 total",
                    "per-fma costs MEASURED; Fox communication MODELED; functional run REAL");

    const auto c = wjbench::measureMatmulCosts(/*withInterp=*/false, opts.full);
    const auto m = wj::perf::MachineProfile::tsubame2();
    // The paper's strong-scaling problem: a fixed 2048*2 global dimension
    // (2048^2 x 16384 flops ~ n = 2048 * 2 cubed).
    const int nGlobalModel = 4096;

    auto fox = [&](double perFma) {
        wj::perf::FoxScaling f{};
        f.nPerNodeOrGlobal = nGlobalModel;
        f.secondsPerFma = perFma;
        return f;
    };

    std::printf("total multiplication seconds (strong scaling, global n = %d)\n", nGlobalModel);
    std::printf("%6s %3s %12s %10s %12s %10s\n", "nodes", "q", "C", "speedup", "WootinJ",
                "speedup");
    const double c1 = fox(c.c).totalCpu(m, 1, false);
    const double w1 = fox(c.wootinj).totalCpu(m, 1, false);
    for (int p : {1, 4, 9, 16, 25, 64, 121}) {
        const int q = wj::perf::squareSide(p);
        const double tc = fox(c.c).totalCpu(m, p, false);
        const double tw = fox(c.wootinj).totalCpu(m, p, false);
        std::printf("%6d %3d %12.3f %10.2f %12.3f %10.2f\n", p, q, tc, c1 / tc, tw, w1 / tw);
    }

    // Real MiniMPI Fox runs at a scaled size.
    using namespace wj;
    const int nGlobal = 24, seed = 5;
    const double expect = matmul::referenceMatMulChecksum(nGlobal, seed, seed + 1);
    Program prog = matmul::buildProgram();
    Interp in(prog);
    std::printf("\nreal MiniMPI Fox validation (n=%d, reference %.4f):\n", nGlobal, expect);
    for (int q : {1, 2, 3}) {
        Value app = matmul::makeMpiFoxApp(in, matmul::Calc::Optimized, q);
        JitCode code = WootinJ::jit4mpi(prog, app, "run",
                                        {Value::ofI32(nGlobal / q), Value::ofI32(seed)});
        code.set4MPI(q * q);
        const double got = code.invoke().asF64();
        std::printf("  grid=%dx%d checksum=%.4f  %s\n", q, q, got,
                    std::abs(got - expect) < std::abs(expect) * 1e-4 ? "ok" : "MISMATCH");
    }
    return 0;
}
