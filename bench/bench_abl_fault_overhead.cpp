// Ablation: checkpoint overhead in the fault-tolerant MPI stencil runner.
//
// The stencil driver snapshots its slab through WootinJ.ckptSaveF32 every
// iteration; the store's interval knob thins that stream. This bench runs
// the same world three ways — store disarmed, armed at interval 1, armed
// at interval 4 — and reports (a) wall time per mode, (b) snapshots
// actually recorded, (c) that the checksum is bit-identical in all modes
// (a disarmed save is a no-op call, never a numerical perturbation).
#include <chrono>

#include "common.h"
#include "fault/checkpoint.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "stencil/stencil_lib.h"

using namespace wj;
using namespace wj::stencil;

namespace {

double runOnce(Program& prog, Interp& in, int steps, double* checksum) {
    const auto coeffs = DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    Value runner = makeMpiRunner(in, 16, 16, 8, coeffs, 11);
    JitCode code = WootinJ::jit4mpi(prog, runner, "run", {Value::ofI32(steps)});
    code.set4MPI(4);
    const auto t0 = std::chrono::steady_clock::now();
    *checksum = code.invoke().asF64();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

int main(int argc, char** argv) {
    (void)wjbench::parseArgs(argc, argv);
    wjbench::banner("Ablation: checkpoint overhead",
                    "MPI stencil with the fault-tolerance store disarmed / armed",
                    "wall time and snapshot counts REAL on MiniMPI");

    Program prog = buildProgram();
    Interp in(prog);
    auto& ckpt = fault::CheckpointStore::instance();
    const int steps = 8, ranks = 4;

    struct Row {
        const char* mode;
        int interval;  // 0 = disarmed
        double ms = 0, checksum = 0;
        int64_t saves = 0;
    } rows[] = {{"disarmed", 0}, {"interval 1", 1}, {"interval 4", 4}};

    for (Row& r : rows) {
        ckpt.disarm();
        if (r.interval > 0) ckpt.arm(ranks, r.interval);
        r.ms = runOnce(prog, in, steps, &r.checksum);
        r.saves = ckpt.saves();
    }
    ckpt.disarm();

    std::printf("%12s %12s %10s %16s\n", "store", "time", "saves", "checksum");
    for (const Row& r : rows) {
        std::printf("%12s %10.2fms %10lld %16.6f\n", r.mode, r.ms,
                    static_cast<long long>(r.saves), r.checksum);
        // Persist each mode as a BENCH_abl_fault_overhead.json row so CI
        // can track checkpoint overhead across commits.
        wjbench::jsonRow(std::string("ckpt ") + r.mode, r.ms * 1e6, /*threads=*/1, ranks);
    }

    const bool counts = rows[0].saves == 0 &&
                        rows[1].saves == int64_t{ranks} * steps &&
                        rows[2].saves == int64_t{ranks} * (steps / 4);
    const bool identical = rows[0].checksum == rows[1].checksum &&
                           rows[1].checksum == rows[2].checksum;
    std::printf("\nablation check: disarmed records nothing, interval thins the "
                "snapshot stream, checksums bit-identical -> %s\n",
                counts && identical ? "holds" : "VIOLATED");
    return counts && identical ? 0 : 1;
}
