// Ablation: the external-compiler tradeoff behind Table 3.
//
// WootinJ's runtime cost has two parts: the one-time external compilation
// (Table 3) and the steady-state kernel speed. This bench compiles the SAME
// translation at -O0 / -O1 / -O2 and measures both sides, showing why the
// paper accepts a multi-second icc run: the kernel-speed gap dwarfs the
// compile-time saving for any real simulation length.
#include <cstdlib>

#include "common.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "stencil/stencil_lib.h"
#include "support/timer.h"

using namespace wj;
using namespace wj::stencil;

int main(int argc, char** argv) {
    const auto opts = wjbench::parseArgs(argc, argv);
    // The "compile ms" column must be the real compiler cost per flag
    // level, so the compile cache would defeat the measurement.
    setenv("WJ_CACHE", "0", 1);
    wjbench::banner("Ablation: external compiler optimization level",
                    "same WootinJ translation compiled at -O0/-O1/-O2",
                    "all values MEASURED on this host");

    const int n = opts.full ? 96 : 40;
    const auto coeffs = DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    Program prog = buildProgram();
    Interp in(prog);
    const double cells = static_cast<double>(n) * n * n;

    std::printf("%-8s %14s %16s %22s\n", "flags", "compile ms", "ns/cell/step",
                "break-even steps*");
    double o2PerStep = 0, o2Compile = 0;
    struct Row { const char* flags; double compile, perStep; };
    std::vector<Row> rows;
    for (const char* flags : {"-O0", "-O1", "-O2"}) {
        setenv("WJ_CFLAGS", flags, 1);
        Value runner = makeCpuRunner(in, n, n, n, coeffs, 7);
        JitCode code = WootinJ::jit(prog, runner, "run", {Value::ofI32(1)});
        Timer t;
        code.invokeWith({Value::ofI32(2)});
        const double t2 = t.seconds();
        t.reset();
        code.invokeWith({Value::ofI32(10)});
        const double perStep = (t.seconds() - t2) / 8.0;
        rows.push_back({flags, code.compileSeconds(), perStep});
        if (std::string(flags) == "-O2") {
            o2PerStep = perStep;
            o2Compile = code.compileSeconds();
        }
    }
    unsetenv("WJ_CFLAGS");
    for (const auto& r : rows) {
        // Steps needed before -O2's extra compile time pays for itself
        // against this flag level.
        double breakEven = 0;
        if (r.perStep > o2PerStep) {
            breakEven = (o2Compile - r.compile) / (r.perStep - o2PerStep);
        }
        std::printf("%-8s %14.1f %16.3f %22.1f\n", r.flags, r.compile * 1e3,
                    r.perStep / cells * 1e9, breakEven > 0 ? breakEven : 0.0);
    }
    std::printf("\n* simulation steps after which compiling at -O2 is the net win\n");
    std::printf("ablation check: -O2 kernel at least 2x faster than -O0 -> %s\n",
                rows[0].perStep > 2.0 * rows[2].perStep ? "holds" : "VIOLATED");
    return 0;
}
