// Figure 9: weak scaling of matrix multiplication (Fox algorithm), CPU +
// MPI, 2048^3 work per node. Per-fma costs MEASURED per variant; the rank
// grid q x q and its row-broadcast/column-shift communication MODELED.
#include "common.h"
#include "perf/perfmodel.h"

int main(int argc, char** argv) {
    const auto opts = wjbench::parseArgs(argc, argv);
    wjbench::banner("Figure 9", "weak scaling, matmul (Fox), CPU+MPI, 2048^3 per node",
                    "per-fma costs MEASURED; Fox communication MODELED (alpha-beta)");

    const auto c = wjbench::measureMatmulCosts(/*withInterp=*/false, opts.full);
    const auto m = wj::perf::MachineProfile::tsubame2();

    auto fox = [&](double perFma) {
        wj::perf::FoxScaling f{};
        f.nPerNodeOrGlobal = 2048;
        f.secondsPerFma = perFma;
        return f;
    };

    std::printf("total multiplication seconds (weak scaling; Fox grid = q x q nodes)\n");
    std::printf("%6s %3s %12s %12s %12s %12s %12s\n", "nodes", "q", "C", "C++", "Template",
                "T-no-virt", "WootinJ");
    for (int p : {1, 4, 9, 16, 25, 64, 121}) {
        const int q = wj::perf::squareSide(p);
        std::printf("%6d %3d %12.3f %12.3f %12.3f %12.3f %12.3f\n", p, q,
                    fox(c.c).totalCpu(m, p, true), fox(c.cppVirtual).totalCpu(m, p, true),
                    fox(c.tmpl).totalCpu(m, p, true), fox(c.tmplNoVirt).totalCpu(m, p, true),
                    fox(c.wootinj).totalCpu(m, p, true));
    }
    std::printf("\npaper shape check: WootinJ within 3x of C; C++ (virtual) slowest -> %s\n",
                (c.wootinj < 3.0 * c.c && c.cppVirtual >= c.wootinj) ? "holds" : "VIOLATED");
    return 0;
}
