// Figure 11: weak scaling of matmul (Fox) on GPUs, 14592^3 per GPU (fills
// the M2050's memory). The tiled shared-memory kernel is MODELED with the
// M2050 roofline; a REAL GpuSim+MiniMPI Fox run at a scaled size validates
// the translated kernel (including syncthreads via the fiber scheduler).
#include <cmath>

#include "common.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "perf/perfmodel.h"

int main(int argc, char** argv) {
    (void)wjbench::parseArgs(argc, argv);
    wjbench::banner("Figure 11", "weak scaling, matmul (Fox), GPU+MPI, 14592^2 blocks per GPU",
                    "tiled kernel MODELED (M2050 roofline); blocks staged over PCIe; "
                    "functional run REAL on GpuSim");

    const auto m = wj::perf::MachineProfile::tsubame2();
    wj::perf::FoxScaling f{};
    f.nPerNodeOrGlobal = 14592;
    f.secondsPerFma = 0;  // unused for GPU
    f.gpuVariantFactor = 1.0;

    std::printf("total multiplication seconds (weak scaling)\n");
    std::printf("%6s %3s %12s %12s\n", "GPUs", "q", "Template", "WootinJ");
    for (int p : {1, 4, 9, 16, 25, 64}) {
        const int q = wj::perf::squareSide(p);
        const double t = f.totalGpu(m, p, true);
        std::printf("%6d %3d %12.3f %12.3f\n", p, q, t, t);
    }

    using namespace wj;
    const int nGlobal = 16, seed = 5;
    const double expect = matmul::referenceMatMulChecksum(nGlobal, seed, seed + 1);
    Program prog = matmul::buildProgram();
    Interp in(prog);
    std::printf("\nreal GpuSim Fox validation (n=%d, tile=4, reference %.4f):\n", nGlobal, expect);
    for (int q : {1, 2}) {
        Value app = matmul::makeMpiFoxGpuApp(in, q, /*tile=*/4);
        JitCode code = WootinJ::jit4mpi(prog, app, "run",
                                        {Value::ofI32(nGlobal / q), Value::ofI32(seed)});
        code.set4MPI(q * q);
        const double got = code.invoke().asF64();
        std::printf("  grid=%dx%d checksum=%.4f  %s\n", q, q, got,
                    std::abs(got - expect) < std::abs(expect) * 1e-4 ? "ok" : "MISMATCH");
    }
    return 0;
}
