// Closed-loop load harness for wjd, the multi-tenant compile daemon.
//
// An in-process Daemon listens on a real Unix-domain socket; client
// threads connect through the real protocol codec, so everything except
// process isolation is the production path (the cross-PROCESS behaviors —
// two daemons sharing one cache — are covered by tests/test_service.cpp).
//
// Three phases, each asserting its own acceptance property (exit 1 on
// violation — this bench is also the CI tripwire for the dedup and
// admission contracts):
//
//   join-proof   16 clients submit the SAME fresh module concurrently.
//                The cache-miss delta must be exactly 1 (one external cc
//                invocation for the whole herd) and wjd.compile.joins
//                must have grown — duplicate in-flight compiles collapse.
//
//   closed-loop  N clients (64; 128 under --full) each run a think-free
//                request loop of mixed traffic: warm hits (the same
//                precompiled module), cold misses (unique modules), and
//                malformed modules answered with typed errors. Reports
//                p50/p99 request latency and the cache-hit rate; the
//                daemon must answer every request and stay up (verified
//                by a final ping + clean drain).
//
//   admission    a second daemon with a tiny queue (1 worker, cap 4) gets
//                8 clients x 16 pipelined requests; some must be REJECTED
//                with RESOURCE_EXHAUSTED (admission control sheds load
//                instead of queueing unboundedly) while every accepted
//                request still completes.
//
// Persisted rows (BENCH_wjd_load.json, gated by tools/bench_compare):
//   closed_loop_p50 / closed_loop_p99   request latency in ns (threads =
//                                       client count)
//   hit_rate_permille                   compile responses served from cache
//   reject_permille                     admission rejections in the burst
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "jit/cache.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/protocol.h"
#include "support/scratch.h"
#include "support/strings.h"
#include "support/timer.h"
#include "trace/metrics.h"
#include "trace/trace.h"

using namespace wj;

namespace {

int failures = 0;

void expect(bool ok, const std::string& what) {
    std::printf("  %-58s %s\n", what.c_str(), ok ? "OK" : "FAIL");
    if (!ok) ++failures;
}

/// A tiny self-contained WJ module. `nonce` lands in the class name and a
/// literal, so every nonce is a distinct translation unit with a distinct
/// cache key (and a distinct in-process singleflight key).
std::string moduleSource(int nonce) {
    return format("@WootinJ class Work%d {\n"
                  "  Work%d() {}\n"
                  "  int run(int n) {\n"
                  "    int acc = 0;\n"
                  "    for (int i = 0; i < n; i = i + 1) {\n"
                  "      acc = acc + i * %d;\n"
                  "    }\n"
                  "    return acc;\n"
                  "  }\n"
                  "}\n",
                  nonce, nonce, nonce + 3);
}

service::Client::Reply submit(service::Client& c, int nonce) {
    return c.compile(moduleSource(nonce), format("Work%d()", nonce), "run", "64");
}

/// Nonces must be fresh per bench run or a warm compile cache turns every
/// "miss" into a hit; derive the base from the pid and the clock.
int nonceBase() {
    return static_cast<int>((nowNs() / 1000 + ::getpid()) % 1000000) * 100;
}

// ---------------------------------------------------------------- phase 1

void joinProof(const std::string& sock, int base) {
    std::printf("\n-- join-proof: 16 concurrent clients, one fresh module --\n");
    auto& metrics = trace::Metrics::instance();
    const int64_t joins0 = metrics.counter("wjd.compile.joins").value();
    const int64_t misses0 = JitCache::instance().stats().misses;

    constexpr int kClients = 16;
    std::atomic<int> okCount{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            service::Client c;
            c.connect(sock);
            while (!go.load()) std::this_thread::yield();
            const auto r = submit(c, base);
            if (r.ok) okCount.fetch_add(1);
            (void)i;
        });
    }
    go.store(true);
    for (auto& t : threads) t.join();

    const int64_t joins = metrics.counter("wjd.compile.joins").value() - joins0;
    const int64_t misses = JitCache::instance().stats().misses - misses0;
    std::printf("  clients ok %d/16, cc invocations %lld, in-flight joins %lld\n",
                okCount.load(), static_cast<long long>(misses), static_cast<long long>(joins));
    expect(okCount.load() == kClients, "every client got a successful response");
    expect(misses == 1, "the herd collapsed to a single cc invocation");
    expect(joins >= 1, "at least one request joined the in-flight compile");
}

// ---------------------------------------------------------------- phase 2

struct LoopStats {
    std::vector<int64_t> latenciesNs;
    int64_t hits = 0, okCompiles = 0, typedErrors = 0, unexpected = 0;
};

void closedLoop(const std::string& sock, int clients, int reqsPerClient, int base) {
    std::printf("\n-- closed-loop: %d clients x %d requests, mixed traffic --\n",
                clients, reqsPerClient);
    // Precompile the warm module so "hit" traffic is actually warm.
    {
        service::Client c;
        c.connect(sock);
        const auto r = submit(c, base);
        expect(r.ok, "warm module precompiled");
    }

    std::vector<LoopStats> per(clients);
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int i = 0; i < clients; ++i) {
        threads.emplace_back([&, i] {
            service::Client c;
            c.connect(sock);
            LoopStats& s = per[i];
            while (!go.load()) std::this_thread::yield();
            for (int j = 0; j < reqsPerClient; ++j) {
                const int seq = i * reqsPerClient + j;
                const int64_t t0 = nowNs();
                service::Client::Reply r;
                if (seq % 10 == 7) {
                    // Fault traffic: a module that cannot parse.
                    r = c.compile("class {", "X()", "run");
                    if (!r.ok && r.code == service::ErrCode::ParseError) ++s.typedErrors;
                    else ++s.unexpected;
                } else if (seq % 32 == 5) {
                    // Miss traffic: a translation unit nobody compiled yet.
                    r = submit(c, base + 1 + seq);
                    if (r.ok) ++s.okCompiles;
                    else ++s.unexpected;
                } else {
                    r = submit(c, base);
                    if (r.ok) {
                        ++s.okCompiles;
                        if (r.cacheHit) ++s.hits;
                    } else {
                        ++s.unexpected;
                    }
                }
                s.latenciesNs.push_back(nowNs() - t0);
            }
        });
    }
    go.store(true);
    for (auto& t : threads) t.join();

    LoopStats all;
    for (auto& s : per) {
        all.latenciesNs.insert(all.latenciesNs.end(), s.latenciesNs.begin(),
                               s.latenciesNs.end());
        all.hits += s.hits;
        all.okCompiles += s.okCompiles;
        all.typedErrors += s.typedErrors;
        all.unexpected += s.unexpected;
    }
    std::sort(all.latenciesNs.begin(), all.latenciesNs.end());
    const size_t n = all.latenciesNs.size();
    const int64_t p50 = all.latenciesNs[n / 2];
    const int64_t p99 = all.latenciesNs[std::min(n - 1, n * 99 / 100)];
    const int64_t hitPermille = all.okCompiles ? all.hits * 1000 / all.okCompiles : 0;

    std::printf("  %zu requests: ok %lld, typed errors %lld, unexpected %lld\n", n,
                static_cast<long long>(all.okCompiles),
                static_cast<long long>(all.typedErrors),
                static_cast<long long>(all.unexpected));
    std::printf("  p50 %.2f ms  p99 %.2f ms  hit rate %lld permille\n", p50 / 1e6, p99 / 1e6,
                static_cast<long long>(hitPermille));
    expect(all.unexpected == 0, "every request answered as expected");
    expect(all.typedErrors > 0, "fault traffic came back as typed errors");
    expect(all.hits > 0, "warm traffic was served from the cache");

    wjbench::jsonRow("closed_loop_p50", static_cast<double>(p50), clients);
    wjbench::jsonRow("closed_loop_p99", static_cast<double>(p99), clients);
    wjbench::jsonRow("hit_rate_permille", static_cast<double>(hitPermille), clients);
}

// ---------------------------------------------------------------- phase 3

void admissionBurst(const std::string& scratch, int base) {
    std::printf("\n-- admission: 1 worker, queue cap 4, 8x16 pipelined --\n");
    service::DaemonOptions opts;
    opts.socketPath = scratch + "/wjd_burst.sock";
    opts.workers = 1;
    opts.queueCap = 4;
    opts.maxInflightPerClient = 64;
    opts.quiet = true;
    service::Daemon daemon(opts);
    daemon.start();

    auto& metrics = trace::Metrics::instance();
    const int64_t rejects0 = metrics.counter("wjd.admission.rejects.queue").value();

    constexpr int kClients = 8, kPipeline = 16;
    std::atomic<int64_t> accepted{0}, rejected{0}, other{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            service::Client c;
            c.connect(opts.socketPath);
            while (!go.load()) std::this_thread::yield();
            // Pipeline the whole burst before reading a single response —
            // this is what actually overruns a 4-slot queue.
            service::Body body;
            body.set("new", format("Work%d()", base));
            body.set("method", "run");
            body.set("args", "64");
            body.payload = moduleSource(base);
            const std::string encoded = service::encodeBody(body);
            for (int j = 0; j < kPipeline; ++j) {
                service::Frame f;
                f.type = service::MsgType::Compile;
                f.reqId = static_cast<uint64_t>(i) * kPipeline + j + 1;
                f.body = encoded;
                service::writeFrame(c.fd(), f);
            }
            for (int j = 0; j < kPipeline; ++j) {
                service::Frame f;
                if (!c.readReply(f)) {
                    other.fetch_add(kPipeline - j);
                    return;
                }
                if (f.type == service::MsgType::Ok) {
                    accepted.fetch_add(1);
                    continue;
                }
                const service::Body b = service::decodeBody(f.body);
                const std::string* name = b.find("name");
                if (name && *name == "RESOURCE_EXHAUSTED") rejected.fetch_add(1);
                else other.fetch_add(1);
            }
        });
    }
    go.store(true);
    for (auto& t : threads) t.join();

    const int64_t total = kClients * kPipeline;
    const int64_t rejectPermille = rejected.load() * 1000 / total;
    std::printf("  %lld requests: accepted %lld, rejected %lld, other %lld\n",
                static_cast<long long>(total), static_cast<long long>(accepted.load()),
                static_cast<long long>(rejected.load()), static_cast<long long>(other.load()));
    expect(accepted.load() + rejected.load() == total && other.load() == 0,
           "every request either completed or was rejected typed");
    expect(rejected.load() > 0, "the 4-slot queue shed load (RESOURCE_EXHAUSTED)");
    expect(metrics.counter("wjd.admission.rejects.queue").value() > rejects0,
           "rejections visible in wjd.admission.rejects.queue");

    // The daemon must still be healthy after the burst.
    service::Client c;
    c.connect(opts.socketPath);
    expect(c.ping().ok, "daemon answers ping after the burst");
    c.close();
    daemon.requestStop();
    daemon.wait();

    wjbench::jsonRow("reject_permille", static_cast<double>(rejectPermille), kClients);
}

} // namespace

int main(int argc, char** argv) {
    const wjbench::Options opts = wjbench::parseArgs(argc, argv);
    if (!opts.traceFile.empty()) trace::Tracer::instance().enable(opts.traceFile);
    wjbench::banner("wjd_load",
                    "multi-tenant compile daemon under closed-loop client load",
                    "in-process daemon, real sockets; real wall time");

    const std::string scratch = makeScratchDir("wjd_bench");
    // A private compile cache isolates the miss/hit accounting from the
    // developer's warm cache and from parallel ctest jobs.
    setenv("WJ_CACHE_DIR", (scratch + "/cache").c_str(), 1);

    service::DaemonOptions dopts;
    dopts.socketPath = scratch + "/wjd.sock";
    dopts.quiet = true;
    service::Daemon daemon(dopts);
    daemon.start();

    const int base = nonceBase();
    joinProof(dopts.socketPath, base);

    const int clients = opts.full ? 128 : 64;
    const int reqs = opts.smoke ? 2 : 4;
    closedLoop(dopts.socketPath, clients, reqs, base + 50000000);

    {
        service::Client c;
        c.connect(dopts.socketPath);
        expect(c.ping().ok, "daemon answers ping after the closed loop");
        const auto stats = c.stats();
        expect(stats.ok && stats.statsJson.find("wjd.compile.joins") != std::string::npos,
               "metrics JSON carries the wjd counters");
        c.close();
    }
    daemon.requestStop();
    daemon.wait();

    admissionBurst(scratch, base);

    std::printf("\n%s\n", failures == 0 ? "all load-harness contracts hold"
                                        : "LOAD-HARNESS CONTRACT VIOLATIONS");
    return failures == 0 ? 0 : 1;
}
