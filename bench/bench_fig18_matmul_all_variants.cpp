// Figure 18: matrix multiplication (paper: 1024^3), single CPU thread, all
// six variants. Paper shape: WootinJ ~ C/Template; "Template w/o virt."
// showed unsatisfactory performance here (Section 4.2's surprise); Java is
// far slower.
#include "common.h"

int main(int argc, char** argv) {
    const auto opts = wjbench::parseArgs(argc, argv);
    wjbench::banner("Figure 18", "matrix multiplication, single thread, all six variants",
                    "all rows MEASURED on this host");

    const auto c = wjbench::measureMatmulCosts(/*withInterp=*/true, opts.full);
    std::printf("%-22s %16s %12s\n", "variant", "ns/fma", "vs C");
    auto row = [&](const char* name, double v) {
        std::printf("%-22s %16.4f %11.1fx\n", name, v * 1e9, v / c.c);
    };
    row("Java", c.interp);
    row("C++ (virtual)", c.cppVirtual);
    row("Template", c.tmpl);
    row("Template w/o virt.", c.tmplNoVirt);
    row("WootinJ", c.wootinj);
    row("C", c.c);

    const bool shape = c.interp > c.wootinj && c.wootinj < 3.0 * c.c;
    std::printf("\npaper shape check: WootinJ beats Java and is within 3x of C -> %s\n",
                shape ? "holds" : "VIOLATED");
    return 0;
}
