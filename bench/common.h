// Shared measurement support for the figure/table benches.
//
// Every scaling bench follows the DESIGN.md recipe: MEASURE the real
// single-core cost of each variant's kernel on this host (interpreter, JIT
// output, hand C, virtual C++, template C++), then feed the measured cost
// into the perf model to produce the paper's node-count axis. The measured
// part decides who wins and by what factor; the model supplies the cluster.
//
// Benches accept:
//   --full          paper-scale problem sizes (slow; default sizes are
//                   scaled down)
//   --trace[=FILE]  arm the span tracer (src/trace/) for the whole bench;
//                   the default FILE is <bench>.trace.json next to the
//                   binary, so each figure gets its own Perfetto-loadable
//                   timeline (+ a .metrics.json counters sidecar)
//   --smoke         one fast representative row (CI regression tripwire;
//                   honored by the ablation benches, ignored elsewhere)
//
// Besides the stdout tables, every bench persists its measured rows
// machine-readably: banner() opens a per-figure report and process exit
// writes BENCH_<name>.json into the working directory (<name> is the
// binary name minus the bench_ prefix). Schema — a single object:
//
//   { "figure": "<banner figure id>",
//     "rows": [ { "config": "<row label>", "median_ns": <number>,
//                 "threads": <int>, "ranks": <int> }, ... ] }
//
// The shared measurement helpers below emit their per-variant costs as
// rows automatically; benches add their own sweep rows with jsonRow().
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace wjbench {

struct Options {
    bool full = false;
    bool smoke = false;     ///< --smoke: one fast row for CI tripwires
    std::string traceFile;  ///< empty = tracing not requested
};

Options parseArgs(int argc, char** argv);

/// Appends one row to this bench's BENCH_<name>.json report (flushed at
/// process exit, once banner() has named the figure). `medianNs` is the
/// median (best-of-N for the marginal-cost helpers) wall cost of the row
/// in nanoseconds; `threads`/`ranks` record the execution configuration.
void jsonRow(const std::string& config, double medianNs, int threads = 1, int ranks = 1);

/// One parsed row of a persisted BENCH_*.json report.
struct ReportRow {
    std::string config;
    double medianNs = 0;
    int threads = 1;
    int ranks = 1;
};

/// Reads the rows of a report a previous bench run persisted (the schema
/// above). Returns an empty vector when the file is absent or malformed —
/// callers treat that as "no prior measurement" and fall back to measuring
/// inline.
std::vector<ReportRow> loadReportRows(const std::string& path);

/// Per-cell-step costs (seconds) of the 3-D diffusion kernel per variant.
struct DiffusionCosts {
    double interp = 0;      ///< the "Java" platform (tree-walking interpreter)
    double wootinj = 0;     ///< JIT-translated class library
    double c = 0;           ///< hand C
    double cppVirtual = 0;  ///< naive virtual-function C++
    double tmpl = 0;        ///< template metaprogramming C++
    double tmplNoVirt = 0;  ///< fused leaf class
};

/// Measures the CPU diffusion kernel costs. `withInterp` adds the (much
/// slower) interpreter measurement; `full` uses 128^3 instead of 48^3.
DiffusionCosts measureDiffusionCosts(bool withInterp, bool full);

/// Per-fused-multiply-add costs (seconds) of the matmul kernel per variant.
struct MatmulCosts {
    double interp = 0;
    double wootinj = 0;
    double c = 0;
    double cppVirtual = 0;
    double tmpl = 0;
    double tmplNoVirt = 0;
};

MatmulCosts measureMatmulCosts(bool withInterp, bool full);

/// Real wall time of the JIT-translated GPU diffusion step on GpuSim, per
/// cell (used to sanity-print beside the roofline-model numbers).
double measureGpuDiffusionPerCell(bool full);

/// Compilation-time measurements for Table 3, cold and warm. The cold
/// columns are a first-ever jit() (external compiler runs); the warm
/// columns re-jit the same translation unit against the populated compile
/// cache with the in-process registry dropped — i.e. what a NEW process
/// pays on a warm machine.
struct CompileTime {
    std::string what;
    double codegen = 0;      ///< WootinJ code generation (seconds)
    double external = 0;     ///< external C compiler (seconds)
    double total() const { return codegen + external; }
    double warmCodegen = 0;  ///< codegen on the warm re-jit
    double warmLookup = 0;   ///< cache probe + dlopen-from-cache time
    bool warmHit = false;    ///< the warm construction skipped the compiler
};

/// jit()s the four evaluation apps and reports their compilation costs.
/// Returns {diffusion CPU, diffusion GPU, matmul CPU(Fox), matmul GPU}.
std::vector<CompileTime> measureCompileTimes();

/// Async-pipeline measurement: the same four translation units compiled
/// cold but concurrently on the JIT's compile pool.
struct ParallelCompile {
    double wallSeconds = 0;  ///< start of first to completion of last
    double sumSeconds = 0;   ///< sum of the per-unit compilation costs
    int units = 0;
};

ParallelCompile measureParallelCompileTimes();

/// Prints the standard banner: which figure, what workload, what is
/// measured vs modeled.
void banner(const char* fig, const char* what, const char* method);

} // namespace wjbench
