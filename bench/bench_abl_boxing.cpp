// Ablation: what does object inlining actually buy?
//
// Two versions of the SAME diffusion solver: the paper-style boxed one
// (every cell wrapped in a ScalarFloat, 7 allocations + 1 dispatch per
// cell) and a raw-float twin with identical arithmetic.
//
//   * On the interpreter (the JVM analogue), boxing costs real allocations
//     and dispatches -> the boxed version is measurably slower.
//   * After WootinJ translation, devirtualization + object inlining erase
//     the boxes entirely -> both versions should cost the SAME, and their
//     checksums are bit-identical.
//
// This isolates the paper's core claim from everything else in Figure 17.
#include <cmath>

#include "common.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "stencil/stencil_lib.h"
#include "support/timer.h"

using namespace wj;
using namespace wj::stencil;

namespace {

template <typename Fn>
double perStep(Fn&& run, int lo, int hi) {
    // Best-of-3 marginal cost; clamped away from zero so ratios stay sane
    // even when the kernel is faster than the timer noise floor.
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
        Timer t;
        run(lo);
        const double t1 = t.seconds();
        t.reset();
        run(hi);
        best = std::min(best, (t.seconds() - t1) / (hi - lo));
    }
    return std::max(best, 1e-9);
}

} // namespace

int main(int argc, char** argv) {
    const auto opts = wjbench::parseArgs(argc, argv);
    wjbench::banner("Ablation: object inlining (boxed vs raw solver)",
                    "3-D diffusion; ScalarFloat-boxed solver vs raw-float twin",
                    "all rows MEASURED on this host");

    const int n = opts.full ? 96 : 40;
    const int ni = 10;  // interpreter size
    const auto coeffs = DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    Program prog = buildProgram();
    Interp in(prog);

    // Checksums must agree bitwise (same arithmetic, boxes erased).
    Value boxed = makeCpuRunner(in, n, n, n, coeffs, 7);
    Value raw = makeCpuRawRunner(in, n, n, n, coeffs, 7);
    JitCode cBoxed = WootinJ::jit(prog, boxed, "run", {Value::ofI32(1)});
    JitCode cRaw = WootinJ::jit(prog, raw, "run", {Value::ofI32(1)});
    const double sBoxed = cBoxed.invokeWith({Value::ofI32(3)}).asF64();
    const double sRaw = cRaw.invokeWith({Value::ofI32(3)}).asF64();

    const double cells = static_cast<double>(n) * n * n;
    // Interleave the two measurements so load/thermal drift on a shared
    // single-core host hits both variants equally; keep the best of several
    // alternating rounds.
    double jitBoxed = 1e100, jitRaw = 1e100;
    for (int rep = 0; rep < 7; ++rep) {
        jitBoxed = std::min(
            jitBoxed, perStep([&](int s) { cBoxed.invokeWith({Value::ofI32(s)}); }, 2, 34));
        jitRaw = std::min(
            jitRaw, perStep([&](int s) { cRaw.invokeWith({Value::ofI32(s)}); }, 2, 34));
    }
    jitBoxed /= cells;
    jitRaw /= cells;

    Value iBoxed = makeCpuRunner(in, ni, ni, ni, coeffs, 7);
    Value iRaw = makeCpuRawRunner(in, ni, ni, ni, coeffs, 7);
    const double icells = static_cast<double>(ni) * ni * ni;
    double interpBoxed = 1e100, interpRaw = 1e100;
    for (int rep = 0; rep < 5; ++rep) {
        interpBoxed = std::min(
            interpBoxed, perStep([&](int s) { in.call(iBoxed, "run", {Value::ofI32(s)}); }, 1, 5));
        interpRaw = std::min(
            interpRaw, perStep([&](int s) { in.call(iRaw, "run", {Value::ofI32(s)}); }, 1, 5));
    }
    interpBoxed /= icells;
    interpRaw /= icells;

    std::printf("%-26s %16s %16s %10s\n", "platform", "boxed ns/cell", "raw ns/cell",
                "boxed/raw");
    std::printf("%-26s %16.3f %16.3f %10.2f\n", "Java (interpreter)", interpBoxed * 1e9,
                interpRaw * 1e9, interpBoxed / interpRaw);
    std::printf("%-26s %16.3f %16.3f %10.2f\n", "WootinJ (translated)", jitBoxed * 1e9,
                jitRaw * 1e9, jitBoxed / jitRaw);

    std::printf("\nchecksums: boxed %.6f, raw %.6f -> %s\n", sBoxed, sRaw,
                sBoxed == sRaw ? "bit-identical" : "MISMATCH");
    std::printf("ablation check: boxing costs >1.1x on the interpreter but <1.25x after "
                "translation -> %s\n",
                (interpBoxed / interpRaw > 1.1 && jitBoxed / jitRaw < 1.25) ? "holds"
                                                                            : "VIOLATED");
    return 0;
}
