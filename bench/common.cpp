#include "common.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <future>
#include <vector>

#include "baselines/diffusion_baselines.h"
#include "baselines/matmul_baselines.h"
#include "interp/interp.h"
#include "jit/cache.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "stencil/stencil_lib.h"
#include "support/timer.h"
#include "trace/trace.h"

namespace wjbench {

using namespace wj;

namespace {

/// The per-figure machine-readable report (see common.h for the schema).
/// parseArgs() names the file after the binary, banner() supplies the
/// figure id and arms the exit-time flush.
struct JsonReport {
    std::string file;    ///< BENCH_<name>.json; empty until parseArgs()
    std::string figure;  ///< banner()'s figure id; empty until banner()
    struct Row {
        std::string config;
        double medianNs = 0;
        int threads = 1;
        int ranks = 1;
    };
    std::vector<Row> rows;
    bool armed = false;
};

JsonReport& jsonReport() {
    static JsonReport r;
    return r;
}

std::string jsonEscape(const std::string& s) {
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    return out;
}

void flushJsonReport() {
    const JsonReport& r = jsonReport();
    if (r.file.empty()) return;
    FILE* f = std::fopen(r.file.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench: cannot write %s\n", r.file.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"figure\": \"%s\",\n  \"rows\": [", jsonEscape(r.figure).c_str());
    for (size_t i = 0; i < r.rows.size(); ++i) {
        const JsonReport::Row& row = r.rows[i];
        std::fprintf(f,
                     "%s\n    { \"config\": \"%s\", \"median_ns\": %.17g, "
                     "\"threads\": %d, \"ranks\": %d }",
                     i ? "," : "", jsonEscape(row.config).c_str(), row.medianNs, row.threads,
                     row.ranks);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "rows persisted to %s\n", r.file.c_str());
}

} // namespace

void jsonRow(const std::string& config, double medianNs, int threads, int ranks) {
    jsonReport().rows.push_back({config, medianNs, threads, ranks});
}

std::vector<ReportRow> loadReportRows(const std::string& path) {
    // Minimal scanner for the machine-written schema above: find each row
    // object and pull its four members. Anything unexpected aborts to an
    // empty result (the caller's inline-measurement fallback).
    std::vector<ReportRow> out;
    FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) return out;
    std::string s;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) s.append(buf, got);
    std::fclose(f);

    const auto member = [&](size_t obj, const char* name) -> size_t {
        const std::string key = std::string("\"") + name + "\":";
        const size_t end = s.find('}', obj);
        const size_t at = s.find(key, obj);
        if (at == std::string::npos || end == std::string::npos || at > end)
            return std::string::npos;
        return at + key.size();
    };
    size_t pos = s.find("\"rows\"");
    if (pos == std::string::npos) return out;
    while ((pos = s.find('{', pos)) != std::string::npos) {
        ReportRow r;
        const size_t cfg = member(pos, "config");
        const size_t med = member(pos, "median_ns");
        if (cfg == std::string::npos || med == std::string::npos) return {};
        const size_t q0 = s.find('"', cfg);
        const size_t q1 = q0 == std::string::npos ? q0 : s.find('"', q0 + 1);
        if (q1 == std::string::npos) return {};
        r.config = s.substr(q0 + 1, q1 - q0 - 1);
        r.medianNs = std::strtod(s.c_str() + med, nullptr);
        if (const size_t t = member(pos, "threads"); t != std::string::npos)
            r.threads = static_cast<int>(std::strtol(s.c_str() + t, nullptr, 10));
        if (const size_t k = member(pos, "ranks"); k != std::string::npos)
            r.ranks = static_cast<int>(std::strtol(s.c_str() + k, nullptr, 10));
        out.push_back(std::move(r));
        pos = s.find('}', pos);
        if (pos == std::string::npos) break;
    }
    return out;
}

Options parseArgs(int argc, char** argv) {
    Options o;
    {
        // Name the JSON report after the binary: bench_abl_threads ->
        // BENCH_abl_threads.json (written into the working directory).
        std::string base = argv[0];
        const size_t slash = base.find_last_of('/');
        if (slash != std::string::npos) base = base.substr(slash + 1);
        if (base.rfind("bench_", 0) == 0) base = base.substr(6);
        jsonReport().file = "BENCH_" + base + ".json";
    }
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            o.full = true;
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            o.smoke = true;
        } else if (std::strncmp(argv[i], "--trace", 7) == 0) {
            if (argv[i][7] == '=' && argv[i][8]) {
                o.traceFile = argv[i] + 8;
            } else {
                // Default: one trace per figure, named after the binary.
                std::string base = argv[0];
                const size_t slash = base.find_last_of('/');
                if (slash != std::string::npos) base = base.substr(slash + 1);
                o.traceFile = base + ".trace.json";
            }
        }
    }
    if (!o.traceFile.empty()) {
        wj::trace::Tracer::instance().enable(o.traceFile);
        std::fprintf(stderr, "tracing to %s (+ %s.metrics.json)\n", o.traceFile.c_str(),
                     o.traceFile.c_str());
    }
    return o;
}

void banner(const char* fig, const char* what, const char* method) {
    std::printf("== %s ==\n%s\n[%s]\n\n", fig, what, method);
    JsonReport& r = jsonReport();
    r.figure = fig;
    if (!r.armed) {
        r.armed = true;
        std::atexit(flushJsonReport);
    }
}

namespace {

constexpr int kSeed = 7;

/// Best-of-3 marginal cost: (t(hi) - t(lo)) / (hi - lo) per unit of work.
template <typename Fn>
double marginal(Fn&& run, int lo, int hi, double unitsPerStep) {
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
        Timer t;
        run(lo);
        const double tLo = t.seconds();
        t.reset();
        run(hi);
        const double tHi = t.seconds();
        best = std::min(best, (tHi - tLo) / (hi - lo));
    }
    return std::max(best, 1e-12) / unitsPerStep;
}

} // namespace

DiffusionCosts measureDiffusionCosts(bool withInterp, bool full) {
    DiffusionCosts out;
    const int n = full ? 128 : 48;
    const double cells = static_cast<double>(n) * n * n;
    const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    const int lo = 2, hi = full ? 6 : 12;

    out.c = marginal([&](int s) { baselines::diffusionC(n, n, n, coeffs, kSeed, s); }, lo, hi,
                     cells);
    out.cppVirtual = marginal(
        [&](int s) { baselines::diffusionVirtual(n, n, n, coeffs, kSeed, s); }, lo, hi, cells);
    out.tmpl = marginal([&](int s) { baselines::diffusionTemplate(n, n, n, coeffs, kSeed, s); },
                        lo, hi, cells);
    out.tmplNoVirt = marginal(
        [&](int s) { baselines::diffusionTemplateNoVirt(n, n, n, coeffs, kSeed, s); }, lo, hi,
        cells);

    static Program prog = stencil::buildProgram();  // shared across benches
    Interp in(prog);
    Value runner = stencil::makeCpuRunner(in, n, n, n, coeffs, kSeed);
    JitCode code = WootinJ::jit(prog, runner, "run", {Value::ofI32(1)});
    out.wootinj = marginal([&](int s) { code.invokeWith({Value::ofI32(s)}); }, lo, hi, cells);

    if (withInterp) {
        const int ni = full ? 20 : 12;
        Value small = stencil::makeCpuRunner(in, ni, ni, ni, coeffs, kSeed);
        out.interp = marginal([&](int s) { in.call(small, "run", {Value::ofI32(s)}); }, 1, 3,
                              static_cast<double>(ni) * ni * ni);
    }
    jsonRow("diffusion ns/cell-step: wootinj", out.wootinj * 1e9);
    jsonRow("diffusion ns/cell-step: c", out.c * 1e9);
    jsonRow("diffusion ns/cell-step: cpp-virtual", out.cppVirtual * 1e9);
    jsonRow("diffusion ns/cell-step: template", out.tmpl * 1e9);
    jsonRow("diffusion ns/cell-step: template-novirt", out.tmplNoVirt * 1e9);
    if (withInterp) jsonRow("diffusion ns/cell-step: interp", out.interp * 1e9);
    return out;
}

MatmulCosts measureMatmulCosts(bool withInterp, bool full) {
    MatmulCosts out;
    const int n1 = full ? 256 : 96;
    const int n2 = full ? 384 : 160;
    const double fmaDiff = static_cast<double>(n2) * n2 * n2 - static_cast<double>(n1) * n1 * n1;

    auto perFma = [&](auto&& fn) {
        double best = 1e100;
        for (int rep = 0; rep < 3; ++rep) {
            Timer t;
            fn(n1);
            const double t1 = t.seconds();
            t.reset();
            fn(n2);
            const double t2 = t.seconds();
            best = std::min(best, (t2 - t1) / fmaDiff);
        }
        return std::max(best, 1e-13);
    };

    out.c = perFma([&](int n) { baselines::matmulC(n, kSeed, kSeed + 1); });
    out.cppVirtual = perFma([&](int n) { baselines::matmulVirtual(n, kSeed, kSeed + 1); });
    out.tmpl = perFma([&](int n) { baselines::matmulTemplate(n, kSeed, kSeed + 1); });
    out.tmplNoVirt = perFma([&](int n) { baselines::matmulTemplateNoVirt(n, kSeed, kSeed + 1); });

    static Program prog = matmul::buildProgram();
    Interp in(prog);
    Value app = matmul::makeCpuApp(in, matmul::Calc::Optimized);
    JitCode code = WootinJ::jit(prog, app, "run", {Value::ofI32(n1), Value::ofI32(kSeed)});
    out.wootinj =
        perFma([&](int n) { code.invokeWith({Value::ofI32(n), Value::ofI32(kSeed)}); });

    if (withInterp) {
        const int m1 = 12, m2 = 20;
        const double df = static_cast<double>(m2) * m2 * m2 - static_cast<double>(m1) * m1 * m1;
        Value iapp = matmul::makeCpuApp(in, matmul::Calc::Optimized);
        Timer t;
        in.call(iapp, "run", {Value::ofI32(m1), Value::ofI32(kSeed)});
        const double t1 = t.seconds();
        t.reset();
        in.call(iapp, "run", {Value::ofI32(m2), Value::ofI32(kSeed)});
        out.interp = (t.seconds() - t1) / df;
    }
    jsonRow("matmul ns/fma: wootinj", out.wootinj * 1e9);
    jsonRow("matmul ns/fma: c", out.c * 1e9);
    jsonRow("matmul ns/fma: cpp-virtual", out.cppVirtual * 1e9);
    jsonRow("matmul ns/fma: template", out.tmpl * 1e9);
    jsonRow("matmul ns/fma: template-novirt", out.tmplNoVirt * 1e9);
    if (withInterp) jsonRow("matmul ns/fma: interp", out.interp * 1e9);
    return out;
}

double measureGpuDiffusionPerCell(bool full) {
    const int n = full ? 64 : 32;
    const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    static Program prog = stencil::buildProgram();
    Interp in(prog);
    Value runner = stencil::makeGpuRunner(in, n, n, n, coeffs, kSeed, 128);
    JitCode code = WootinJ::jit(prog, runner, "run", {Value::ofI32(1)});
    const double perCell = marginal([&](int s) { code.invokeWith({Value::ofI32(s)}); }, 1, 5,
                                    static_cast<double>(n) * n * n);
    jsonRow("gpu diffusion ns/cell-step: wootinj", perCell * 1e9);
    return perCell;
}

namespace {

/// One Table 3 row: cold jit (fresh key), then a warm re-jit of the same
/// translation unit with the in-process registry dropped — the cost a new
/// process pays against a populated on-disk cache.
template <typename MakeReceiver>
CompileTime compileColdWarm(const char* what, Program& prog, Interp& in, MakeReceiver&& make,
                            std::vector<Value> args) {
    CompileTime row;
    row.what = what;
    {
        Value r = make(in);
        JitCode c = WootinJ::jit4mpi(prog, r, "run", args);
        row.codegen = c.codegenSeconds();
        row.external = c.compileSeconds();
    }
    JitCache::instance().clearLoaded();
    {
        Value r = make(in);
        JitCode c = WootinJ::jit4mpi(prog, r, "run", args);
        row.warmCodegen = c.codegenSeconds();
        row.warmLookup = c.cacheLookupSeconds();
        row.warmHit = c.cacheHit();
    }
    jsonRow(std::string("compile cold: ") + what, row.total() * 1e9);
    jsonRow(std::string("compile warm: ") + what, (row.warmCodegen + row.warmLookup) * 1e9);
    return row;
}

} // namespace

std::vector<CompileTime> measureCompileTimes() {
    std::vector<CompileTime> out;
    const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    {
        static Program prog = stencil::buildProgram();
        Interp in(prog);
        out.push_back(compileColdWarm(
            "3-D diffusion, CPU + MPI", prog, in,
            [&](Interp& i) { return stencil::makeMpiRunner(i, 8, 8, 8, coeffs, kSeed); },
            {Value::ofI32(1)}));
        out.push_back(compileColdWarm(
            "3-D diffusion, GPU + MPI", prog, in,
            [&](Interp& i) { return stencil::makeGpuMpiRunner(i, 8, 8, 8, coeffs, kSeed, 32); },
            {Value::ofI32(1)}));
    }
    {
        static Program prog = matmul::buildProgram();
        Interp in(prog);
        out.push_back(compileColdWarm(
            "matmul Fox, CPU + MPI", prog, in,
            [&](Interp& i) { return matmul::makeMpiFoxApp(i, matmul::Calc::Optimized, 2); },
            {Value::ofI32(8), Value::ofI32(kSeed)}));
        out.push_back(compileColdWarm(
            "matmul Fox, GPU + MPI", prog, in,
            [&](Interp& i) { return matmul::makeMpiFoxGpuApp(i, 2, 4); },
            {Value::ofI32(8), Value::ofI32(kSeed)}));
    }
    return out;
}

ParallelCompile measureParallelCompileTimes() {
    // Force every unit cold, then overlap all four compiles on the pool.
    JitCache::instance().clearLoaded();
    JitCache::instance().clearDisk();

    Program sprog = stencil::buildProgram();
    Program mprog = matmul::buildProgram();
    Interp si(sprog), mi(mprog);
    const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);

    Timer wall;
    std::vector<std::future<JitCode>> futs;
    futs.push_back(WootinJ::jit4mpiAsync(sprog, stencil::makeMpiRunner(si, 8, 8, 8, coeffs, kSeed),
                                         "run", {Value::ofI32(1)}));
    futs.push_back(WootinJ::jit4mpiAsync(sprog,
                                         stencil::makeGpuMpiRunner(si, 8, 8, 8, coeffs, kSeed, 32),
                                         "run", {Value::ofI32(1)}));
    futs.push_back(WootinJ::jit4mpiAsync(mprog, matmul::makeMpiFoxApp(mi, matmul::Calc::Optimized, 2),
                                         "run", {Value::ofI32(8), Value::ofI32(kSeed)}));
    futs.push_back(WootinJ::jit4mpiAsync(mprog, matmul::makeMpiFoxGpuApp(mi, 2, 4), "run",
                                         {Value::ofI32(8), Value::ofI32(kSeed)}));

    ParallelCompile out;
    for (auto& f : futs) {
        JitCode c = f.get();
        out.sumSeconds += c.totalCompilationSeconds();
        ++out.units;
    }
    out.wallSeconds = wall.seconds();
    jsonRow("compile 4 units overlapped: wall", out.wallSeconds * 1e9);
    jsonRow("compile 4 units overlapped: sum", out.sumSeconds * 1e9);
    return out;
}

} // namespace wjbench
