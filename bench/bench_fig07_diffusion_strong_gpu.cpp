// Figure 7: strong scaling of the 3-D diffusion solver on GPUs,
// 384x384x(384x4) total. Modeled per the Figure 6 methodology; the
// crossover where PCIe/network halo staging stops the scaling is the
// paper's qualitative story.
#include "common.h"
#include "perf/perfmodel.h"

int main(int argc, char** argv) {
    (void)wjbench::parseArgs(argc, argv);
    wjbench::banner("Figure 7", "strong scaling, 3-D diffusion, GPU+MPI, 384x384x1536 total",
                    "GPU kernel MODELED (M2050 roofline); halo staging via PCIe");

    const auto m = wj::perf::MachineProfile::tsubame2();
    wj::perf::StencilScaling s{};
    s.nx = 384;
    s.ny = 384;
    s.nzPerNodeOrGlobal = 384 * 4;
    s.gpuVariantFactor = 1.0;

    std::printf("seconds per step and speedup vs 1 GPU\n");
    std::printf("%6s %12s %10s\n", "GPUs", "time", "speedup");
    const double t1 = s.strongStepGpu(m, 1);
    for (int p : {1, 2, 4, 8, 16, 32, 64}) {
        const double t = s.strongStepGpu(m, p);
        std::printf("%6d %12.5f %10.2f\n", p, t, t1 / t);
    }
    std::printf("\n(C, Template and WootinJ coincide on GPUs after translation; see Figure 6)\n");
    return 0;
}
