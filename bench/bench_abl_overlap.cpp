// Ablation: communication/computation overlap in the MPI stencil runner.
//
// The library ships two MPI runners with bit-identical numerics: the
// paper-style synchronous halo exchange (StencilCPU3D_MPI) and an
// overlapped one (StencilCPU3D_MPI_Overlap) that posts nonblocking ghost
// receives and computes the interior while halos are in flight. This bench
// (a) verifies the two agree on a real MiniMPI run and (b) models how much
// exchange latency the overlap hides at TSUBAME-like scale.
#include <cmath>

#include "common.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "perf/perfmodel.h"
#include "stencil/stencil_lib.h"

using namespace wj;
using namespace wj::stencil;

int main(int argc, char** argv) {
    const auto opts = wjbench::parseArgs(argc, argv);
    wjbench::banner("Ablation: halo-exchange overlap",
                    "synchronous vs overlapped MPI stencil runner",
                    "agreement REAL on MiniMPI; cluster timing MODELED");

    // Real agreement check.
    Program prog = buildProgram();
    Interp in(prog);
    const auto coeffs = DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    const int nx = 12, ranks = 4, nzLocal = 6, steps = 3;
    Value sync = makeMpiRunner(in, nx, nx, nzLocal, coeffs, 7);
    Value ovl = makeMpiOverlapRunner(in, nx, nx, nzLocal, coeffs, 7);
    JitCode cs = WootinJ::jit4mpi(prog, sync, "run", {Value::ofI32(steps)});
    JitCode co = WootinJ::jit4mpi(prog, ovl, "run", {Value::ofI32(steps)});
    cs.set4MPI(ranks);
    co.set4MPI(ranks);
    const double a = cs.invoke().asF64();
    const double b = co.invoke().asF64();
    std::printf("real run on %d ranks: sync %.6f, overlapped %.6f -> %s\n", ranks, a, b,
                a == b ? "bit-identical" : "MISMATCH");

    // Real traffic, from MiniMPI's accounting: how much of the halo volume
    // actually crossed through a memcpy vs the pooled / zero-copy paths.
    const auto traffic = [](const char* name, const JitCode& code) {
        const auto st = code.commStats();
        std::printf("%-10s traffic: %lld msgs, %lld B total, %lld B pooled, "
                    "%lld B zero-copy, %lld B copied\n",
                    name, static_cast<long long>(st.messages),
                    static_cast<long long>(st.bytes), static_cast<long long>(st.pooledBytes),
                    static_cast<long long>(st.zeroCopyBytes),
                    static_cast<long long>(st.copiedBytes()));
    };
    traffic("sync", cs);
    traffic("overlapped", co);
    std::printf("\n");

    // Modeled benefit as the per-node slab shrinks (strong-scaling regime:
    // the thinner the slab, the larger the comm fraction and the payoff).
    const auto costs = wjbench::measureDiffusionCosts(false, opts.full);
    const auto m = perf::MachineProfile::tsubame2();
    std::printf("weak-scaling step time at 16 nodes, per-node slab depth varied\n");
    std::printf("%8s %14s %14s %10s\n", "nz/node", "sync", "overlapped", "saved");
    for (int nz : {128, 32, 8, 4}) {
        perf::StencilScaling s{};
        s.nx = s.ny = 128;
        s.nzPerNodeOrGlobal = nz;
        s.secondsPerCell = costs.wootinj;
        const double ts = s.weakStepCpu(m, 16);
        const double to = s.weakStepCpuOverlap(m, 16);
        std::printf("%8d %14.6f %14.6f %9.1f%%\n", nz, ts, to, (1.0 - to / ts) * 100.0);
    }
    std::printf("\nablation check: overlap never slower, and results bit-identical -> %s\n",
                a == b ? "holds" : "VIOLATED");
    return a == b ? 0 : 1;
}
