// Ablation: communication/computation overlap in the MPI stencil runner.
//
// The library ships two MPI runners with bit-identical numerics: the
// paper-style synchronous halo exchange (StencilCPU3D_MPI) and an
// overlapped one (StencilCPU3D_MPI_Overlap) that posts nonblocking ghost
// receives and computes the interior while halos are in flight. This bench
// (a) verifies the two agree on a real MiniMPI run, (b) calibrates the
// alpha-beta link model against the transport ping-pong rows persisted in
// BENCH_kernels_micro.json (measuring inline when no report is on disk)
// and prints the fit's predicted-vs-measured error, and (c) models how
// much exchange latency the overlap hides at TSUBAME-like scale.
#include <chrono>
#include <cmath>
#include <cstring>
#include <vector>

#include "common.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "minimpi/minimpi.h"
#include "perf/perfmodel.h"
#include "stencil/stencil_lib.h"

using namespace wj;
using namespace wj::stencil;

namespace {

/// Median one-way message cost of a 2-rank threads-transport ping-pong —
/// the inline fallback when no BENCH_kernels_micro.json report is on disk.
double pingPongOneWayNs(size_t bytes, int msgs, int reps) {
    minimpi::World w(2, minimpi::TransportKind::Threads);
    std::vector<double> ns;
    for (int r = 0; r <= reps; ++r) {  // r == 0 warms the transport
        const auto t0 = std::chrono::steady_clock::now();
        w.run([&](minimpi::Comm& c) {
            std::vector<uint8_t> buf(bytes, static_cast<uint8_t>(1));
            for (int m = 0; m < msgs; ++m) {
                if (c.rank() == 0) {
                    c.send(buf.data(), bytes, 1, 1);
                    c.recv(buf.data(), bytes, 1, 2);
                } else {
                    c.recv(buf.data(), bytes, 0, 1);
                    c.send(buf.data(), bytes, 0, 2);
                }
            }
        });
        if (r == 0) continue;
        ns.push_back(std::chrono::duration<double, std::nano>(
                         std::chrono::steady_clock::now() - t0)
                         .count() /
                     (2.0 * msgs));  // a round trip is two messages
    }
    std::sort(ns.begin(), ns.end());
    return ns[ns.size() / 2];
}

/// Fits alpha-beta against the transport rows bench_kernels_micro persisted
/// (or an inline sweep) and prints the model's predicted-vs-measured error
/// per message size — the calibration check for the modeled tables below.
void calibrateAlphaBeta() {
    const char* report = "BENCH_kernels_micro.json";
    std::vector<perf::LinkSample> samples;
    for (const auto& row : wjbench::loadReportRows(report)) {
        unsigned long bytes = 0;
        char kind[16] = {0};
        // "xport <bytes>B threads" rows; the round-trip median covers two
        // messages. The proc rows price process isolation, not the link.
        if (std::sscanf(row.config.c_str(), "xport %luB %15s", &bytes, kind) == 2 &&
            std::strcmp(kind, "threads") == 0) {
            samples.push_back({static_cast<double>(bytes), row.medianNs * 1e-9 / 2.0});
        }
    }
    const bool fromReport = !samples.empty();
    if (!fromReport) {
        for (size_t bytes : {64u, 4096u, 65536u})
            samples.push_back(
                {static_cast<double>(bytes), pingPongOneWayNs(bytes, 128, 3) * 1e-9});
    }
    const perf::NetModel fit = perf::fitAlphaBeta(samples);
    std::printf("calibrated alpha-beta over the local threads transport (%s):\n",
                fromReport ? report : "report absent; measured inline");
    std::printf("  alpha %.3f us, beta %.3f GB/s\n", fit.latency * 1e6, fit.bandwidth / 1e9);
    std::printf("%12s %14s %14s %10s\n", "bytes", "measured", "predicted", "error");
    double sumAbsErr = 0;
    for (const auto& s : samples) {
        const double pred = fit.transferTime(s.bytes);
        const double errPct = (pred / s.seconds - 1.0) * 100.0;
        sumAbsErr += std::fabs(errPct);
        std::printf("%12.0f %12.0fns %12.0fns %9.1f%%\n", s.bytes, s.seconds * 1e9,
                    pred * 1e9, errPct);
    }
    std::printf("mean |error| %.1f%% over %zu sizes\n\n", sumAbsErr / samples.size(),
                samples.size());
    wjbench::jsonRow("calibrated alpha (ns/msg)", fit.latency * 1e9);
    wjbench::jsonRow("calibrated beta (ns/KiB)", 1024.0 / fit.bandwidth * 1e9);
}

} // namespace

int main(int argc, char** argv) {
    const auto opts = wjbench::parseArgs(argc, argv);
    wjbench::banner("Ablation: halo-exchange overlap",
                    "synchronous vs overlapped MPI stencil runner",
                    "agreement REAL on MiniMPI; cluster timing MODELED");

    // Real agreement check.
    Program prog = buildProgram();
    Interp in(prog);
    const auto coeffs = DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    const int nx = 12, ranks = 4, nzLocal = 6, steps = 3;
    Value sync = makeMpiRunner(in, nx, nx, nzLocal, coeffs, 7);
    Value ovl = makeMpiOverlapRunner(in, nx, nx, nzLocal, coeffs, 7);
    JitCode cs = WootinJ::jit4mpi(prog, sync, "run", {Value::ofI32(steps)});
    JitCode co = WootinJ::jit4mpi(prog, ovl, "run", {Value::ofI32(steps)});
    cs.set4MPI(ranks);
    co.set4MPI(ranks);
    const double a = cs.invoke().asF64();
    const double b = co.invoke().asF64();
    std::printf("real run on %d ranks: sync %.6f, overlapped %.6f -> %s\n", ranks, a, b,
                a == b ? "bit-identical" : "MISMATCH");

    // Real traffic, from MiniMPI's accounting: how much of the halo volume
    // actually crossed through a memcpy vs the pooled / zero-copy paths.
    const auto traffic = [](const char* name, const JitCode& code) {
        const auto st = code.commStats();
        std::printf("%-10s traffic: %lld msgs, %lld B total, %lld B pooled, "
                    "%lld B zero-copy, %lld B copied\n",
                    name, static_cast<long long>(st.messages),
                    static_cast<long long>(st.bytes), static_cast<long long>(st.pooledBytes),
                    static_cast<long long>(st.zeroCopyBytes),
                    static_cast<long long>(st.copiedBytes()));
    };
    traffic("sync", cs);
    traffic("overlapped", co);
    std::printf("\n");

    calibrateAlphaBeta();

    // Modeled benefit as the per-node slab shrinks (strong-scaling regime:
    // the thinner the slab, the larger the comm fraction and the payoff).
    const auto costs = wjbench::measureDiffusionCosts(false, opts.full);
    const auto m = perf::MachineProfile::tsubame2();
    std::printf("weak-scaling step time at 16 nodes, per-node slab depth varied\n");
    std::printf("%8s %14s %14s %10s\n", "nz/node", "sync", "overlapped", "saved");
    for (int nz : {128, 32, 8, 4}) {
        perf::StencilScaling s{};
        s.nx = s.ny = 128;
        s.nzPerNodeOrGlobal = nz;
        s.secondsPerCell = costs.wootinj;
        const double ts = s.weakStepCpu(m, 16);
        const double to = s.weakStepCpuOverlap(m, 16);
        std::printf("%8d %14.6f %14.6f %9.1f%%\n", nz, ts, to, (1.0 - to / ts) * 100.0);
    }
    std::printf("\nablation check: overlap never slower, and results bit-identical -> %s\n",
                a == b ? "holds" : "VIOLATED");
    return a == b ? 0 : 1;
}
