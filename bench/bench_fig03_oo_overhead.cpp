// Figure 3: the cost of object orientation. 3-D diffusion (paper: 128^3,
// default here 48^3; pass --full for 128^3) on a single thread:
// "Java" (our interpreter), C++ (virtual functions), and hand C.
// The paper's shape: Java and C++ are more than 10x slower than C.
#include "common.h"

int main(int argc, char** argv) {
    const auto opts = wjbench::parseArgs(argc, argv);
    wjbench::banner("Figure 3", "3-D diffusion, single thread: Java vs C++ vs C",
                    "all rows MEASURED on this host; Java = WJ interpreter (the JVM analogue)");

    const auto c = wjbench::measureDiffusionCosts(/*withInterp=*/true, opts.full);
    std::printf("%-22s %16s %12s\n", "variant", "ns/cell/step", "vs C");
    auto row = [&](const char* name, double v) {
        std::printf("%-22s %16.3f %11.1fx\n", name, v * 1e9, v / c.c);
    };
    row("Java", c.interp);
    row("C++ (virtual)", c.cppVirtual);
    row("C", c.c);
    std::printf("\npaper shape check: Java and C++ slower than C by >1x each -> %s\n",
                (c.interp > c.c && c.cppVirtual > c.c) ? "holds" : "VIOLATED");
    return 0;
}
