// wjd — the WootinC JIT compile daemon (see src/service/daemon.h).
//
//   wjd --socket PATH [--workers N] [--max-inflight N] [--queue-cap N]
//       [--bundles DIR] [--fault SPEC] [--quiet]
//
// Listens on a Unix-domain socket for framed compile requests (protocol in
// src/service/protocol.h; talk to it with wjd_client or the service
// Client). Runs until SIGTERM/SIGINT or a Shutdown request, then drains:
// every admitted compile finishes and responds before the process exits.
//
// Environment: WJD_WORKERS / WJD_MAX_INFLIGHT / WJD_QUEUE_CAP are the
// flag defaults; the compile pipeline honors the usual WJ_CC, WJ_CFLAGS,
// WJ_CACHE_DIR, WJ_JIT_RETRIES, WJ_JIT_BACKOFF_MS, WJ_FAULT. The daemon
// exports WJ_CACHE_EVICT_GRACE_MS=10000 unless already set.
//
// Exit codes: 0 clean drain, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fault/fault.h"
#include "service/daemon.h"
#include "support/diagnostics.h"

using namespace wj;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: wjd --socket PATH [--workers N] [--max-inflight N]\n"
                 "           [--queue-cap N] [--bundles DIR] [--fault SPEC] [--quiet]\n");
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    service::DaemonOptions opts;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--socket" && i + 1 < argc) opts.socketPath = argv[++i];
            else if (a == "--workers" && i + 1 < argc) opts.workers = std::atoi(argv[++i]);
            else if (a == "--max-inflight" && i + 1 < argc)
                opts.maxInflightPerClient = std::atoi(argv[++i]);
            else if (a == "--queue-cap" && i + 1 < argc) opts.queueCap = std::atoi(argv[++i]);
            else if (a == "--bundles" && i + 1 < argc) opts.bundleDir = argv[++i];
            else if (a == "--quiet") opts.quiet = true;
            else if (a == "--fault" && i + 1 < argc) {
                fault::FaultPlan::instance().configure(argv[++i]);
                std::fprintf(stderr, "wjd: fault plan: %s\n",
                             fault::FaultPlan::instance().describe().c_str());
            } else {
                return usage();
            }
        }
        if (opts.socketPath.empty()) return usage();

        service::Daemon daemon(opts);
        daemon.start();
        service::installSignalDrain(daemon);
        daemon.wait();
        return 0;
    } catch (const UsageError& e) {
        std::fprintf(stderr, "wjd: %s\n", e.what());
        return 2;
    } catch (const WjError& e) {
        std::fprintf(stderr, "wjd: %s\n", e.what());
        return 1;
    }
}
