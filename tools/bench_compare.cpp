// bench_compare — CI regression gate over the per-figure BENCH_*.json
// reports the benches persist at exit (schema in bench/common.h).
//
//   bench_compare <baseline.json> <current.json> [--threshold PCT]
//
// Rows are matched by {figure, config, threads, ranks}; for every matching
// pair the current median_ns is compared against the baseline and the tool
// exits 1 when any row regressed by more than the threshold (default 25%,
// sized for shared-runner noise — the goal is catching step changes like a
// de-vectorized kernel, not 3% drift). Rows present on only one side are
// reported but not fatal (benches grow rows across PRs). Mismatched figure
// ids mean the wrong files are being compared: that is a usage error.
//
// Exit codes follow the repo-wide CLI contract: 0 ok, 1 regression found,
// 2 usage/parse error.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Row {
    std::string config;
    double medianNs = 0;
    int threads = 1;
    int ranks = 1;
};

struct Report {
    std::string figure;
    std::vector<Row> rows;
};

// ---- minimal JSON scanner for the fixed bench schema ----------------------
// Accepts exactly the shape common.cpp writes (one object, string figure,
// array of flat row objects with string/number fields). Anything else is a
// parse error — the reports are machine-written, so leniency buys nothing.

class Parser {
public:
    explicit Parser(std::string text) : s_(std::move(text)) {}

    bool parse(Report& out, std::string& err) {
        ws();
        if (!eat('{')) return fail(err, "expected '{'");
        bool first = true;
        while (true) {
            ws();
            if (eat('}')) break;
            if (!first && !eat(',')) return fail(err, "expected ',' between members");
            first = false;
            ws();
            std::string key;
            if (!str(key)) return fail(err, "expected member name");
            ws();
            if (!eat(':')) return fail(err, "expected ':'");
            ws();
            if (key == "figure") {
                if (!str(out.figure)) return fail(err, "figure must be a string");
            } else if (key == "rows") {
                if (!rows(out.rows, err)) return false;
            } else {
                return fail(err, "unknown member \"" + key + "\"");
            }
        }
        ws();
        if (pos_ != s_.size()) return fail(err, "trailing content");
        return true;
    }

private:
    bool rows(std::vector<Row>& out, std::string& err) {
        if (!eat('[')) return fail(err, "rows must be an array");
        ws();
        if (eat(']')) return true;
        while (true) {
            Row r;
            if (!row(r, err)) return false;
            out.push_back(std::move(r));
            ws();
            if (eat(']')) return true;
            if (!eat(',')) return fail(err, "expected ',' between rows");
            ws();
        }
    }

    bool row(Row& r, std::string& err) {
        ws();
        if (!eat('{')) return fail(err, "row must be an object");
        bool first = true;
        while (true) {
            ws();
            if (eat('}')) return true;
            if (!first && !eat(',')) return fail(err, "expected ',' in row");
            first = false;
            ws();
            std::string key;
            if (!str(key)) return fail(err, "expected row member name");
            ws();
            if (!eat(':')) return fail(err, "expected ':' in row");
            ws();
            if (key == "config") {
                if (!str(r.config)) return fail(err, "config must be a string");
            } else {
                double v = 0;
                if (!num(v)) return fail(err, "\"" + key + "\" must be a number");
                if (key == "median_ns") r.medianNs = v;
                else if (key == "threads") r.threads = static_cast<int>(v);
                else if (key == "ranks") r.ranks = static_cast<int>(v);
                else return fail(err, "unknown row member \"" + key + "\"");
            }
        }
    }

    void ws() {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    bool eat(char c) {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }
    bool str(std::string& out) {
        if (!eat('"')) return false;
        out.clear();
        while (pos_ < s_.size()) {
            char c = s_[pos_++];
            if (c == '"') return true;
            if (c == '\\') {
                if (pos_ >= s_.size()) return false;
                out += s_[pos_++];
            } else {
                out += c;
            }
        }
        return false;
    }
    bool num(double& out) {
        const char* start = s_.c_str() + pos_;
        char* end = nullptr;
        out = std::strtod(start, &end);
        if (end == start) return false;
        pos_ += static_cast<size_t>(end - start);
        return true;
    }
    bool fail(std::string& err, const std::string& what) {
        err = what + " at byte " + std::to_string(pos_);
        return false;
    }

    std::string s_;
    size_t pos_ = 0;
};

bool load(const char* path, Report& out) {
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        std::fprintf(stderr, "bench_compare: cannot read %s\n", path);
        return false;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::string err;
    if (!Parser(ss.str()).parse(out, err)) {
        std::fprintf(stderr, "bench_compare: %s: %s\n", path, err.c_str());
        return false;
    }
    return true;
}

std::string rowKey(const Row& r) {
    return r.config + " @threads=" + std::to_string(r.threads) +
           " ranks=" + std::to_string(r.ranks);
}

int usage() {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <current.json> [--threshold PCT]\n"
                 "  exits 1 when any {figure, config} row's median_ns regressed by\n"
                 "  more than PCT%% (default 25) against the baseline\n");
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    const char* basePath = nullptr;
    const char* curPath = nullptr;
    double thresholdPct = 25.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
            char* end = nullptr;
            thresholdPct = std::strtod(argv[++i], &end);
            if (!end || *end || !(thresholdPct > 0)) return usage();
        } else if (!basePath) {
            basePath = argv[i];
        } else if (!curPath) {
            curPath = argv[i];
        } else {
            return usage();
        }
    }
    if (!basePath || !curPath) return usage();

    Report base, cur;
    if (!load(basePath, base) || !load(curPath, cur)) return 2;
    if (base.figure != cur.figure) {
        std::fprintf(stderr,
                     "bench_compare: figure mismatch — baseline is \"%s\", current is \"%s\" "
                     "(comparing different benches?)\n",
                     base.figure.c_str(), cur.figure.c_str());
        return 2;
    }

    std::map<std::string, const Row*> baseRows;
    for (const Row& r : base.rows) baseRows[rowKey(r)] = &r;

    std::printf("== %s: %s -> %s (threshold +%.0f%%) ==\n", base.figure.c_str(), basePath,
                curPath, thresholdPct);
    int regressions = 0, matched = 0;
    for (const Row& r : cur.rows) {
        auto it = baseRows.find(rowKey(r));
        if (it == baseRows.end()) {
            std::printf("  [new]  %-48s %12.0f ns\n", rowKey(r).c_str(), r.medianNs);
            continue;
        }
        const Row& b = *it->second;
        baseRows.erase(it);
        ++matched;
        // A zero baseline carries no signal (sub-resolution row): report
        // the delta but never gate on it.
        const double deltaPct = b.medianNs > 0 ? (r.medianNs / b.medianNs - 1.0) * 100.0 : 0.0;
        const bool regressed = deltaPct > thresholdPct;
        std::printf("  [%s] %-48s %12.0f -> %12.0f ns  (%+.1f%%)\n",
                    regressed ? "FAIL" : " ok ", rowKey(r).c_str(), b.medianNs, r.medianNs,
                    deltaPct);
        if (regressed) ++regressions;
    }
    for (const auto& [key, r] : baseRows) {
        std::printf("  [gone] %-48s %12.0f ns (row absent in current)\n", key.c_str(),
                    r->medianNs);
    }
    std::printf("%d rows matched, %d regression%s\n", matched, regressions,
                regressions == 1 ? "" : "s");
    return regressions ? 1 : 0;
}
