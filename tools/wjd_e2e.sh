#!/bin/sh
# End-to-end CLI scenarios for wjd / wjd_client / wjc build.
#
#   wjd_e2e.sh SCENARIO WJD WJD_CLIENT WJC EXAMPLES_DIR
#
# Scenarios:
#   basic    ping; cold compile (miss) then warm compile (hit); stats JSON
#            carries the wjd.* metrics; client-driven shutdown drains and
#            the daemon exits 0
#   bundle   wjc build writes {module.c, module.so, manifest.json}; a fresh
#            daemon preloading the bundle serves the FIRST compile of that
#            module as a cache hit (zero-compile cold start)
#   sigterm  SIGTERM drains: daemon exits 0 and removes its socket file
#
# Every scenario runs in a private scratch dir with a private compile cache
# so parallel ctest invocations cannot interfere.
set -e

SCENARIO=$1
WJD=$2
WJD_CLIENT=$3
WJC=$4
EXAMPLES=$5
[ -n "$EXAMPLES" ] || { echo "usage: wjd_e2e.sh SCENARIO WJD WJD_CLIENT WJC EXAMPLES" >&2; exit 2; }

SCRATCH=$(mktemp -d "${TMPDIR:-/tmp}/wjd_e2e.XXXXXX")
WJ_CACHE_DIR="$SCRATCH/cache"
export WJ_CACHE_DIR
# Short socket paths: sun_path is ~108 bytes.
SOCK="$SCRATCH/wjd.sock"
DAEMON_PID=

cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null
    rm -rf "$SCRATCH"
}
trap cleanup EXIT INT TERM

start_daemon() {
    "$WJD" --socket "$SOCK" --quiet "$@" &
    DAEMON_PID=$!
    # Wait until the socket answers (the daemon binds before it prints).
    i=0
    until "$WJD_CLIENT" --socket "$SOCK" ping >/dev/null 2>&1; do
        i=$((i + 1))
        [ $i -lt 100 ] || { echo "daemon never came up" >&2; exit 1; }
        sleep 0.1
    done
}

await_daemon_exit() {
    wait "$DAEMON_PID"
    rc=$?
    DAEMON_PID=
    return $rc
}

case "$SCENARIO" in
basic)
    start_daemon
    "$WJD_CLIENT" --socket "$SOCK" ping | grep -q pong

    out1=$("$WJD_CLIENT" --socket "$SOCK" compile "$EXAMPLES/pi.wj" \
        --new 'PiEstimator(HashSampler())' --method run 100)
    echo "$out1"
    echo "$out1" | grep -q 'cacheHit: false' || { echo "first compile should miss" >&2; exit 1; }
    path=$(echo "$out1" | sed -n 's/^path: *//p')
    [ -f "$path" ] || { echo "artifact $path missing" >&2; exit 1; }

    out2=$("$WJD_CLIENT" --socket "$SOCK" compile "$EXAMPLES/pi.wj" \
        --new 'PiEstimator(HashSampler())' --method run 100)
    echo "$out2" | grep -q 'cacheHit: true' || { echo "second compile should hit" >&2; exit 1; }

    stats=$("$WJD_CLIENT" --socket "$SOCK" stats)
    echo "$stats" | grep -q 'wjd.requests.total' || { echo "stats missing wjd metrics" >&2; exit 1; }
    echo "$stats" | grep -q 'wjd.compile.ok' || { echo "stats missing compile counters" >&2; exit 1; }

    # A broken module must come back as a typed error (exit 1), daemon up.
    printf 'class {' > "$SCRATCH/broken.wj"
    if "$WJD_CLIENT" --socket "$SOCK" compile "$SCRATCH/broken.wj" \
        --new 'X()' --method run 2> "$SCRATCH/err.txt"; then
        echo "broken module should fail" >&2; exit 1
    fi
    grep -q 'PARSE_ERROR' "$SCRATCH/err.txt" || { cat "$SCRATCH/err.txt" >&2; exit 1; }
    "$WJD_CLIENT" --socket "$SOCK" ping | grep -q pong

    "$WJD_CLIENT" --socket "$SOCK" shutdown | grep -q drained
    await_daemon_exit || { echo "daemon exit nonzero" >&2; exit 1; }
    ;;

bundle)
    "$WJC" build "$EXAMPLES/pi.wj" --new 'PiEstimator(HashSampler())' \
        --method run -o "$SCRATCH/bundle" 100
    for f in module.c module.so manifest.json; do
        [ -f "$SCRATCH/bundle/$f" ] || { echo "bundle missing $f" >&2; exit 1; }
    done
    grep -q '"key"' "$SCRATCH/bundle/manifest.json"

    # Fresh cache; the preloaded bundle must make the first compile a hit.
    WJ_CACHE_DIR="$SCRATCH/cache2"
    export WJ_CACHE_DIR
    start_daemon --bundles "$SCRATCH/bundle"
    out=$("$WJD_CLIENT" --socket "$SOCK" compile "$EXAMPLES/pi.wj" \
        --new 'PiEstimator(HashSampler())' --method run 100)
    echo "$out"
    echo "$out" | grep -q 'cacheHit: true' || { echo "bundled module should cold-start warm" >&2; exit 1; }
    "$WJD_CLIENT" --socket "$SOCK" shutdown >/dev/null
    await_daemon_exit
    ;;

sigterm)
    start_daemon
    kill -TERM "$DAEMON_PID"
    await_daemon_exit || { echo "daemon exit nonzero after SIGTERM" >&2; exit 1; }
    [ ! -e "$SOCK" ] || { echo "socket file left behind" >&2; exit 1; }
    ;;

*)
    echo "unknown scenario $SCENARIO" >&2
    exit 2
    ;;
esac
echo "wjd_e2e $SCENARIO: ok"
