// wjrun — the mpirun-analogue launcher for out-of-process MiniMPI worlds.
//
//   wjrun -np N [options] diffusion3d [steps]    builtin: 3-D diffusion on a
//                                                slab decomposition (nz = N
//                                                slabs of 24/N planes)
//   wjrun -np N [options] fox [nglobal]          builtin: Fox matmul on the
//                                                largest q*q <= N rank grid
//   wjrun -np N [options] PROG [ARGS...]         exec PROG with WJ_NP,
//                                                WJ_TRANSPORT, WJ_FAULT and
//                                                WJ_TRACE exported
// Options:
//   --transport proc|threads   address-space strategy (default proc; this
//                              IS the process launcher, but the threads
//                              fast path is one flag away for A/B runs)
//   --fault SPEC               arm the deterministic fault injector
//                              (WJ_FAULT grammar; on the proc transport a
//                              kill rule delivers a REAL SIGKILL)
//   --trace FILE               arm the span tracer; per-child span files
//                              are merged by rank into FILE at exit
//   --ckpt-dir DIR             durable on-disk checkpoints in DIR
//                              (fsync + atomic rename per generation)
//   --ckpt-interval K          save every K iterations (default 1)
//   --restart                  resume from the newest consistent on-disk
//                              generation in --ckpt-dir (ignores --fault)
//   --watchdog MS              stall-watchdog quantum (WJ_WATCHDOG_MS)
//
// The builtins print their checksum both as decimal and as raw IEEE bits,
// so scripts can assert bitwise-identical results across transports and
// across a SIGKILL + --restart cycle.
//
// Exit codes: 0 checksum ok, 1 execution failure (injected kill, dead
// child, checksum mismatch), 2 usage error.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "fault/checkpoint.h"
#include "fault/fault.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "stencil/stencil_lib.h"
#include "support/diagnostics.h"
#include "trace/trace.h"

using namespace wj;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: wjrun -np N [--transport proc|threads] [--fault SPEC]\n"
                 "             [--trace FILE] [--ckpt-dir DIR] [--ckpt-interval K]\n"
                 "             [--restart] [--watchdog MS] PROG [ARGS...]\n"
                 "builtin programs: diffusion3d [steps], fox [nglobal]\n");
    return 2;
}

struct Options {
    int np = 0;
    std::string transport = "proc";
    std::string fault;
    std::string trace;
    std::string ckptDir;
    int ckptInterval = 1;
    bool restart = false;
    std::string watchdog;
    std::vector<std::string> prog;  // program + its arguments
};

void printChecksum(const char* what, double sum, double expect, double relTol) {
    uint64_t bits = 0;
    std::memcpy(&bits, &sum, sizeof sum);
    const bool ok = std::abs(sum - expect) < std::abs(expect) * relTol + relTol;
    std::printf("%s checksum %.17g bits %016llx expect %.17g ok=%s\n", what, sum,
                static_cast<unsigned long long>(bits), expect, ok ? "yes" : "no");
    if (!ok) throw ExecError(std::string(what) + ": checksum mismatch");
}

/// Arms the on-disk checkpoint store (and resolves the restart generation)
/// according to the flags. Returns the resumed iteration, or -1.
long long armCheckpoints(const Options& o) {
    if (o.ckptDir.empty()) return -1;
    auto& ckpt = fault::CheckpointStore::instance();
    ckpt.armDisk(o.ckptDir, o.np, o.ckptInterval, /*keep=*/2, /*preserve=*/o.restart);
    if (!o.restart) return -1;
    const long long resume = static_cast<long long>(ckpt.resolve());
    std::printf("wjrun: restarting from checkpoint generation %lld in %s\n", resume,
                o.ckptDir.c_str());
    return resume;
}

int runDiffusion3d(const Options& o) {
    using namespace wj::stencil;
    const int steps = o.prog.size() > 1 ? std::atoi(o.prog[1].c_str()) : 4;
    if (steps <= 0) throw UsageError("diffusion3d: steps must be positive");
    const int nx = 24, ny = 24, seed = 7;
    const int nzLocal = std::max(1, 24 / o.np);
    const int nz = nzLocal * o.np;  // global depth grows with odd rank counts
    const auto coeffs = DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    const double expect = referenceDiffusion3D(nx, ny, nz, coeffs, seed, steps);

    Program prog = buildProgram();
    Interp in(prog);
    Value runner = makeMpiRunner(in, nx, ny, nzLocal, coeffs, seed);
    JitCode code = WootinJ::jit4mpi(prog, runner, "run", {Value::ofI32(steps)});
    code.set4MPI(o.np);

    armCheckpoints(o);
    std::printf("wjrun: diffusion3d %dx%dx%d, %d steps, %d ranks, transport=%s\n", nx, ny, nz,
                steps, o.np, o.transport.c_str());
    const Value r = code.invoke();
    printChecksum("diffusion3d", r.asF64(), expect, 1e-9);
    return 0;
}

int runFox(const Options& o) {
    using namespace wj::matmul;
    int q = 1;
    while ((q + 1) * (q + 1) <= o.np) ++q;
    const int ranks = q * q;
    const int seed = 11;
    const int requested = o.prog.size() > 1 ? std::atoi(o.prog[1].c_str()) : 48;
    if (requested <= 0) throw UsageError("fox: nglobal must be positive");
    const int nLocal = std::max(1, requested / q);
    const int n = nLocal * q;
    const double expect = referenceMatMulChecksum(n, seed, seed + 1);

    Program prog = buildProgram();
    Interp in(prog);
    Value app = makeMpiFoxApp(in, Calc::Optimized, q);
    JitCode code = WootinJ::jit4mpi(prog, app, "run", {Value::ofI32(nLocal), Value::ofI32(seed)});
    code.set4MPI(ranks);

    armCheckpoints(o);
    std::printf("wjrun: fox matmul %dx%d on a %dx%d grid (%d of %d ranks), transport=%s\n", n,
                n, q, q, ranks, o.np, o.transport.c_str());
    const Value r = code.invoke();
    // Float accumulation: same tolerance the example uses.
    printChecksum("fox", r.asF64(), expect, 1e-4);
    return 0;
}

int execChild(const Options& o) {
    setenv("WJ_NP", std::to_string(o.np).c_str(), 1);
    setenv("WJ_TRANSPORT", o.transport.c_str(), 1);
    if (!o.fault.empty()) setenv("WJ_FAULT", o.fault.c_str(), 1);
    if (!o.trace.empty()) setenv("WJ_TRACE", o.trace.c_str(), 1);
    std::vector<char*> argv;
    argv.reserve(o.prog.size() + 1);
    for (const std::string& a : o.prog) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    std::fprintf(stderr, "wjrun: cannot exec %s: %s\n", argv[0], std::strerror(errno));
    return 2;
}

int runMain(int argc, char** argv) {
    Options o;
    int i = 1;
    for (; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-np" && i + 1 < argc) o.np = std::atoi(argv[++i]);
        else if (a == "--transport" && i + 1 < argc) o.transport = argv[++i];
        else if (a == "--fault" && i + 1 < argc) o.fault = argv[++i];
        else if (a == "--trace" && i + 1 < argc) o.trace = argv[++i];
        else if (a == "--ckpt-dir" && i + 1 < argc) o.ckptDir = argv[++i];
        else if (a == "--ckpt-interval" && i + 1 < argc) o.ckptInterval = std::atoi(argv[++i]);
        else if (a == "--restart") o.restart = true;
        else if (a == "--watchdog" && i + 1 < argc) o.watchdog = argv[++i];
        else if (!a.empty() && a[0] == '-') return usage();
        else break;
    }
    for (; i < argc; ++i) o.prog.emplace_back(argv[i]);
    if (o.np <= 0 || o.prog.empty()) return usage();
    if (o.transport != "proc" && o.transport != "threads") {
        throw UsageError("--transport must be 'proc' or 'threads', got '" + o.transport + "'");
    }
    if (o.restart && o.ckptDir.empty()) {
        throw UsageError("--restart requires --ckpt-dir");
    }

    setenv("WJ_TRANSPORT", o.transport.c_str(), 1);
    if (!o.watchdog.empty()) setenv("WJ_WATCHDOG_MS", o.watchdog.c_str(), 1);

    if (o.prog[0] != "diffusion3d" && o.prog[0] != "fox") return execChild(o);

    // A restart resumes the unfaulted execution: the plan that killed the
    // previous attempt stays disarmed.
    if (!o.fault.empty() && !o.restart) {
        fault::FaultPlan::instance().configure(o.fault);
        std::fprintf(stderr, "wjrun: fault plan: %s\n",
                     fault::FaultPlan::instance().describe().c_str());
    }
    if (!o.trace.empty()) trace::Tracer::instance().enable(o.trace);

    // No tracer flush here: World::run already flushed at world exit and
    // (on the proc transport) merged the per-child span files by rank —
    // a second flush would overwrite the merge with parent-only spans.
    const int rc = o.prog[0] == "diffusion3d" ? runDiffusion3d(o) : runFox(o);
    if (!o.trace.empty()) {
        std::fprintf(stderr, "wjrun: trace written to %s\n", o.trace.c_str());
    }
    return rc;
}

} // namespace

int main(int argc, char** argv) {
    try {
        return runMain(argc, argv);
    } catch (const UsageError& e) {
        std::fprintf(stderr, "wjrun: %s\n", e.what());
        return 2;
    } catch (const WjError& e) {
        std::fprintf(stderr, "wjrun: %s\n", e.what());
        return 1;
    }
}
