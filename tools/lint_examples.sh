#!/bin/sh
# Lints every examples/*.wj and asserts the documented exit-code contract
# (wjc.cpp header): 0 clean or warnings-only, 1 defects, 2 usage/parse
# errors. New example files are picked up automatically; any file whose
# name starts with lint_bad is the seeded-defect fixture and must exit 1,
# everything else must lint clean.
#
# usage: lint_examples.sh <path-to-wjc> <examples-dir>
set -u
WJC="$1"
DIR="$2"
fail=0
found=0
for f in "$DIR"/*.wj; do
    [ -e "$f" ] || continue
    found=1
    "$WJC" lint "$f" > /dev/null 2>&1
    code=$?
    case "$(basename "$f")" in
    lint_bad*) want=1 ;;
    *) want=0 ;;
    esac
    if [ "$code" -ne "$want" ]; then
        echo "FAIL: wjc lint $f exited $code (want $want)"
        "$WJC" lint "$f" 2>&1 | sed 's/^/    /'
        fail=1
    else
        echo "ok: wjc lint $(basename "$f") -> $code"
    fi
done
if [ "$found" -eq 0 ]; then
    echo "FAIL: no .wj files found in $DIR"
    exit 1
fi
exit $fail
