// wjc — the WootinC command-line driver.
//
//   wjc check <file.wj>                  verify the Section 3.2 coding rules
//   wjc lint <file.wj> [--Werror] [--soa]
//                                        run the dataflow analyses (definite
//                                        assignment, bounds, halo races) and
//                                        print the per-loop parallel, simd,
//                                        and layout reports
//   wjc print <file.wj>                  reformat (parse + pretty-print)
//   wjc translate <file.wj> --new EXPR --method NAME [ARGS...]
//                                        print the generated C
//   wjc run <file.wj> --new EXPR --method NAME [--ranks N] [--threads N]
//                                        [ARGS...]
//                                        jit + invoke; prints the result
//   wjc trace <file.wj> ... (same flags as run)
//                                        run with the span tracer armed;
//                                        writes <file>.trace.json (Chrome
//                                        trace-event format, open in
//                                        Perfetto) + a .metrics.json sidecar
//   wjc cache [stats|dir|clear]          inspect / clear the compile cache
//   wjc build <file.wj> --new EXPR --method NAME -o DIR [ARGS...]
//                                        AOT mode: translate + compile and
//                                        write a deployable bundle (generated
//                                        C, compiled .so, manifest.json with
//                                        the compile-cache key) into DIR.
//                                        `wjd --bundles` preloads such
//                                        bundles into the shared cache for
//                                        zero-compile cold starts.
//
// translate/run accept --no-cache to bypass the persistent compile cache
// (equivalent to WJ_CACHE=0) — useful when timing the external compiler —
// and --fault SPEC to arm the deterministic fault injector (equivalent to
// WJ_FAULT=SPEC; grammar in src/fault/fault.h). --threads N turns on the
// analysis-proven parallel-for and parallel-reduce codegen (WJ_PARALLEL=1)
// and sizes the intra-rank worker pool (WJ_THREADS=N); results are
// bitwise-identical across every N (and bitwise-equal to the serial run
// for dependence-free loops and short reductions — see wjrt.h for the
// reduction determinism contract). --simd (WJ_SIMD=1) additionally emits
// `#pragma omp simd` for every loop the vectorization-legality prover
// cleared, with restrict-qualified pointer hoists and runtime overlap
// guards; the output stays bitwise-equal to the scalar translation.
// --trace FILE (run/trace) overrides the trace destination, equivalent to
// WJ_TRACE=FILE.
//
// EXPR is a composition expression, the textual form of Listing 2's main
// method: nested constructor calls with int/float/double literals, e.g.
//     --new 'PiEstimator(HashSampler())'
//     --new 'StencilCPU3DDblB(Dif3DSolver(), DiffusionQuantity(0.4f,0.1f,
//            0.1f,0.1f,0.1f,0.1f,0.1f), FloatGridDblB(8,8,8), 42)'
// Remaining ARGS are the entry-method arguments (int/long/float/double by
// suffix and form).
//
// Exit codes: 0 clean, 1 violations or execution failure, 2 usage or parse
// error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "fault/fault.h"
#include "frontend/composition.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "jit/cache.h"
#include "jit/jit.h"
#include "rules/rules.h"
#include "service/bundle.h"
#include "trace/trace.h"

using namespace wj;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage:\n"
                 "  wjc check <file.wj>\n"
                 "  wjc lint <file.wj> [--Werror] [--soa]\n"
                 "  wjc print <file.wj>\n"
                 "  wjc translate <file.wj> --new EXPR --method NAME [--no-cache]\n"
                 "                [--threads N] [--simd] [--soa] [--fault SPEC] [ARGS...]\n"
                 "  wjc run <file.wj> --new EXPR --method NAME [--ranks N] [--threads N]\n"
                 "                [--simd] [--soa] [--no-cache] [--fault SPEC] [--trace FILE]\n"
                 "                [--transport threads|proc] [ARGS...]\n"
                 "  wjc trace <file.wj> ...           (run with the span tracer armed)\n"
                 "  wjc build <file.wj> --new EXPR --method NAME -o DIR\n"
                 "                [--threads N] [--simd] [--soa] [ARGS...]\n"
                 "  wjc cache [stats|dir|clear]\n");
    return 2;
}

int cacheMain(int argc, char** argv) {
    const std::string sub = argc > 2 ? argv[2] : "stats";
    JitCache& cache = JitCache::instance();
    if (sub == "dir") {
        std::printf("%s\n", cache.dir().c_str());
        return 0;
    }
    if (sub == "clear") {
        cache.clearDisk();
        std::printf("cleared %s\n", cache.dir().c_str());
        return 0;
    }
    if (sub != "stats") return usage();
    size_t entries = 0;
    std::error_code ec;
    for (const auto& e : std::filesystem::directory_iterator(cache.dir(), ec)) {
        if (e.path().extension() == ".so") ++entries;
    }
    std::printf("dir:       %s\n", cache.dir().c_str());
    std::printf("enabled:   %s\n", cache.enabled() ? "yes" : "no (WJ_CACHE=0)");
    std::printf("entries:   %zu\n", entries);
    std::printf("bytes:     %llu of %llu max\n",
                static_cast<unsigned long long>(cache.diskBytes()),
                static_cast<unsigned long long>(cache.maxBytes()));
    return 0;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw UsageError("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void printResult(const Value& v) {
    if (v.isVoid()) std::printf("(void)\n");
    else if (v.isBool()) std::printf("%s\n", v.asBool() ? "true" : "false");
    else if (v.isI32()) std::printf("%d\n", v.asI32());
    else if (v.isI64()) std::printf("%lld\n", static_cast<long long>(v.asI64()));
    else if (v.isF32()) std::printf("%.9g\n", static_cast<double>(v.asF32()));
    else if (v.isF64()) std::printf("%.17g\n", v.asF64());
}

int runMain(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "cache") return cacheMain(argc, argv);
    if (argc < 3) return usage();
    const std::string path = argv[2];

    if (cmd == "check") {
        Program p = frontend::parseProgram(slurp(path));
        auto vs = verifyCodingRules(p);
        if (vs.empty()) {
            std::printf("%s: all @WootinJ classes satisfy the coding rules\n", path.c_str());
            return 0;
        }
        for (const auto& v : vs) std::printf("%s\n", v.str().c_str());
        return 1;
    }
    if (cmd == "lint") {
        bool werror = false;
        for (int i = 3; i < argc; ++i) {
            if (std::strcmp(argv[i], "--Werror") == 0) werror = true;
            // --soa sets WJ_SOA=1 for the analysis run, so the simd report
            // shows the verdicts the translator would see under the SoA
            // layout (element-path loops flip from "vectorizable under
            // --soa" to Vectorizable).
            else if (std::strcmp(argv[i], "--soa") == 0) setenv("WJ_SOA", "1", 1);
            else return usage();
        }
        Program p = frontend::parseProgram(slurp(path));
        analysis::Result r = analysis::lintProgram(p);
        for (const auto& v : r.errors) std::printf("error: %s\n", v.str().c_str());
        for (const auto& v : r.warnings)
            std::printf("%s: %s\n", werror ? "error" : "warning", v.str().c_str());
        // The per-loop verdicts of the dependence prover: which counted
        // loops the translator may fan out across the thread pool, and why
        // the rest stay serial. Informational — never affects the exit code.
        for (const auto& line : r.parallelReport) std::printf("parallel: %s\n", line.c_str());
        // Likewise the vectorization-legality verdicts (proveVectors): which
        // innermost loops --simd may emit as `#pragma omp simd`, which need a
        // runtime overlap guard, and why the rest stay scalar.
        for (const auto& line : r.vectorReport) std::printf("simd: %s\n", line.c_str());
        // And the AoS->SoA layout verdicts (proveLayout): which element
        // classes --soa may split into per-field lanes, and what use boxes
        // the rest.
        for (const auto& line : r.layoutReport) std::printf("layout: %s\n", line.c_str());
        const bool fail = !r.errors.empty() || (werror && !r.warnings.empty());
        if (!fail)
            std::printf("%s: %d array accesses proven safe, %d unproven; no defects found\n",
                        path.c_str(), r.safeAccesses, r.unknownAccesses);
        return fail ? 1 : 0;
    }
    if (cmd == "print") {
        Program p = frontend::parseProgram(slurp(path));
        std::fputs(printProgram(p).c_str(), stdout);
        return 0;
    }
    if (cmd != "translate" && cmd != "run" && cmd != "trace" && cmd != "build") return usage();

    std::string newExpr, method, traceOut, outDir;
    int ranks = 0;
    std::vector<Value> args;
    Program prog = frontend::parseProgram(slurp(path));
    Interp in(prog);
    for (int i = 3; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--new" && i + 1 < argc) newExpr = argv[++i];
        else if (a == "--method" && i + 1 < argc) method = argv[++i];
        else if (a == "--ranks" && i + 1 < argc) ranks = std::atoi(argv[++i]);
        else if (a == "--threads" && i + 1 < argc) {
            // Opting into threads opts into the parallel codegen too; the
            // translation is thread-count-independent, so the cache key only
            // changes with WJ_PARALLEL, not with N.
            setenv("WJ_THREADS", argv[++i], 1);
            setenv("WJ_PARALLEL", "1", 1);
        }
        else if (a == "--simd") {
            // WJ_SIMD=1: emit `#pragma omp simd` loops (with restrict
            // pointer hoists and runtime overlap guards) for every loop the
            // proveVectors pass cleared. Orthogonal to --threads; the
            // generated C stays thread-count independent either way.
            setenv("WJ_SIMD", "1", 1);
        }
        else if (a == "--soa") {
            // WJ_SOA=1: store arrays of Inline-verdict element classes
            // (proveLayout) as per-field lane regions. Composes with
            // --threads/--simd; results stay bitwise-identical.
            setenv("WJ_SOA", "1", 1);
        }
        else if (a == "--no-cache") setenv("WJ_CACHE", "0", 1);
        else if (a == "--transport" && i + 1 < argc) {
            // Address-space strategy for --ranks worlds: 'threads' (default)
            // or 'proc' (ranks as forked processes — see wjrun). A bad value
            // is a usage error (exit 2).
            const std::string t = argv[++i];
            if (t != "threads" && t != "proc") {
                throw UsageError("--transport must be 'threads' or 'proc', got '" + t + "'");
            }
            setenv("WJ_TRANSPORT", t.c_str(), 1);
        }
        else if (a == "--trace" && i + 1 < argc) traceOut = argv[++i];
        else if (a == "-o" && i + 1 < argc) outDir = argv[++i];
        else if (a == "--fault" && i + 1 < argc) {
            // Same grammar as WJ_FAULT; a malformed spec is a usage error
            // (exit 2), an injected fault during run is an execution
            // failure (exit 1).
            fault::FaultPlan::instance().configure(argv[++i]);
            std::fprintf(stderr, "wjc: fault plan: %s\n",
                         fault::FaultPlan::instance().describe().c_str());
        }
        else args.push_back(frontend::parseArgLiteral(a));
    }
    if (newExpr.empty() || method.empty()) return usage();
    if (cmd == "trace" && traceOut.empty()) {
        traceOut = std::filesystem::path(path).stem().string() + ".trace.json";
    }
    if (!traceOut.empty()) trace::Tracer::instance().enable(traceOut);

    Value receiver = frontend::parseComposition(in, newExpr);
    if (cmd == "build") {
        if (outDir.empty()) return usage();
        requireCodingRules(prog);
        Translation tr = translate(prog, receiver, method, args);
        const std::string tag =
            std::filesystem::path(path).stem().string() + "." + method;
        service::BundleInfo info = service::writeBundle(outDir, tr, tag);
        std::printf("bundle: %s\n", info.dir.c_str());
        std::printf("key:    %016llx\n", static_cast<unsigned long long>(info.key));
        std::printf("entry:  %s\n", info.entrySymbol.c_str());
        return 0;
    }
    JitCode code = ranks > 0 ? WootinJ::jit4mpi(prog, receiver, method, args)
                             : WootinJ::jit(prog, receiver, method, args);
    if (ranks > 0) code.set4MPI(ranks);

    if (cmd == "translate") {
        std::fputs(code.generatedC().c_str(), stdout);
        std::fprintf(stderr,
                     "// %lld specializations, %lld devirtualized calls, %lld kernels, "
                     "%lld parallel loops, %lld reduction loops, %lld vector loops, "
                     "%lld soa arrays\n",
                     static_cast<long long>(code.specializations()),
                     static_cast<long long>(code.devirtualizedCalls()),
                     static_cast<long long>(code.kernels()),
                     static_cast<long long>(code.parallelLoops()),
                     static_cast<long long>(code.reduceLoops()),
                     static_cast<long long>(code.vectorLoops()),
                     static_cast<long long>(code.soaArrays()));
        return 0;
    }
    Value result = code.invoke();
    printResult(result);
    if (!traceOut.empty() && trace::Tracer::instance().flush()) {
        std::fprintf(stderr, "wjc: trace written to %s (+ %s.metrics.json)\n",
                     traceOut.c_str(), traceOut.c_str());
    }
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    try {
        return runMain(argc, argv);
    } catch (const RuleViolationError& e) {
        std::fprintf(stderr, "coding-rule violations:\n%s\n", e.what());
        return 1;
    } catch (const AnalysisError& e) {
        std::fprintf(stderr, "analysis errors:\n%s\n", e.what());
        return 1;
    } catch (const UsageError& e) {
        // Bad CLI input or a .wj parse error — distinct from a program that
        // parsed fine but has defects (exit 1).
        std::fprintf(stderr, "wjc: %s\n", e.what());
        return 2;
    } catch (const WjError& e) {
        std::fprintf(stderr, "wjc: %s\n", e.what());
        return 1;
    }
}
