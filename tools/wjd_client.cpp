// wjd_client — command-line client for a running wjd.
//
//   wjd_client --socket PATH compile <file.wj> --new EXPR --method NAME
//              [ARGS...]                submit a module; prints the cache
//                                       key and artifact path
//   wjd_client --socket PATH ping      liveness probe
//   wjd_client --socket PATH stats     dump the daemon's metrics JSON
//   wjd_client --socket PATH shutdown  drain and stop the daemon
//
// Exit codes: 0 ok, 1 the daemon answered with a typed error (the code
// name and message are printed to stderr), 2 usage / connection error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "service/client.h"
#include "support/diagnostics.h"

using namespace wj;

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage:\n"
                 "  wjd_client --socket PATH compile <file.wj> --new EXPR --method NAME"
                 " [ARGS...]\n"
                 "  wjd_client --socket PATH ping|stats|shutdown\n");
    return 2;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw UsageError("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

int report(const service::Client::Reply& r) {
    if (r.ok) return 0;
    std::fprintf(stderr, "wjd_client: %s: %s\n", r.name.c_str(), r.message.c_str());
    return 1;
}

} // namespace

int main(int argc, char** argv) {
    try {
        std::string socketPath, cmd, file, newExpr, method, argsLine;
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--socket" && i + 1 < argc) socketPath = argv[++i];
            else if (a == "--new" && i + 1 < argc) newExpr = argv[++i];
            else if (a == "--method" && i + 1 < argc) method = argv[++i];
            else if (cmd.empty()) cmd = a;
            else if (cmd == "compile" && file.empty()) file = a;
            else if (cmd == "compile") {
                if (!argsLine.empty()) argsLine += ' ';
                argsLine += a;
            } else return usage();
        }
        if (socketPath.empty() || cmd.empty()) return usage();

        service::Client client;
        client.connect(socketPath);
        if (cmd == "ping") {
            const auto r = client.ping();
            if (r.ok) std::printf("pong\n");
            return report(r);
        }
        if (cmd == "stats") {
            const auto r = client.stats();
            if (r.ok) std::fputs(r.statsJson.c_str(), stdout);
            return report(r);
        }
        if (cmd == "shutdown") {
            const auto r = client.shutdown();
            if (r.ok) std::printf("drained\n");
            return report(r);
        }
        if (cmd != "compile" || file.empty() || newExpr.empty() || method.empty()) {
            return usage();
        }
        const auto r = client.compile(slurp(file), newExpr, method, argsLine);
        if (r.ok) {
            std::printf("key:      %s\n", r.keyHex.c_str());
            std::printf("path:     %s\n", r.path.c_str());
            std::printf("cacheHit: %s\n", r.cacheHit ? "true" : "false");
            std::printf("attempts: %d\n", r.attempts);
        }
        return report(r);
    } catch (const WjError& e) {
        std::fprintf(stderr, "wjd_client: %s\n", e.what());
        return 2;
    }
}
