# Empty compiler generated dependencies file for wj_interp.
# This may be replaced when dependencies are built.
