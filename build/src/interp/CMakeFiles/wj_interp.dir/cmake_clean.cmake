file(REMOVE_RECURSE
  "CMakeFiles/wj_interp.dir/interp.cpp.o"
  "CMakeFiles/wj_interp.dir/interp.cpp.o.d"
  "CMakeFiles/wj_interp.dir/value.cpp.o"
  "CMakeFiles/wj_interp.dir/value.cpp.o.d"
  "libwj_interp.a"
  "libwj_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
