file(REMOVE_RECURSE
  "libwj_interp.a"
)
