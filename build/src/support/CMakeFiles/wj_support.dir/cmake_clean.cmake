file(REMOVE_RECURSE
  "CMakeFiles/wj_support.dir/diagnostics.cpp.o"
  "CMakeFiles/wj_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/wj_support.dir/prng.cpp.o"
  "CMakeFiles/wj_support.dir/prng.cpp.o.d"
  "CMakeFiles/wj_support.dir/strings.cpp.o"
  "CMakeFiles/wj_support.dir/strings.cpp.o.d"
  "CMakeFiles/wj_support.dir/timer.cpp.o"
  "CMakeFiles/wj_support.dir/timer.cpp.o.d"
  "libwj_support.a"
  "libwj_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
