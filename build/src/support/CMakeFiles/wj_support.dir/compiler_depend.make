# Empty compiler generated dependencies file for wj_support.
# This may be replaced when dependencies are built.
