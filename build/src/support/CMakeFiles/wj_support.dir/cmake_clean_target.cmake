file(REMOVE_RECURSE
  "libwj_support.a"
)
