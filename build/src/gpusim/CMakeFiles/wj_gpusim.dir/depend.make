# Empty dependencies file for wj_gpusim.
# This may be replaced when dependencies are built.
