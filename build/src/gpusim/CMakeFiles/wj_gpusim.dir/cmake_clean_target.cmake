file(REMOVE_RECURSE
  "libwj_gpusim.a"
)
