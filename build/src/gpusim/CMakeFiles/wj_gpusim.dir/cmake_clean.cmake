file(REMOVE_RECURSE
  "CMakeFiles/wj_gpusim.dir/gpusim.cpp.o"
  "CMakeFiles/wj_gpusim.dir/gpusim.cpp.o.d"
  "libwj_gpusim.a"
  "libwj_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
