file(REMOVE_RECURSE
  "CMakeFiles/wj_stencil.dir/stencil_lib.cpp.o"
  "CMakeFiles/wj_stencil.dir/stencil_lib.cpp.o.d"
  "libwj_stencil.a"
  "libwj_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
