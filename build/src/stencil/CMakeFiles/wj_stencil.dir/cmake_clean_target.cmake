file(REMOVE_RECURSE
  "libwj_stencil.a"
)
