# Empty dependencies file for wj_stencil.
# This may be replaced when dependencies are built.
