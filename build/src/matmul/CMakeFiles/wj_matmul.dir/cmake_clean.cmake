file(REMOVE_RECURSE
  "CMakeFiles/wj_matmul.dir/matmul_lib.cpp.o"
  "CMakeFiles/wj_matmul.dir/matmul_lib.cpp.o.d"
  "libwj_matmul.a"
  "libwj_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
