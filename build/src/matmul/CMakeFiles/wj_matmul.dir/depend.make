# Empty dependencies file for wj_matmul.
# This may be replaced when dependencies are built.
