file(REMOVE_RECURSE
  "libwj_matmul.a"
)
