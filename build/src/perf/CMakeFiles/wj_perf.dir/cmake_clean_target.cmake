file(REMOVE_RECURSE
  "libwj_perf.a"
)
