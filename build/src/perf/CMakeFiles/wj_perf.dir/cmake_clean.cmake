file(REMOVE_RECURSE
  "CMakeFiles/wj_perf.dir/perfmodel.cpp.o"
  "CMakeFiles/wj_perf.dir/perfmodel.cpp.o.d"
  "libwj_perf.a"
  "libwj_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
