# Empty compiler generated dependencies file for wj_perf.
# This may be replaced when dependencies are built.
