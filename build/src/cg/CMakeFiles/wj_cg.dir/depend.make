# Empty dependencies file for wj_cg.
# This may be replaced when dependencies are built.
