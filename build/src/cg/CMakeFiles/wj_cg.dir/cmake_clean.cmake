file(REMOVE_RECURSE
  "CMakeFiles/wj_cg.dir/cg_lib.cpp.o"
  "CMakeFiles/wj_cg.dir/cg_lib.cpp.o.d"
  "libwj_cg.a"
  "libwj_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
