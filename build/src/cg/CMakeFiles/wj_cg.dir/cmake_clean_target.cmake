file(REMOVE_RECURSE
  "libwj_cg.a"
)
