# Empty compiler generated dependencies file for wj_baselines.
# This may be replaced when dependencies are built.
