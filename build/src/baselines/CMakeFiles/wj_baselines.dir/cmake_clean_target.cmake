file(REMOVE_RECURSE
  "libwj_baselines.a"
)
