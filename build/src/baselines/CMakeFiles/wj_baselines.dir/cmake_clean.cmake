file(REMOVE_RECURSE
  "CMakeFiles/wj_baselines.dir/diffusion_baselines.cpp.o"
  "CMakeFiles/wj_baselines.dir/diffusion_baselines.cpp.o.d"
  "CMakeFiles/wj_baselines.dir/matmul_baselines.cpp.o"
  "CMakeFiles/wj_baselines.dir/matmul_baselines.cpp.o.d"
  "libwj_baselines.a"
  "libwj_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
