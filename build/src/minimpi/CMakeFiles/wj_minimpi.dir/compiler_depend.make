# Empty compiler generated dependencies file for wj_minimpi.
# This may be replaced when dependencies are built.
