file(REMOVE_RECURSE
  "CMakeFiles/wj_minimpi.dir/minimpi.cpp.o"
  "CMakeFiles/wj_minimpi.dir/minimpi.cpp.o.d"
  "libwj_minimpi.a"
  "libwj_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
