file(REMOVE_RECURSE
  "libwj_minimpi.a"
)
