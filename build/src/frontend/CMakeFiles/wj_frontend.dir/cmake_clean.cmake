file(REMOVE_RECURSE
  "CMakeFiles/wj_frontend.dir/lexer.cpp.o"
  "CMakeFiles/wj_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/wj_frontend.dir/parser.cpp.o"
  "CMakeFiles/wj_frontend.dir/parser.cpp.o.d"
  "libwj_frontend.a"
  "libwj_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
