# Empty compiler generated dependencies file for wj_frontend.
# This may be replaced when dependencies are built.
