file(REMOVE_RECURSE
  "libwj_frontend.a"
)
