file(REMOVE_RECURSE
  "CMakeFiles/wj_rules.dir/rules.cpp.o"
  "CMakeFiles/wj_rules.dir/rules.cpp.o.d"
  "libwj_rules.a"
  "libwj_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
