file(REMOVE_RECURSE
  "libwj_rules.a"
)
