# Empty compiler generated dependencies file for wj_rules.
# This may be replaced when dependencies are built.
