# Empty dependencies file for wj_ir.
# This may be replaced when dependencies are built.
