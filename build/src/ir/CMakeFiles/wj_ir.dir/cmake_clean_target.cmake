file(REMOVE_RECURSE
  "libwj_ir.a"
)
