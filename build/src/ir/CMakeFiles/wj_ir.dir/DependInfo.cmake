
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/ast.cpp" "src/ir/CMakeFiles/wj_ir.dir/ast.cpp.o" "gcc" "src/ir/CMakeFiles/wj_ir.dir/ast.cpp.o.d"
  "/root/repo/src/ir/builder.cpp" "src/ir/CMakeFiles/wj_ir.dir/builder.cpp.o" "gcc" "src/ir/CMakeFiles/wj_ir.dir/builder.cpp.o.d"
  "/root/repo/src/ir/intrinsics.cpp" "src/ir/CMakeFiles/wj_ir.dir/intrinsics.cpp.o" "gcc" "src/ir/CMakeFiles/wj_ir.dir/intrinsics.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/ir/CMakeFiles/wj_ir.dir/printer.cpp.o" "gcc" "src/ir/CMakeFiles/wj_ir.dir/printer.cpp.o.d"
  "/root/repo/src/ir/program.cpp" "src/ir/CMakeFiles/wj_ir.dir/program.cpp.o" "gcc" "src/ir/CMakeFiles/wj_ir.dir/program.cpp.o.d"
  "/root/repo/src/ir/type.cpp" "src/ir/CMakeFiles/wj_ir.dir/type.cpp.o" "gcc" "src/ir/CMakeFiles/wj_ir.dir/type.cpp.o.d"
  "/root/repo/src/ir/typecheck.cpp" "src/ir/CMakeFiles/wj_ir.dir/typecheck.cpp.o" "gcc" "src/ir/CMakeFiles/wj_ir.dir/typecheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/wj_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
