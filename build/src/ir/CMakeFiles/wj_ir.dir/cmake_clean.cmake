file(REMOVE_RECURSE
  "CMakeFiles/wj_ir.dir/ast.cpp.o"
  "CMakeFiles/wj_ir.dir/ast.cpp.o.d"
  "CMakeFiles/wj_ir.dir/builder.cpp.o"
  "CMakeFiles/wj_ir.dir/builder.cpp.o.d"
  "CMakeFiles/wj_ir.dir/intrinsics.cpp.o"
  "CMakeFiles/wj_ir.dir/intrinsics.cpp.o.d"
  "CMakeFiles/wj_ir.dir/printer.cpp.o"
  "CMakeFiles/wj_ir.dir/printer.cpp.o.d"
  "CMakeFiles/wj_ir.dir/program.cpp.o"
  "CMakeFiles/wj_ir.dir/program.cpp.o.d"
  "CMakeFiles/wj_ir.dir/type.cpp.o"
  "CMakeFiles/wj_ir.dir/type.cpp.o.d"
  "CMakeFiles/wj_ir.dir/typecheck.cpp.o"
  "CMakeFiles/wj_ir.dir/typecheck.cpp.o.d"
  "libwj_ir.a"
  "libwj_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
