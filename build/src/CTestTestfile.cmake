# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("frontend")
subdirs("rules")
subdirs("interp")
subdirs("minimpi")
subdirs("gpusim")
subdirs("runtime")
subdirs("jit")
subdirs("perf")
subdirs("stencil")
subdirs("matmul")
subdirs("cg")
subdirs("baselines")
