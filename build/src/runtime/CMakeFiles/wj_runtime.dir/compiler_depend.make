# Empty compiler generated dependencies file for wj_runtime.
# This may be replaced when dependencies are built.
