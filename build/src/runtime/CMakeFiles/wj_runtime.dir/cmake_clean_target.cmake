file(REMOVE_RECURSE
  "libwj_runtime.a"
)
