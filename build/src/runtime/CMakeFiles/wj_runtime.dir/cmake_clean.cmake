file(REMOVE_RECURSE
  "CMakeFiles/wj_runtime.dir/wjrt.cpp.o"
  "CMakeFiles/wj_runtime.dir/wjrt.cpp.o.d"
  "libwj_runtime.a"
  "libwj_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
