# Empty compiler generated dependencies file for wj_jit.
# This may be replaced when dependencies are built.
