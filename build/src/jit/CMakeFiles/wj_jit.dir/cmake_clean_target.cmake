file(REMOVE_RECURSE
  "libwj_jit.a"
)
