
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jit/codegen.cpp" "src/jit/CMakeFiles/wj_jit.dir/codegen.cpp.o" "gcc" "src/jit/CMakeFiles/wj_jit.dir/codegen.cpp.o.d"
  "/root/repo/src/jit/compile.cpp" "src/jit/CMakeFiles/wj_jit.dir/compile.cpp.o" "gcc" "src/jit/CMakeFiles/wj_jit.dir/compile.cpp.o.d"
  "/root/repo/src/jit/jit.cpp" "src/jit/CMakeFiles/wj_jit.dir/jit.cpp.o" "gcc" "src/jit/CMakeFiles/wj_jit.dir/jit.cpp.o.d"
  "/root/repo/src/jit/shape.cpp" "src/jit/CMakeFiles/wj_jit.dir/shape.cpp.o" "gcc" "src/jit/CMakeFiles/wj_jit.dir/shape.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/wj_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/wj_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/wj_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/wj_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/wj_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/wj_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/wj_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
