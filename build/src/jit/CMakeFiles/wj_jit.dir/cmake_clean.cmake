file(REMOVE_RECURSE
  "CMakeFiles/wj_jit.dir/codegen.cpp.o"
  "CMakeFiles/wj_jit.dir/codegen.cpp.o.d"
  "CMakeFiles/wj_jit.dir/compile.cpp.o"
  "CMakeFiles/wj_jit.dir/compile.cpp.o.d"
  "CMakeFiles/wj_jit.dir/jit.cpp.o"
  "CMakeFiles/wj_jit.dir/jit.cpp.o.d"
  "CMakeFiles/wj_jit.dir/shape.cpp.o"
  "CMakeFiles/wj_jit.dir/shape.cpp.o.d"
  "libwj_jit.a"
  "libwj_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
