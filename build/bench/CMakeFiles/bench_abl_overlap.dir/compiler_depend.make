# Empty compiler generated dependencies file for bench_abl_overlap.
# This may be replaced when dependencies are built.
