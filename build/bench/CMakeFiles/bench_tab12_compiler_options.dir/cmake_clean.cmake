file(REMOVE_RECURSE
  "CMakeFiles/bench_tab12_compiler_options.dir/bench_tab12_compiler_options.cpp.o"
  "CMakeFiles/bench_tab12_compiler_options.dir/bench_tab12_compiler_options.cpp.o.d"
  "bench_tab12_compiler_options"
  "bench_tab12_compiler_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab12_compiler_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
