# Empty dependencies file for bench_tab12_compiler_options.
# This may be replaced when dependencies are built.
