# Empty dependencies file for bench_fig10_matmul_strong_cpu.
# This may be replaced when dependencies are built.
