# Empty dependencies file for bench_fig09_matmul_weak_cpu.
# This may be replaced when dependencies are built.
