file(REMOVE_RECURSE
  "CMakeFiles/wj_benchsupport.dir/common.cpp.o"
  "CMakeFiles/wj_benchsupport.dir/common.cpp.o.d"
  "libwj_benchsupport.a"
  "libwj_benchsupport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_benchsupport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
