file(REMOVE_RECURSE
  "libwj_benchsupport.a"
)
