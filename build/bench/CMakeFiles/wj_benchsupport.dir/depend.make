# Empty dependencies file for wj_benchsupport.
# This may be replaced when dependencies are built.
