# Empty dependencies file for bench_fig11_matmul_weak_gpu.
# This may be replaced when dependencies are built.
