# Empty compiler generated dependencies file for bench_abl_cc_opt.
# This may be replaced when dependencies are built.
