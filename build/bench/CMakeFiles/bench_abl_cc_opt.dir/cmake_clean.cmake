file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_cc_opt.dir/bench_abl_cc_opt.cpp.o"
  "CMakeFiles/bench_abl_cc_opt.dir/bench_abl_cc_opt.cpp.o.d"
  "bench_abl_cc_opt"
  "bench_abl_cc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_cc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
