file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_diffusion_strong_cpu.dir/bench_fig05_diffusion_strong_cpu.cpp.o"
  "CMakeFiles/bench_fig05_diffusion_strong_cpu.dir/bench_fig05_diffusion_strong_cpu.cpp.o.d"
  "bench_fig05_diffusion_strong_cpu"
  "bench_fig05_diffusion_strong_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_diffusion_strong_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
