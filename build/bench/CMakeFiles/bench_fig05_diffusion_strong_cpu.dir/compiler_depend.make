# Empty compiler generated dependencies file for bench_fig05_diffusion_strong_cpu.
# This may be replaced when dependencies are built.
