file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_16_strong_excl_compile.dir/bench_fig13_16_strong_excl_compile.cpp.o"
  "CMakeFiles/bench_fig13_16_strong_excl_compile.dir/bench_fig13_16_strong_excl_compile.cpp.o.d"
  "bench_fig13_16_strong_excl_compile"
  "bench_fig13_16_strong_excl_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_16_strong_excl_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
