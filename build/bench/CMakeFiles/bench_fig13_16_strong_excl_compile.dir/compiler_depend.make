# Empty compiler generated dependencies file for bench_fig13_16_strong_excl_compile.
# This may be replaced when dependencies are built.
