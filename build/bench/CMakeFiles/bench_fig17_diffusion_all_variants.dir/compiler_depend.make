# Empty compiler generated dependencies file for bench_fig17_diffusion_all_variants.
# This may be replaced when dependencies are built.
