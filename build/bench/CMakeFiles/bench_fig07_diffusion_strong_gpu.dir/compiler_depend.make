# Empty compiler generated dependencies file for bench_fig07_diffusion_strong_gpu.
# This may be replaced when dependencies are built.
