file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_diffusion_strong_gpu.dir/bench_fig07_diffusion_strong_gpu.cpp.o"
  "CMakeFiles/bench_fig07_diffusion_strong_gpu.dir/bench_fig07_diffusion_strong_gpu.cpp.o.d"
  "bench_fig07_diffusion_strong_gpu"
  "bench_fig07_diffusion_strong_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_diffusion_strong_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
