# Empty compiler generated dependencies file for bench_fig12_matmul_strong_gpu.
# This may be replaced when dependencies are built.
