# Empty compiler generated dependencies file for bench_fig18_matmul_all_variants.
# This may be replaced when dependencies are built.
