# Empty compiler generated dependencies file for bench_abl_boxing.
# This may be replaced when dependencies are built.
