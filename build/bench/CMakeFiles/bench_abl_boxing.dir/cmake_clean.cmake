file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_boxing.dir/bench_abl_boxing.cpp.o"
  "CMakeFiles/bench_abl_boxing.dir/bench_abl_boxing.cpp.o.d"
  "bench_abl_boxing"
  "bench_abl_boxing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_boxing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
