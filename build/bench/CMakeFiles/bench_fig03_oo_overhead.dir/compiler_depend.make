# Empty compiler generated dependencies file for bench_fig03_oo_overhead.
# This may be replaced when dependencies are built.
