file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_diffusion_weak_cpu.dir/bench_fig04_diffusion_weak_cpu.cpp.o"
  "CMakeFiles/bench_fig04_diffusion_weak_cpu.dir/bench_fig04_diffusion_weak_cpu.cpp.o.d"
  "bench_fig04_diffusion_weak_cpu"
  "bench_fig04_diffusion_weak_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_diffusion_weak_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
