# Empty compiler generated dependencies file for bench_fig04_diffusion_weak_cpu.
# This may be replaced when dependencies are built.
