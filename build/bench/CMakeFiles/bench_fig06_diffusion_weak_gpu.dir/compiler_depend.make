# Empty compiler generated dependencies file for bench_fig06_diffusion_weak_gpu.
# This may be replaced when dependencies are built.
