file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_diffusion_weak_gpu.dir/bench_fig06_diffusion_weak_gpu.cpp.o"
  "CMakeFiles/bench_fig06_diffusion_weak_gpu.dir/bench_fig06_diffusion_weak_gpu.cpp.o.d"
  "bench_fig06_diffusion_weak_gpu"
  "bench_fig06_diffusion_weak_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_diffusion_weak_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
