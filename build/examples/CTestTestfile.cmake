# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_diffusion3d "/root/repo/build/examples/diffusion3d")
set_tests_properties(example_diffusion3d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matmul_fox "/root/repo/build/examples/matmul_fox")
set_tests_properties(example_matmul_fox PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat1d "/root/repo/build/examples/heat1d")
set_tests_properties(example_heat1d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cg_solver "/root/repo/build/examples/cg_solver")
set_tests_properties(example_cg_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dump_translation "/root/repo/build/examples/dump_translation")
set_tests_properties(example_dump_translation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wj_source "/root/repo/build/examples/wj_source")
set_tests_properties(example_wj_source PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
