file(REMOVE_RECURSE
  "CMakeFiles/matmul_fox.dir/matmul_fox.cpp.o"
  "CMakeFiles/matmul_fox.dir/matmul_fox.cpp.o.d"
  "matmul_fox"
  "matmul_fox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_fox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
