# Empty dependencies file for matmul_fox.
# This may be replaced when dependencies are built.
