file(REMOVE_RECURSE
  "CMakeFiles/diffusion3d.dir/diffusion3d.cpp.o"
  "CMakeFiles/diffusion3d.dir/diffusion3d.cpp.o.d"
  "diffusion3d"
  "diffusion3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffusion3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
