# Empty dependencies file for diffusion3d.
# This may be replaced when dependencies are built.
