# Empty compiler generated dependencies file for wj_source.
# This may be replaced when dependencies are built.
