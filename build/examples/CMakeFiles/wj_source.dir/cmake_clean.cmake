file(REMOVE_RECURSE
  "CMakeFiles/wj_source.dir/wj_source.cpp.o"
  "CMakeFiles/wj_source.dir/wj_source.cpp.o.d"
  "wj_source"
  "wj_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wj_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
