file(REMOVE_RECURSE
  "CMakeFiles/dump_translation.dir/dump_translation.cpp.o"
  "CMakeFiles/dump_translation.dir/dump_translation.cpp.o.d"
  "dump_translation"
  "dump_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
