# Empty compiler generated dependencies file for dump_translation.
# This may be replaced when dependencies are built.
