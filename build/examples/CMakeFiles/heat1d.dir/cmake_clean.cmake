file(REMOVE_RECURSE
  "CMakeFiles/heat1d.dir/heat1d.cpp.o"
  "CMakeFiles/heat1d.dir/heat1d.cpp.o.d"
  "heat1d"
  "heat1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
