# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(wjc_check_good "/root/repo/build/tools/wjc" "check" "/root/repo/examples/pi.wj")
set_tests_properties(wjc_check_good PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wjc_check_bad "/root/repo/build/tools/wjc" "check" "/root/repo/examples/bad_rules.wj")
set_tests_properties(wjc_check_bad PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wjc_print_roundtrips "/root/repo/build/tools/wjc" "print" "/root/repo/examples/pi.wj")
set_tests_properties(wjc_print_roundtrips PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wjc_run_pi "/root/repo/build/tools/wjc" "run" "/root/repo/examples/pi.wj" "--new" "PiEstimator(HashSampler())" "--method" "run" "--ranks" "2" "20000")
set_tests_properties(wjc_run_pi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wjc_translate_pi "/root/repo/build/tools/wjc" "translate" "/root/repo/examples/pi.wj" "--new" "PiEstimator(HashSampler())" "--method" "run" "10")
set_tests_properties(wjc_translate_pi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(wjc_usage_error "/root/repo/build/tools/wjc")
set_tests_properties(wjc_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
