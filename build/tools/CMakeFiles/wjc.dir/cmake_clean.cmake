file(REMOVE_RECURSE
  "CMakeFiles/wjc.dir/wjc.cpp.o"
  "CMakeFiles/wjc.dir/wjc.cpp.o.d"
  "wjc"
  "wjc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wjc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
