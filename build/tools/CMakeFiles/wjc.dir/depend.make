# Empty dependencies file for wjc.
# This may be replaced when dependencies are built.
