# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_jit_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_stencil_lib[1]_include.cmake")
include("/root/repo/build/tests/test_matmul_lib[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_rules[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_minimpi[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_jit_translator[1]_include.cmake")
include("/root/repo/build/tests/test_perf_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_codegen_edge[1]_include.cmake")
include("/root/repo/build/tests/test_differential_random[1]_include.cmake")
include("/root/repo/build/tests/test_cg_lib[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_differential_oo[1]_include.cmake")
include("/root/repo/build/tests/test_paper_listings[1]_include.cmake")
