# Empty dependencies file for test_jit_translator.
# This may be replaced when dependencies are built.
