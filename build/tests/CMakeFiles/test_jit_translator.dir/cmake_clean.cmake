file(REMOVE_RECURSE
  "CMakeFiles/test_jit_translator.dir/test_jit_translator.cpp.o"
  "CMakeFiles/test_jit_translator.dir/test_jit_translator.cpp.o.d"
  "test_jit_translator"
  "test_jit_translator.pdb"
  "test_jit_translator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jit_translator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
