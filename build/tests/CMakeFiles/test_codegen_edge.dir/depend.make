# Empty dependencies file for test_codegen_edge.
# This may be replaced when dependencies are built.
