file(REMOVE_RECURSE
  "CMakeFiles/test_codegen_edge.dir/test_codegen_edge.cpp.o"
  "CMakeFiles/test_codegen_edge.dir/test_codegen_edge.cpp.o.d"
  "test_codegen_edge"
  "test_codegen_edge.pdb"
  "test_codegen_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codegen_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
