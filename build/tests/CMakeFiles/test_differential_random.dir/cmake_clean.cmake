file(REMOVE_RECURSE
  "CMakeFiles/test_differential_random.dir/test_differential_random.cpp.o"
  "CMakeFiles/test_differential_random.dir/test_differential_random.cpp.o.d"
  "test_differential_random"
  "test_differential_random.pdb"
  "test_differential_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_differential_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
