# Empty compiler generated dependencies file for test_differential_random.
# This may be replaced when dependencies are built.
