file(REMOVE_RECURSE
  "CMakeFiles/test_cg_lib.dir/test_cg_lib.cpp.o"
  "CMakeFiles/test_cg_lib.dir/test_cg_lib.cpp.o.d"
  "test_cg_lib"
  "test_cg_lib.pdb"
  "test_cg_lib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cg_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
