# Empty compiler generated dependencies file for test_cg_lib.
# This may be replaced when dependencies are built.
