file(REMOVE_RECURSE
  "CMakeFiles/test_perf_runtime.dir/test_perf_runtime.cpp.o"
  "CMakeFiles/test_perf_runtime.dir/test_perf_runtime.cpp.o.d"
  "test_perf_runtime"
  "test_perf_runtime.pdb"
  "test_perf_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
