# Empty compiler generated dependencies file for test_perf_runtime.
# This may be replaced when dependencies are built.
