# Empty dependencies file for test_matmul_lib.
# This may be replaced when dependencies are built.
