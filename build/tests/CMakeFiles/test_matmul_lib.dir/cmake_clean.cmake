file(REMOVE_RECURSE
  "CMakeFiles/test_matmul_lib.dir/test_matmul_lib.cpp.o"
  "CMakeFiles/test_matmul_lib.dir/test_matmul_lib.cpp.o.d"
  "test_matmul_lib"
  "test_matmul_lib.pdb"
  "test_matmul_lib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matmul_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
