file(REMOVE_RECURSE
  "CMakeFiles/test_jit_smoke.dir/test_jit_smoke.cpp.o"
  "CMakeFiles/test_jit_smoke.dir/test_jit_smoke.cpp.o.d"
  "test_jit_smoke"
  "test_jit_smoke.pdb"
  "test_jit_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jit_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
