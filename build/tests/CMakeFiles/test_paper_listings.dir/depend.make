# Empty dependencies file for test_paper_listings.
# This may be replaced when dependencies are built.
