file(REMOVE_RECURSE
  "CMakeFiles/test_paper_listings.dir/test_paper_listings.cpp.o"
  "CMakeFiles/test_paper_listings.dir/test_paper_listings.cpp.o.d"
  "test_paper_listings"
  "test_paper_listings.pdb"
  "test_paper_listings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_listings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
