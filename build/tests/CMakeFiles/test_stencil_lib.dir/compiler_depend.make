# Empty compiler generated dependencies file for test_stencil_lib.
# This may be replaced when dependencies are built.
