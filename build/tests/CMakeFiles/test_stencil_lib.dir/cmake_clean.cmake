file(REMOVE_RECURSE
  "CMakeFiles/test_stencil_lib.dir/test_stencil_lib.cpp.o"
  "CMakeFiles/test_stencil_lib.dir/test_stencil_lib.cpp.o.d"
  "test_stencil_lib"
  "test_stencil_lib.pdb"
  "test_stencil_lib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stencil_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
