# Empty compiler generated dependencies file for test_differential_oo.
# This may be replaced when dependencies are built.
