file(REMOVE_RECURSE
  "CMakeFiles/test_differential_oo.dir/test_differential_oo.cpp.o"
  "CMakeFiles/test_differential_oo.dir/test_differential_oo.cpp.o.d"
  "test_differential_oo"
  "test_differential_oo.pdb"
  "test_differential_oo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_differential_oo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
