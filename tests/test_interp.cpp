// Interpreter ("JVM") semantics: arithmetic, arrays, constructors, dynamic
// dispatch, exceptions, and device emulation.
#include <gtest/gtest.h>

#include "interp/interp.h"
#include "ir/builder.h"
#include "stencil/stencil_lib.h"

using namespace wj;
using namespace wj::dsl;

namespace {

/// One static method "f(p: int) -> ret" with the given body, evaluated.
Value evalI32Body(Block body, Type ret, int32_t arg) {
    ProgramBuilder pb;
    pb.cls("T").method("f", std::move(ret)).staticMethod().param("p", Type::i32())
        .body(std::move(body));
    Program p = pb.build();
    Interp in(p);
    return in.callStatic("T", "f", {Value::ofI32(arg)});
}

} // namespace

// ------------------------------------------------------------- arithmetic

TEST(InterpArith, IntegerOps) {
    EXPECT_EQ(7, evalI32Body(blk(ret(add(lv("p"), ci(3)))), Type::i32(), 4).asI32());
    EXPECT_EQ(-12, evalI32Body(blk(ret(mul(lv("p"), ci(-3)))), Type::i32(), 4).asI32());
    EXPECT_EQ(2, evalI32Body(blk(ret(rem(lv("p"), ci(5)))), Type::i32(), 7).asI32());
    EXPECT_EQ(1, evalI32Body(blk(ret(divE(lv("p"), ci(4)))), Type::i32(), 7).asI32());
    // Java semantics: integer division truncates toward zero.
    EXPECT_EQ(-1, evalI32Body(blk(ret(divE(lv("p"), ci(4)))), Type::i32(), -7).asI32());
}

TEST(InterpArith, DivisionByZeroThrows) {
    EXPECT_THROW(evalI32Body(blk(ret(divE(ci(1), lv("p")))), Type::i32(), 0), ExecError);
    EXPECT_THROW(evalI32Body(blk(ret(rem(ci(1), lv("p")))), Type::i32(), 0), ExecError);
}

TEST(InterpArith, ShiftCountMaskedLikeJava) {
    // 1 << 33 == 1 << 1 in Java.
    EXPECT_EQ(2, evalI32Body(blk(ret(std::make_unique<BinaryExpr>(BinOp::Shl, ci(1), ci(33)))),
                             Type::i32(), 0)
                     .asI32());
}

TEST(InterpArith, ShortCircuitEvaluation) {
    // (p != 0) && (10 / p > 1): must not divide when p == 0.
    Block body = blk(ret(land(ne(lv("p"), ci(0)), gt(divE(ci(10), lv("p")), ci(1)))));
    EXPECT_FALSE(evalI32Body(std::move(body), Type::boolean(), 0).asBool());
}

TEST(InterpArith, NumericCasts) {
    EXPECT_DOUBLE_EQ(4.0, evalI32Body(blk(ret(cast(Type::f64(), lv("p")))), Type::f64(), 4).asF64());
    EXPECT_EQ(3, evalI32Body(blk(ret(cast(Type::i32(), cd(3.9)))), Type::i32(), 0).asI32());
    EXPECT_EQ(-3, evalI32Body(blk(ret(cast(Type::i32(), cd(-3.9)))), Type::i32(), 0).asI32());
}

TEST(InterpArith, FloatRemainder) {
    Value v = evalI32Body(blk(ret(rem(cd(7.5), cd(2.0)))), Type::f64(), 0);
    EXPECT_DOUBLE_EQ(1.5, v.asF64());
}

// ----------------------------------------------------------------- arrays

TEST(InterpArrays, BoundsChecked) {
    Block over = blk(decl("a", Type::array(Type::i32()), newArr(Type::i32(), ci(3))),
                     ret(aget(lv("a"), lv("p"))));
    EXPECT_EQ(0, evalI32Body(std::move(over), Type::i32(), 2).asI32());
    Block over2 = blk(decl("a", Type::array(Type::i32()), newArr(Type::i32(), ci(3))),
                      ret(aget(lv("a"), lv("p"))));
    EXPECT_THROW(evalI32Body(std::move(over2), Type::i32(), 3), ExecError);
    Block neg = blk(decl("a", Type::array(Type::i32()), newArr(Type::i32(), ci(3))),
                    ret(aget(lv("a"), lv("p"))));
    EXPECT_THROW(evalI32Body(std::move(neg), Type::i32(), -1), ExecError);
}

TEST(InterpArrays, NegativeLengthThrows) {
    EXPECT_THROW(
        evalI32Body(blk(decl("a", Type::array(Type::i32()), newArr(Type::i32(), ci(-1))),
                        ret(ci(0))),
                    Type::i32(), 0),
        ExecError);
}

TEST(InterpArrays, LengthAndStores) {
    Block body = blk(decl("a", Type::array(Type::i32()), newArr(Type::i32(), lv("p"))),
                     forRange("i", ci(0), alen(lv("a")),
                              blk(aset(lv("a"), lv("i"), mul(lv("i"), lv("i"))))),
                     ret(aget(lv("a"), sub(alen(lv("a")), ci(1)))));
    EXPECT_EQ(81, evalI32Body(std::move(body), Type::i32(), 10).asI32());
}

// --------------------------------------------------------- objects/dispatch

namespace {

Program dispatchProgram() {
    ProgramBuilder pb;
    pb.cls("Shape2").interfaceClass().method("area", Type::f64()).abstractMethod();
    auto& sq = pb.cls("Square").implements("Shape2").finalClass().field("s", Type::f64());
    sq.ctor().param("s_", Type::f64()).body(blk(setSelf("s", lv("s_"))));
    sq.method("area", Type::f64()).body(blk(ret(mul(selff("s"), selff("s")))));
    auto& ci_ = pb.cls("Circle").implements("Shape2").finalClass().field("r", Type::f64());
    ci_.ctor().param("r_", Type::f64()).body(blk(setSelf("r", lv("r_"))));
    ci_.method("area", Type::f64())
        .body(blk(ret(mul(cd(3.0), mul(selff("r"), selff("r"))))));
    return pb.build();
}

} // namespace

TEST(InterpDispatch, VirtualCallsUseDynamicType) {
    Program p = dispatchProgram();
    Interp in(p);
    Value sq = in.instantiate("Square", {Value::ofF64(4.0)});
    Value circ = in.instantiate("Circle", {Value::ofF64(2.0)});
    EXPECT_DOUBLE_EQ(16.0, in.call(sq, "area", {}).asF64());
    EXPECT_DOUBLE_EQ(12.0, in.call(circ, "area", {}).asF64());
}

TEST(InterpDispatch, DispatchCounterAdvances) {
    Program p = dispatchProgram();
    Interp in(p);
    Value sq = in.instantiate("Square", {Value::ofF64(1.0)});
    const int64_t before = in.dynamicDispatches();
    in.call(sq, "area", {});
    EXPECT_EQ(before + 1, in.dynamicDispatches());
}

TEST(InterpCtor, SuperChainRuns) {
    ProgramBuilder pb;
    auto& base = pb.cls("Base").field("x", Type::i32());
    base.ctor().param("x_", Type::i32()).body(blk(setSelf("x", lv("x_"))));
    auto& sub = pb.cls("Sub").extends("Base").field("y", Type::i32());
    sub.ctor()
        .param("x_", Type::i32())
        .param("y_", Type::i32())
        .body(blk(superCtor(lv("x_")), setSelf("y", lv("y_"))));
    sub.method("sum", Type::i32()).body(blk(ret(add(selff("x"), selff("y")))));
    Program p = pb.build();
    Interp in(p);
    Value v = in.instantiate("Sub", {Value::ofI32(3), Value::ofI32(4)});
    EXPECT_EQ(7, in.call(v, "sum", {}).asI32());
}

TEST(InterpCtor, ImplicitSuperRuns) {
    ProgramBuilder pb;
    auto& base = pb.cls("Base").field("x", Type::i32());
    base.ctor().body(blk(setSelf("x", ci(42))));
    auto& sub = pb.cls("Sub").extends("Base");
    sub.method("get", Type::i32()).body(blk(ret(selff("x"))));
    Program p = pb.build();
    Interp in(p);
    Value v = in.instantiate("Sub", {});
    EXPECT_EQ(42, in.call(v, "get", {}).asI32());
}

TEST(InterpErrors, RecursionOverflowCaught) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("f", Type::i32()).param("n", Type::i32())
        .body(blk(ret(call(self(), "f", add(lv("n"), ci(1))))));
    Program p = pb.build();
    Interp in(p);
    Value v = in.instantiate("T", {});
    EXPECT_THROW(in.call(v, "f", {Value::ofI32(0)}), ExecError);
}

TEST(InterpErrors, MissingReturnCaught) {
    ProgramBuilder pb;
    pb.cls("T").method("f", Type::i32()).param("p", Type::i32())
        .body(blk(ifs(gt(lv("p"), ci(0)), blk(ret(ci(1))))));
    Program p = pb.build();
    Interp in(p);
    Value v = in.instantiate("T", {});
    EXPECT_EQ(1, in.call(v, "f", {Value::ofI32(5)}).asI32());
    EXPECT_THROW(in.call(v, "f", {Value::ofI32(-5)}), ExecError);
}

TEST(InterpErrors, ClassCastExceptionOnBadDowncast) {
    ProgramBuilder pb;
    pb.cls("Base");
    pb.cls("A").extends("Base").finalClass();
    pb.cls("B").extends("Base").finalClass();
    auto& t = pb.cls("T").notWootinJ();
    // Takes a Base, downcasts to A — throws at run time when given a B.
    t.method("f", Type::voidTy()).param("x", Type::cls("Base"))
        .body(blk(decl("a", Type::cls("A"), cast(Type::cls("A"), lv("x"))), retVoid()));
    Program p = pb.build();
    Interp in(p);
    Value t0 = in.instantiate("T", {});
    EXPECT_NO_THROW(in.call(t0, "f", {in.instantiate("A", {})}));
    EXPECT_THROW(in.call(t0, "f", {in.instantiate("B", {})}), ExecError);
}

// --------------------------------------------------------- MPI/GPU posture

TEST(InterpPlatform, MpiRankSizeAreOneRankWorld) {
    Block body = blk(ret(add(mpiRank(), mpiSize())));
    EXPECT_EQ(1, evalI32Body(std::move(body), Type::i32(), 0).asI32());
}

TEST(InterpPlatform, MpiCommunicationRefused) {
    Block body = blk(exprS(intr(Intrinsic::MpiBarrier)), retVoid());
    EXPECT_THROW(evalI32Body(std::move(body), Type::voidTy(), 0), ExecError);
}

TEST(InterpPlatform, GlobalMethodRefusedWithoutEmulation) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("k", Type::voidTy()).global().param("conf", Type::cls("CudaConfig"))
        .body(blk(retVoid()));
    t.method("go", Type::voidTy())
        .body(blk(exprS(call(self(), "k", cudaConfig(dim3of(ci(1)), dim3of(ci(4)), ci(0)))),
                  retVoid()));
    Program p = pb.build();
    Interp in(p);
    Value v = in.instantiate("T", {});
    EXPECT_THROW(in.call(v, "go", {}), ExecError);
}

TEST(InterpPlatform, DeviceEmulationRunsKernels) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("k", Type::voidTy()).global()
        .param("conf", Type::cls("CudaConfig"))
        .param("a", Type::array(Type::i32()))
        .body(blk(decl("i", Type::i32(), add(mul(bidxX(), bdimX()), tidxX())),
                  aset(lv("a"), lv("i"), mul(lv("i"), ci(2))), retVoid()));
    t.method("go", Type::i32())
        .body(blk(decl("a", Type::array(Type::i32()), newArr(Type::i32(), ci(8))),
                  exprS(call(self(), "k", cudaConfig(dim3of(ci(2)), dim3of(ci(4)), ci(0)),
                             lv("a"))),
                  ret(aget(lv("a"), ci(7)))));
    Program p = pb.build();
    Interp::Options opts;
    opts.deviceEmulation = true;
    Interp in(p, opts);
    Value v = in.instantiate("T", {});
    EXPECT_EQ(14, in.call(v, "go", {}).asI32());
}

TEST(InterpCost, StencilPaysAllocationsAndDispatchesPerCell) {
    // Quantifies the "Java" overhead the JIT removes: every cell costs 8
    // boxed allocations (7 ScalarFloat inputs + 1 result) and multiple
    // dynamic dispatches (solver.solve, grid get/getWrap x7, set, val x8).
    ProgramBuilder pb;
    wj::stencil::registerLibrary(pb);
    wj::stencil::registerDiffusionApp(pb);
    Program p = pb.build();
    Interp in(p);
    const auto c = wj::stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    Value runner = wj::stencil::makeCpuRunner(in, 4, 4, 4, c, 1);
    const int64_t a0 = in.objectAllocations();
    const int64_t d0 = in.dynamicDispatches();
    in.call(runner, "run", {Value::ofI32(1)});
    const int64_t cells = 4 * 4 * 4;
    EXPECT_GE(in.objectAllocations() - a0, cells * 8);
    EXPECT_GE(in.dynamicDispatches() - d0, cells * 10);
}
