// Tests of the dataflow-analysis framework (src/analysis/): definite
// assignment, interval/shape bounds analysis, effect summaries, and the
// communication race check — plus the two consumers: the interpreter's
// first-invoke verification and the translator's bounds-guard elision
// (WJ_BOUNDS=1 guards only accesses the interval pass could not prove).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "analysis/analysis.h"
#include "analysis/effects.h"
#include "interp/interp.h"
#include "ir/builder.h"
#include "jit/codegen.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "stencil/stencil_lib.h"

using namespace wj;
using namespace wj::dsl;

namespace {

/// Scoped WJ_BOUNDS setting; restores the previous value on destruction.
class BoundsEnv {
public:
    explicit BoundsEnv(const char* mode) {
        const char* old = std::getenv("WJ_BOUNDS");
        had_ = old != nullptr;
        if (had_) old_ = old;
        setenv("WJ_BOUNDS", mode, 1);
    }
    ~BoundsEnv() {
        if (had_) setenv("WJ_BOUNDS", old_.c_str(), 1);
        else unsetenv("WJ_BOUNDS");
    }

private:
    bool had_ = false;
    std::string old_;
};

size_t countOccurrences(const std::string& hay, const std::string& needle) {
    size_t n = 0;
    for (size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

bool hasError(const analysis::Result& r, const std::string& rule) {
    for (const auto& v : r.errors)
        if (v.rule == rule) return true;
    return false;
}

} // namespace

// ---------------------------------------------------------------- definite
// assignment

TEST(DefiniteAssignment, RejectsBranchOnlyStore) {
    ProgramBuilder pb;
    pb.cls("C").method("f", Type::i32()).param("n", Type::i32()).body(
        blk(declUninit("sum", Type::i32()),
            ifs(gt(lv("n"), ci(0)), blk(assign("sum", lv("n")))),
            ret(lv("sum"))));
    Program p = pb.build();
    const ClassDecl& c = p.require("C");
    auto errs = analysis::checkDefiniteAssignment(p, c, *c.ownMethod("f"));
    ASSERT_EQ(errs.size(), 1u);
    EXPECT_EQ(errs[0].rule, "uninit");
    EXPECT_NE(errs[0].detail.find("sum"), std::string::npos);
}

TEST(DefiniteAssignment, AcceptsStoreOnBothBranches) {
    ProgramBuilder pb;
    pb.cls("C").method("f", Type::i32()).param("n", Type::i32()).body(
        blk(declUninit("sum", Type::i32()),
            ifs(gt(lv("n"), ci(0)), blk(assign("sum", lv("n"))),
                blk(assign("sum", ci(0)))),
            ret(lv("sum"))));
    Program p = pb.build();
    const ClassDecl& c = p.require("C");
    EXPECT_TRUE(analysis::checkDefiniteAssignment(p, c, *c.ownMethod("f")).empty());
}

TEST(DefiniteAssignment, LoopBodyStoreDoesNotDominateExit) {
    // The loop may execute zero times, so the store inside does not count.
    ProgramBuilder pb;
    pb.cls("C").method("f", Type::i32()).param("n", Type::i32()).body(
        blk(declUninit("last", Type::i32()),
            forRange("i", ci(0), lv("n"), blk(assign("last", lv("i")))),
            ret(lv("last"))));
    Program p = pb.build();
    const ClassDecl& c = p.require("C");
    auto errs = analysis::checkDefiniteAssignment(p, c, *c.ownMethod("f"));
    ASSERT_EQ(errs.size(), 1u);
    EXPECT_EQ(errs[0].rule, "uninit");
}

TEST(DefiniteAssignment, InterpreterRejectsOnFirstInvoke) {
    ProgramBuilder pb;
    pb.cls("C").method("f", Type::i32()).param("n", Type::i32()).body(
        blk(declUninit("x", Type::i32()),
            ifs(gt(lv("n"), ci(0)), blk(assign("x", ci(1)))),
            ret(lv("x"))));
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("C", {});
    // Rejected up front — even though n > 0 would make this run assign x.
    EXPECT_THROW(in.call(obj, "f", {Value::ofI32(5)}), AnalysisError);
}

TEST(DefiniteAssignment, BackwardLivenessWarnsOnDeadStore) {
    ProgramBuilder pb;
    pb.cls("C").method("f", Type::i32()).param("n", Type::i32()).body(
        blk(decl("x", Type::i32(), ci(0)),
            assign("x", ci(5)),  // overwritten before any read
            assign("x", add(lv("n"), ci(1))),
            ret(lv("x"))));
    Program p = pb.build();
    const ClassDecl& c = p.require("C");
    std::vector<Violation> warnings;
    auto errs = analysis::checkDefiniteAssignment(p, c, *c.ownMethod("f"), &warnings);
    EXPECT_TRUE(errs.empty());
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_EQ(warnings[0].rule, "dead-store");
}

// ---------------------------------------------------------------- interval /
// bounds

TEST(Bounds, ConstantOobIsLintError) {
    ProgramBuilder pb;
    pb.cls("C").method("f", Type::f32()).body(
        blk(decl("a", Type::array(Type::f32()), newArr(Type::f32(), ci(4))),
            ret(aget(lv("a"), ci(7)))));
    Program p = pb.build();
    analysis::Result r = analysis::lintProgram(p);
    EXPECT_TRUE(hasError(r, "bounds"));
}

TEST(Bounds, LocalLoopOverOwnArrayProvenSafe) {
    ProgramBuilder pb;
    pb.cls("C").method("f", Type::f32()).body(
        blk(decl("a", Type::array(Type::f32()), newArr(Type::f32(), ci(8))),
            forRange("i", ci(0), ci(8), blk(aset(lv("a"), lv("i"), cf(1.0f)))),
            ret(aget(lv("a"), ci(0)))));
    Program p = pb.build();
    analysis::Result r = analysis::lintProgram(p);
    EXPECT_TRUE(r.errors.empty());
    EXPECT_EQ(r.unknownAccesses, 0);
    EXPECT_EQ(r.safeAccesses, 2);  // the loop store and the final load
}

TEST(Bounds, EntryAnalysisRejectsProvenOob) {
    ProgramBuilder pb;
    pb.cls("C").method("f", Type::f32()).body(
        blk(decl("a", Type::array(Type::f32()), newArr(Type::f32(), ci(4))),
            ret(aget(lv("a"), ci(7)))));
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("C", {});
    // The mandatory pre-translation analysis refuses to compile it.
    EXPECT_THROW(WootinJ::jit(p, obj, "f", {}), AnalysisError);
}

TEST(Bounds, StencilInteriorLoopsNeedNoGuards) {
    BoundsEnv env("1");
    Program p = stencil::buildProgram();
    Interp in(p);
    Value runner = stencil::makeCpuRunner(in, 8, 8, 8,
                                          stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f),
                                          42);
    Translation t = translate(p, runner, "run", {Value::ofI32(3)});
    // The headline property: with the interval pass on, the diffusion
    // stencil (triple-nested interior loop, clamped neighbor indexing)
    // compiles with ZERO runtime bounds guards.
    EXPECT_EQ(t.boundsGuards, 0);
    EXPECT_GT(t.boundsElided, 0);
    // Only the wj_chk definition appears, no call sites.
    EXPECT_EQ(countOccurrences(t.cSource, "wj_chk("), 1u);
}

TEST(Bounds, MatmulInteriorLoopsNeedNoGuards) {
    BoundsEnv env("1");
    Program p = matmul::buildProgram();
    Interp in(p);
    Value app = matmul::makeCpuApp(in, matmul::Calc::Optimized);
    Translation t = translate(p, app, "run", {Value::ofI32(16), Value::ofI32(7)});
    EXPECT_EQ(t.boundsGuards, 0);
    EXPECT_GT(t.boundsElided, 0);
}

TEST(Bounds, GuardModeAllGuardsEveryAccess) {
    BoundsEnv env("all");
    Program p = stencil::buildProgram();
    Interp in(p);
    Value runner = stencil::makeCpuRunner(in, 8, 8, 8,
                                          stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f),
                                          42);
    Translation t = translate(p, runner, "run", {Value::ofI32(3)});
    EXPECT_GT(t.boundsGuards, 0);
    EXPECT_EQ(t.boundsElided, 0);
}

TEST(Bounds, GuardTrapsOnRuntimeOob) {
    BoundsEnv env("1");
    // The index is a float->int cast, which the interval pass treats as
    // unknown — so a guard is emitted, and at runtime it trips.
    ProgramBuilder pb;
    pb.cls("C").method("f", Type::f32()).body(
        blk(decl("a", Type::array(Type::f32()), newArr(Type::f32(), ci(4))),
            ret(aget(lv("a"), cast(Type::i32(), cf(7.0f))))));
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("C", {});
    JitCode code = WootinJ::jit(p, obj, "f", {});
    EXPECT_GT(code.boundsGuards(), 0);
    EXPECT_THROW(code.invoke(), ExecError);
}

TEST(Bounds, DifferentialGuardedVsUnguardedResultsAgree) {
    ProgramBuilder pb;
    pb.cls("C").method("run", Type::f64()).param("n", Type::i32()).body(
        blk(decl("a", Type::array(Type::f32()), newArr(Type::f32(), lv("n"))),
            forRange("i", ci(0), lv("n"),
                     blk(aset(lv("a"), lv("i"), intr(Intrinsic::RngHashF32, ci(3), lv("i"))))),
            decl("s", Type::f64(), cd(0.0)),
            forRange("i", ci(0), lv("n"),
                     blk(assign("s", add(lv("s"), cast(Type::f64(), aget(lv("a"), lv("i"))))))),
            ret(lv("s"))));
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("C", {});
    double unguarded, guarded;
    {
        BoundsEnv env("0");
        unguarded = WootinJ::jit(p, obj, "run", {Value::ofI32(64)}).invoke().asF64();
    }
    {
        BoundsEnv env("all");
        JitCode code = WootinJ::jit(p, obj, "run", {Value::ofI32(64)});
        EXPECT_GT(code.boundsGuards(), 0);
        guarded = code.invoke().asF64();
    }
    EXPECT_DOUBLE_EQ(unguarded, guarded);
}

TEST(Bounds, DifferentialDiffusionAcrossGuardModes) {
    // The paper-listing diffusion stencil, jitted under every WJ_BOUNDS
    // mode — guard placement must never change the numerics.
    Program p = stencil::buildProgram();
    Interp in(p);
    const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    Value runner = stencil::makeCpuRunner(in, 8, 8, 8, coeffs, 42);
    const double expect = stencil::referenceDiffusion3D(8, 8, 8, coeffs, 42, 2);
    for (const char* mode : {"0", "1", "all"}) {
        BoundsEnv env(mode);
        JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(2)});
        EXPECT_DOUBLE_EQ(expect, code.invoke().asF64()) << "WJ_BOUNDS=" << mode;
    }
}

// ---------------------------------------------------------------- race check

namespace {

/// A class whose `race` method writes the buffer while a nonblocking
/// receive into it is in flight; `clean` waits first.
Program haloProgram() {
    ProgramBuilder pb;
    auto& c = pb.cls("Halo");
    c.method("race", Type::f32()).body(
        blk(decl("h", Type::array(Type::f32()), newArr(Type::f32(), ci(16))),
            decl("req", Type::i32(), intr(Intrinsic::MpiIrecvF32, lv("h"), ci(0), ci(8), ci(0), ci(7))),
            aset(lv("h"), ci(3), cf(1.0f)),
            exprS(intr(Intrinsic::MpiWait, lv("req"))),
            ret(aget(lv("h"), ci(3)))));
    c.method("clean", Type::f32()).body(
        blk(decl("h", Type::array(Type::f32()), newArr(Type::f32(), ci(16))),
            decl("req", Type::i32(), intr(Intrinsic::MpiIrecvF32, lv("h"), ci(0), ci(8), ci(0), ci(7))),
            exprS(intr(Intrinsic::MpiWait, lv("req"))),
            aset(lv("h"), ci(3), cf(1.0f)),
            ret(aget(lv("h"), ci(3)))));
    c.method("disjoint", Type::f32()).body(
        // Write beyond the received region [0, 8) — no overlap, no race.
        blk(decl("h", Type::array(Type::f32()), newArr(Type::f32(), ci(16))),
            decl("req", Type::i32(), intr(Intrinsic::MpiIrecvF32, lv("h"), ci(0), ci(8), ci(0), ci(7))),
            aset(lv("h"), ci(12), cf(1.0f)),
            exprS(intr(Intrinsic::MpiWait, lv("req"))),
            ret(aget(lv("h"), ci(12)))));
    return pb.build();
}

} // namespace

TEST(RaceCheck, FlagsWriteOverlappingInflightReceive) {
    Program p = haloProgram();
    analysis::Result r = analysis::lintProgram(p);
    ASSERT_TRUE(hasError(r, "halo-race"));
    bool inRace = false;
    for (const auto& v : r.errors)
        if (v.rule == "halo-race" && v.where.find("Halo.race") != std::string::npos)
            inRace = true;
    EXPECT_TRUE(inRace);
    // Only the `race` method is flagged; `clean` and `disjoint` are not.
    for (const auto& v : r.errors) {
        EXPECT_EQ(v.where.find("Halo.clean"), std::string::npos) << v.str();
        EXPECT_EQ(v.where.find("Halo.disjoint"), std::string::npos) << v.str();
    }
}

TEST(RaceCheck, StencilLibraryLintsClean) {
    // Includes StencilCPU3D_MPI_Overlap, whose whole point is writing the
    // interior while halo receives are in flight — the region reasoning
    // must keep it clean.
    Program p = stencil::buildProgram();
    analysis::Result r = analysis::lintProgram(p);
    for (const auto& v : r.errors) ADD_FAILURE() << v.str();
    EXPECT_TRUE(r.errors.empty());
}

TEST(RaceCheck, MatmulLibraryLintsClean) {
    Program p = matmul::buildProgram();
    analysis::Result r = analysis::lintProgram(p);
    for (const auto& v : r.errors) ADD_FAILURE() << v.str();
    EXPECT_TRUE(r.errors.empty());
}

// ---------------------------------------------------------------- effects

TEST(Effects, VirtualCallJoinsAllImplementations) {
    ProgramBuilder pb;
    {
        auto& c = pb.cls("Op").interfaceClass();
        c.method("apply", Type::voidTy()).param("a", Type::array(Type::f32())).abstractMethod();
    }
    {
        auto& c = pb.cls("WriteOp").implements("Op").finalClass();
        c.method("apply", Type::voidTy()).param("a", Type::array(Type::f32()))
            .body(blk(aset(lv("a"), ci(0), cf(1.0f))));
    }
    {
        auto& c = pb.cls("ReadOp").implements("Op").finalClass();
        c.field("acc", Type::f32());
        c.method("apply", Type::voidTy()).param("a", Type::array(Type::f32()))
            .body(blk(setf(self(), "acc", aget(lv("a"), ci(0))), retVoid()));
    }
    {
        auto& c = pb.cls("Driver");
        c.field("op", Type::cls("Op"));
        c.ctor().param("op_", Type::cls("Op")).body(blk(setf(self(), "op", lv("op_"))));
        c.method("runBoth", Type::voidTy()).param("buf", Type::array(Type::f32()))
            .body(blk(exprS(call(getf(self(), "op"), "apply", lv("buf"))), retVoid()));
    }
    Program p = pb.build();
    auto eff = analysis::computeEffects(p);
    const Method* runBoth = p.require("Driver").ownMethod("runBoth");
    ASSERT_TRUE(eff.count(runBoth));
    // The virtual call could dispatch to either implementation, so the
    // summary is the join: buf may be read AND written.
    EXPECT_TRUE(eff.at(runBoth).readsParams.count(0));
    EXPECT_TRUE(eff.at(runBoth).writesParams.count(0));
    EXPECT_FALSE(eff.at(runBoth).writesUnknown);
    EXPECT_FALSE(eff.at(runBoth).usesComm());
}

TEST(Effects, CommunicationReachesCallerSummaries) {
    Program p = stencil::buildProgram();
    auto eff = analysis::computeEffects(p);
    // The overlapped MPI runner posts nonblocking receives and waits; its
    // run() must inherit that through the call chain.
    const Method* run = p.resolveMethod("StencilCPU3D_MPI_Overlap", "run");
    ASSERT_NE(run, nullptr);
    ASSERT_TRUE(eff.count(run));
    EXPECT_TRUE(eff.at(run).postsIrecv);
    EXPECT_TRUE(eff.at(run).waits);
    EXPECT_TRUE(eff.at(run).usesComm());
    // The sequential runner's run() performs no communication at all.
    const Method* seqRun = p.resolveMethod("StencilCPU3DDblB", "run");
    ASSERT_NE(seqRun, nullptr);
    ASSERT_TRUE(eff.count(seqRun));
    EXPECT_FALSE(eff.at(seqRun).usesComm());
}
