// Differential tests of the stencil class library across every platform
// variant: C++ reference vs interpreter ("JVM") vs JIT on CPU, CPU+MPI (1,
// 2, 4 ranks), GPU, and GPU+MPI. The paper's claim is that the SAME library
// composition runs on all platforms by switching the StencilRunner subclass
// (Figure 2); these tests pin that the numerics agree everywhere.
#include <gtest/gtest.h>

#include "interp/interp.h"
#include "jit/jit.h"
#include "rules/rules.h"
#include "stencil/stencil_lib.h"

using namespace wj;
using namespace wj::stencil;

namespace {

constexpr int kNx = 8, kNy = 8, kNz = 8;
constexpr int kSteps = 3;
constexpr int kSeed = 42;

DiffusionCoeffs coeffs() { return DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f); }

double refSum() { return referenceDiffusion3D(kNx, kNy, kNz, coeffs(), kSeed, kSteps); }

} // namespace

TEST(StencilLib, ProgramSatisfiesCodingRules) {
    Program p = buildProgram();
    auto violations = verifyCodingRules(p);
    for (const auto& v : violations) ADD_FAILURE() << v.str();
    EXPECT_TRUE(violations.empty());
}

TEST(StencilLib, InterpreterMatchesReference) {
    Program p = buildProgram();
    Interp in(p);
    Value runner = makeCpuRunner(in, kNx, kNy, kNz, coeffs(), kSeed);
    Value r = in.call(runner, "run", {Value::ofI32(kSteps)});
    EXPECT_DOUBLE_EQ(refSum(), r.asF64());
}

TEST(StencilLib, JitCpuMatchesReference) {
    Program p = buildProgram();
    Interp in(p);
    Value runner = makeCpuRunner(in, kNx, kNy, kNz, coeffs(), kSeed);
    JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(kSteps)});
    EXPECT_DOUBLE_EQ(refSum(), code.invoke().asF64());
    // The whole point: solver.solve and grid accessors devirtualized, every
    // ScalarFloat flattened.
    EXPECT_GT(code.devirtualizedCalls(), 5);
    EXPECT_GT(code.inlinedObjects(), 5);
}

TEST(StencilLib, JitMpiMatchesReferenceAcrossRankCounts) {
    Program p = buildProgram();
    Interp in(p);
    const double expect = refSum();
    for (int ranks : {1, 2, 4}) {
        const int nzLocal = kNz / ranks;
        Value runner = makeMpiRunner(in, kNx, kNy, nzLocal, coeffs(), kSeed);
        JitCode code = WootinJ::jit4mpi(p, runner, "run", {Value::ofI32(kSteps)});
        code.set4MPI(ranks);
        const double got = code.invoke().asF64();
        EXPECT_NEAR(expect, got, std::abs(expect) * 1e-12 + 1e-9)
            << "ranks=" << ranks;
    }
}

TEST(StencilLib, JitGpuMatchesReference) {
    Program p = buildProgram();
    Interp in(p);
    Value runner = makeGpuRunner(in, kNx, kNy, kNz, coeffs(), kSeed, /*blockSize=*/32);
    JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(kSteps)});
    EXPECT_DOUBLE_EQ(refSum(), code.invoke().asF64());
    EXPECT_EQ(1, code.kernels());
}

TEST(StencilLib, JitGpuMpiMatchesReference) {
    Program p = buildProgram();
    Interp in(p);
    const double expect = refSum();
    for (int ranks : {1, 2}) {
        const int nzLocal = kNz / ranks;
        Value runner = makeGpuMpiRunner(in, kNx, kNy, nzLocal, coeffs(), kSeed, 32);
        JitCode code = WootinJ::jit4mpi(p, runner, "run", {Value::ofI32(kSteps)});
        code.set4MPI(ranks);
        EXPECT_NEAR(expect, code.invoke().asF64(), std::abs(expect) * 1e-12 + 1e-9)
            << "ranks=" << ranks;
    }
}

TEST(StencilLib, OneDimensionalSolverMatchesReference) {
    Program p = buildProgram();
    Interp in(p);
    const float a = 0.25f, b = 0.5f;
    Value runner = makeCpu1DRunner(in, 64, a, b, kSeed);
    const double expect = referenceDiffusion1D(64, a, b, kSeed, 5);
    // Interpreter and JIT agree with the reference.
    EXPECT_DOUBLE_EQ(expect, in.call(runner, "run", {Value::ofI32(5)}).asF64());
    JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(5)});
    EXPECT_DOUBLE_EQ(expect, code.invoke().asF64());
}

TEST(StencilLib, SwitchingRunnerKeepsSolverReuse) {
    // The feature-model promise (Figure 1): Dimension/Parallelism features
    // compose. The same Dif3DSolver instance graph drives both the CPU and
    // GPU runner classes with identical results.
    Program p = buildProgram();
    Interp in(p);
    Value cpu = makeCpuRunner(in, 6, 5, 4, coeffs(), 7);
    Value gpu = makeGpuRunner(in, 6, 5, 4, coeffs(), 7, 16);
    JitCode ccpu = WootinJ::jit(p, cpu, "run", {Value::ofI32(2)});
    JitCode cgpu = WootinJ::jit(p, gpu, "run", {Value::ofI32(2)});
    EXPECT_DOUBLE_EQ(ccpu.invoke().asF64(), cgpu.invoke().asF64());
}

TEST(StencilLib, GeneratedKernelIsDeviceTranslated) {
    Program p = buildProgram();
    Interp in(p);
    Value runner = makeGpuRunner(in, 4, 4, 4, coeffs(), 1, 8);
    JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(1)});
    const std::string& c = code.generatedC();
    // Kernel thunk + launch present; solver became a device-side direct call.
    EXPECT_NE(c.find("wjrt_gpu_launch"), std::string::npos);
    EXPECT_NE(c.find("wjrt_gpu_tidx_x"), std::string::npos);
}

TEST(StencilLib, SharedMemoryGpuRunnerMatchesPlainGpu) {
    // The @Shared-tiled kernel must be bit-identical to the plain kernel
    // (same arithmetic, different staging) and must launch with
    // needs_sync=1 (it barriers between the stage and the reads).
    Program p = buildProgram();
    Interp in(p);
    Value plain = makeGpuRunner(in, 16, 6, 5, coeffs(), 11, 16);
    Value tiled = makeGpuSharedRunner(in, 16, 6, 5, coeffs(), 11, /*blockSize=*/8);
    JitCode cPlain = WootinJ::jit(p, plain, "run", {Value::ofI32(3)});
    JitCode cTiled = WootinJ::jit(p, tiled, "run", {Value::ofI32(3)});
    EXPECT_DOUBLE_EQ(cPlain.invoke().asF64(), cTiled.invoke().asF64());
    EXPECT_NE(cTiled.generatedC().find("wjrt_gpu_shared_f32"), std::string::npos);
    EXPECT_NE(cTiled.generatedC().find(", 1);"), std::string::npos);  // needs_sync
}

TEST(StencilLib, SharedRunnerRejectsIndivisibleBlock) {
    Program p = buildProgram();
    Interp in(p);
    EXPECT_THROW(makeGpuSharedRunner(in, 10, 4, 4, coeffs(), 1, 4), UsageError);
}

class StencilShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(StencilShapes, CpuJitMatchesReferenceOnNonCubicGrids) {
    auto [nx, ny, nz, steps] = GetParam();
    Program p = buildProgram();
    Interp in(p);
    Value runner = makeCpuRunner(in, nx, ny, nz, coeffs(), 3);
    JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(steps)});
    EXPECT_DOUBLE_EQ(referenceDiffusion3D(nx, ny, nz, coeffs(), 3, steps),
                     code.invoke().asF64());
}

INSTANTIATE_TEST_SUITE_P(Sweep, StencilShapes,
                         ::testing::Values(std::make_tuple(1, 1, 1, 2),
                                           std::make_tuple(2, 1, 1, 3),
                                           std::make_tuple(5, 3, 2, 2),
                                           std::make_tuple(3, 9, 4, 1),
                                           std::make_tuple(12, 12, 12, 0)));

class GpuBlockSweep : public ::testing::TestWithParam<int> {};

TEST_P(GpuBlockSweep, GpuRunnerAgreesAtEveryBlockSize) {
    const int bs = GetParam();
    Program p = buildProgram();
    Interp in(p);
    Value runner = makeGpuRunner(in, 6, 6, 6, coeffs(), 5, bs);
    JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(2)});
    EXPECT_DOUBLE_EQ(referenceDiffusion3D(6, 6, 6, coeffs(), 5, 2), code.invoke().asF64());
}

INSTANTIATE_TEST_SUITE_P(Sweep, GpuBlockSweep, ::testing::Values(1, 7, 32, 100, 1024));

TEST(StencilLib, OverlappedMpiRunnerBitIdenticalToSynchronous) {
    // The comm/compute-overlap extension must not change a single bit: same
    // arithmetic, same order per cell, only the exchange schedule differs.
    Program p = buildProgram();
    Interp in(p);
    for (int ranks : {1, 2, 4}) {
        const int nzLocal = kNz / ranks;
        Value sync = makeMpiRunner(in, kNx, kNy, nzLocal, coeffs(), kSeed);
        Value ovl = makeMpiOverlapRunner(in, kNx, kNy, nzLocal, coeffs(), kSeed);
        JitCode cs = WootinJ::jit4mpi(p, sync, "run", {Value::ofI32(kSteps)});
        JitCode co = WootinJ::jit4mpi(p, ovl, "run", {Value::ofI32(kSteps)});
        cs.set4MPI(ranks);
        co.set4MPI(ranks);
        EXPECT_EQ(cs.invoke().asF64(), co.invoke().asF64()) << "ranks=" << ranks;
    }
}

TEST(StencilLib, OverlappedRunnerHandlesThinSlabs) {
    // nzLocal == 1: the "interior" range is empty and both boundary sweeps
    // hit the same plane; the result must still match the reference.
    Program p = buildProgram();
    Interp in(p);
    const int ranks = 4, nzLocal = 1;
    Value ovl = makeMpiOverlapRunner(in, 6, 6, nzLocal, coeffs(), 3);
    JitCode code = WootinJ::jit4mpi(p, ovl, "run", {Value::ofI32(2)});
    code.set4MPI(ranks);
    EXPECT_NEAR(referenceDiffusion3D(6, 6, ranks * nzLocal, coeffs(), 3, 2),
                code.invoke().asF64(), 1e-6);
}
