// The conjugate-gradient library (the paper's future-work direction):
// matrix-free vs CSR operators, local vs MPI dot products, interpreter vs
// JIT vs C++ reference, across rank counts.
#include <gtest/gtest.h>

#include <cmath>

#include "cg/cg_lib.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "rules/rules.h"

using namespace wj;
using namespace wj::cg;

namespace {
constexpr int kN = 64;
constexpr int kSeed = 9;
constexpr int kIters = 8;
} // namespace

TEST(CgLib, SatisfiesCodingRules) {
    Program p = buildProgram();
    auto vs = verifyCodingRules(p);
    for (const auto& v : vs) ADD_FAILURE() << v.str();
}

TEST(CgLib, ResidualConverges) {
    // Physics sanity. CG's residual 2-norm is NOT monotone (only the A-norm
    // of the error is), so test convergence at scale: after ~n iterations
    // the system is solved to float precision.
    const double r0 = referenceCgResidual(kN, kSeed, 0);
    const double r80 = referenceCgResidual(kN, kSeed, 80);
    EXPECT_GT(r0, 1.0);
    EXPECT_LT(r80, 1e-10);
}

TEST(CgLib, InterpreterMatchesReference) {
    Program p = buildProgram();
    Interp in(p);
    Value solver = makeCpuSolver(in);
    Value r = in.call(solver, "run",
                      {Value::ofI32(kN), Value::ofI32(kSeed), Value::ofI32(kIters)});
    EXPECT_DOUBLE_EQ(referenceCgResidual(kN, kSeed, kIters), r.asF64());
}

TEST(CgLib, JitMatrixFreeMatchesReference) {
    Program p = buildProgram();
    Interp in(p);
    Value solver = makeCpuSolver(in);
    JitCode code = WootinJ::jit(p, solver, "run",
                                {Value::ofI32(kN), Value::ofI32(kSeed), Value::ofI32(kIters)});
    EXPECT_DOUBLE_EQ(referenceCgResidual(kN, kSeed, kIters), code.invoke().asF64());
}

TEST(CgLib, CsrOperatorMatchesMatrixFreeBitwise) {
    // Same operator, two implementations: identical arithmetic order per
    // row, so results are bit-identical. This also pushes int32 arrays
    // (cols, rowPtr) through jit marshalling.
    Program p = buildProgram();
    Interp in(p);
    Value csr = makeCpuCsrSolver(in, kN);
    JitCode code = WootinJ::jit(p, csr, "run",
                                {Value::ofI32(kN), Value::ofI32(kSeed), Value::ofI32(kIters)});
    EXPECT_DOUBLE_EQ(referenceCgResidual(kN, kSeed, kIters), code.invoke().asF64());
}

TEST(CgLib, MpiSolverMatchesAcrossRankCounts) {
    Program p = buildProgram();
    Interp in(p);
    const double expect = referenceCgResidual(kN, kSeed, kIters);
    for (int ranks : {1, 2, 4}) {
        const int nLocal = kN / ranks;
        Value solver = makeMpiSolver(in, nLocal);
        JitCode code = WootinJ::jit4mpi(
            p, solver, "run",
            {Value::ofI32(nLocal), Value::ofI32(kSeed), Value::ofI32(kIters)});
        code.set4MPI(ranks);
        const double got = code.invoke().asF64();
        // Dot products group differently across ranks: tolerance, not bits.
        EXPECT_NEAR(expect, got, std::abs(expect) * 1e-6 + 1e-12) << "ranks=" << ranks;
    }
}

TEST(CgLib, ComponentsAreDevirtualized) {
    Program p = buildProgram();
    Interp in(p);
    Value solver = makeCpuSolver(in);
    JitCode code = WootinJ::jit(p, solver, "run",
                                {Value::ofI32(8), Value::ofI32(1), Value::ofI32(1)});
    EXPECT_NE(code.generatedC().find("Laplacian1D_apply"), std::string::npos);
    EXPECT_NE(code.generatedC().find("LocalDot_dot"), std::string::npos);
    EXPECT_EQ(code.generatedC().find("(*"), std::string::npos);  // no fn pointers
}

class CgIterSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CgIterSweep, JitTracksReference) {
    auto [n, iters] = GetParam();
    Program p = buildProgram();
    Interp in(p);
    Value solver = makeCpuSolver(in);
    JitCode code = WootinJ::jit(
        p, solver, "run", {Value::ofI32(n), Value::ofI32(kSeed), Value::ofI32(iters)});
    EXPECT_DOUBLE_EQ(referenceCgResidual(n, kSeed, iters),
                     code.invokeWith({Value::ofI32(n), Value::ofI32(kSeed),
                                      Value::ofI32(iters)})
                         .asF64());
}

INSTANTIATE_TEST_SUITE_P(Sweep, CgIterSweep,
                         ::testing::Values(std::make_tuple(1, 1), std::make_tuple(2, 3),
                                           std::make_tuple(16, 0), std::make_tuple(33, 5),
                                           std::make_tuple(128, 12)));
