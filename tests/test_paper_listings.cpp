// Fidelity tests tied to the paper's listings, one by one.
//
//   Listing 1: Dif1DSolver — a * (left + right) + b * self, boxed in
//              ScalarFloat.
//   Listing 2: the main-method composition idiom (instantiate components,
//              combine, invoke).
//   Listing 3: the library user's program — PhysDataGen / PhysSolver /
//              jit4mpi / set4MPI / invoke.
//   Listing 4: the library developer's StencilOnGpuAndMPI with @Global
//              runGPU.
//   Listing 5: the structure of the generated CUDA/MPI code.
//   Listing 6: the MPIThread <-> FoxAlgorithm mutual type reference.
#include <gtest/gtest.h>

#include <cmath>

#include "interp/interp.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "runtime/rng_hash.h"
#include "stencil/stencil_lib.h"

using namespace wj;
using namespace wj::dsl;

TEST(PaperListings, Listing1Dif1DSolverFormula) {
    Program p = stencil::buildProgram();
    Interp in(p);
    // float value = a * (left.val() + right.val()) + b * self.val();
    Value solver = in.instantiate("Dif1DSolver", {Value::ofF32(0.25f), Value::ofF32(0.5f)});
    Value left = in.instantiate("ScalarFloat", {Value::ofF32(2.0f)});
    Value right = in.instantiate("ScalarFloat", {Value::ofF32(4.0f)});
    Value selfv = in.instantiate("ScalarFloat", {Value::ofF32(8.0f)});
    Value r = in.call(solver, "solve", {left, right, selfv});
    EXPECT_FLOAT_EQ(0.25f * (2.0f + 4.0f) + 0.5f * 8.0f,
                    in.call(r, "val", {}).asF32());
    // And its printed form reads like the paper's listing.
    const std::string s = printClass(*p.cls("Dif1DSolver"));
    EXPECT_NE(s.find("extends OneDSolver"), std::string::npos);
    EXPECT_NE(s.find("new ScalarFloat(value)"), std::string::npos);
}

namespace {

/// Listings 3-4 user classes, as in examples/quickstart.cpp.
Program listing34Program() {
    ProgramBuilder pb;
    stencil::registerLibrary(pb);
    auto& gen = pb.cls("PhysDataGen").implements("Generator").finalClass();
    gen.method("make", Type::array(Type::f32()))
        .param("length", Type::i32())
        .param("seed", Type::i32())
        .body(blk(decl("a", Type::array(Type::f32()), newArr(Type::f32(), lv("length"))),
                  forRange("i", ci(0), lv("length"),
                           blk(aset(lv("a"), lv("i"),
                                    intr(Intrinsic::RngHashF32, lv("seed"), lv("i"))))),
                  ret(lv("a"))));
    auto& sol = pb.cls("PhysSolver").implements("Solver").finalClass();
    sol.method("solve", Type::f32())
        .param("selfv", Type::f32())
        .param("index", Type::i32())
        .body(blk(ret(mul(cf(0.5f), lv("selfv")))));
    return pb.build();
}

} // namespace

TEST(PaperListings, Listing3ClientProtocol) {
    // Stencil stencil = new StencilOnGpuAndMPI(generator, solver);
    // JitCode code = WootinJ.jit4mpi(stencil, "run", length, updateCnt);
    // code.set4MPI(128, "./nodeList");   code.invoke();
    Program p = listing34Program();
    Interp in(p);
    Value stencilObj = in.instantiate(
        "StencilOnGpuAndMPI",
        {in.instantiate("PhysSolver", {}), in.instantiate("PhysDataGen", {})});
    const int length = 64, updateCnt = 3;
    JitCode code = WootinJ::jit4mpi(p, stencilObj, "run",
                                    {Value::ofI32(length), Value::ofI32(updateCnt)});
    code.set4MPI(2, "./nodeList");
    const double got = code.invoke().asF64();
    double expect = 0;
    for (int rank = 0; rank < 2; ++rank) {
        for (int i = 0; i < length; ++i) {
            float v = wj_rng_hash_f32(rank, i);
            for (int s = 0; s < updateCnt; ++s) v *= 0.5f;
            expect += static_cast<double>(v);
        }
    }
    EXPECT_NEAR(expect, got, 1e-9);
}

TEST(PaperListings, Listing4KernelUsesThreadIdxAndDevirtualizedSolve) {
    Program p = listing34Program();
    const ClassDecl* c = p.cls("StencilOnGpuAndMPI");
    ASSERT_NE(nullptr, c);
    const Method* runGpu = c->ownMethod("runGPU");
    ASSERT_NE(nullptr, runGpu);
    EXPECT_TRUE(runGpu->isGlobal);
    EXPECT_EQ("conf", runGpu->params[0].name);  // CudaConfig first, per the paper
    const std::string s = printMethod(*runGpu, 0);
    EXPECT_NE(s.find("cuda.threadIdx.x()"), std::string::npos);
    EXPECT_NE(s.find("this.solver.solve(array[x], x)"), std::string::npos);
}

TEST(PaperListings, Listing5GeneratedCodeStructure) {
    // The translated code mirrors Listing 5: make() and solve() become
    // plain functions, runGPU becomes a kernel launched over the array, the
    // MPI calls bind directly (no wrappers), and the solver call inside the
    // kernel is a direct (devirtualized) call.
    Program p = listing34Program();
    Interp in(p);
    Value stencilObj = in.instantiate(
        "StencilOnGpuAndMPI",
        {in.instantiate("PhysSolver", {}), in.instantiate("PhysDataGen", {})});
    JitCode code = WootinJ::jit4mpi(p, stencilObj, "run",
                                    {Value::ofI32(8), Value::ofI32(1)});
    const std::string& c = code.generatedC();
    EXPECT_NE(c.find("PhysDataGen_make"), std::string::npos);   // float* make(...)
    EXPECT_NE(c.find("PhysSolver_solve"), std::string::npos);   // __device__ solve(...)
    EXPECT_NE(c.find("wjrt_gpu_launch"), std::string::npos);    // runGPU<<<1, block>>>
    EXPECT_NE(c.find("wjrt_mpi_rank"), std::string::npos);      // MPI_rank(&rank)
    EXPECT_EQ(c.find("(*"), std::string::npos);                 // no indirect calls
    EXPECT_EQ(1, code.kernels());
    EXPECT_GE(code.devirtualizedCalls(), 2);                    // make + solve
}

TEST(PaperListings, Listing6MutualReferenceShape) {
    // class MPIThread implements OuterThread { OuterThreadBody body;
    //   void start(...) { body.run(this, ...); } }
    // class FoxAlgorithm implements OuterThreadBody {
    //   void run(OuterThread thread, ...) { ... } }
    Program p = matmul::buildProgram();
    const ClassDecl* mpiThread = p.cls("MPIThread");
    const ClassDecl* fox = p.cls("FoxAlgorithm");
    ASSERT_NE(nullptr, mpiThread);
    ASSERT_NE(nullptr, fox);
    EXPECT_EQ(Type::cls("OuterThreadBody"), mpiThread->ownField("body")->type);
    EXPECT_EQ(Type::cls("OuterThread"), fox->ownMethod("run")->params[0].type);
    // start() passes `this` into run():
    const std::string s = printMethod(*mpiThread->ownMethod("start"), 0);
    EXPECT_NE(s.find("this.body.run(this,"), std::string::npos);
}

TEST(PaperListings, Section31NoCopyBackSemantics) {
    // "The modified data are not copied back to the original memory space
    // when the translated code terminates."
    Program p = listing34Program();
    Interp in(p);
    Value stencilObj = in.instantiate(
        "StencilOnGpuAndMPI",
        {in.instantiate("PhysSolver", {}), in.instantiate("PhysDataGen", {})});
    JitCode code = WootinJ::jit4mpi(p, stencilObj, "run",
                                    {Value::ofI32(8), Value::ofI32(1)});
    // The receiver graph has no array fields, so nothing to observe mutate;
    // this asserts the invoke contract: repeated invocations are
    // independent (each gets a fresh private memory space).
    const double a = code.invoke().asF64();
    const double b = code.invoke().asF64();
    EXPECT_DOUBLE_EQ(a, b);
}
