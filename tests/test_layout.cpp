// The proveLayout AoS→SoA pass (src/analysis/layout.*) and the WJ_SOA
// codegen path it drives: verdict oracles for every escape/identity rule
// (each Boxed reason must be actionable), the lint-report presentation,
// the vector-prover flip (struct-strided ScalarOnly under AoS becomes
// unit-stride Vectorizable under --soa), and the determinism contract on
// the cell-chain workload — every WJ_SOA/WJ_SIMD/WJ_PARALLEL combination
// must stay bitwise-equal to the serial interpreter.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "interp/interp.h"
#include "ir/builder.h"
#include "jit/jit.h"
#include "stencil/stencil_lib.h"

using namespace wj;
using namespace wj::dsl;

namespace {

/// Scoped setenv (nullptr unsets) that restores the previous value on
/// destruction.
class ScopedEnv {
public:
    ScopedEnv(const char* name, const char* value) : name_(name) {
        if (const char* old = std::getenv(name)) {
            had_ = true;
            old_ = old;
        }
        if (value) setenv(name, value, 1);
        else unsetenv(name);
    }
    ~ScopedEnv() {
        if (had_) setenv(name_, old_.c_str(), 1);
        else unsetenv(name_);
    }

private:
    const char* name_;
    bool had_ = false;
    std::string old_;
};

bool bitEq(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

bool reportHas(const std::vector<std::string>& report, const std::string& needle) {
    for (const auto& line : report) {
        if (line.find(needle) != std::string::npos) return true;
    }
    return false;
}

std::string joined(const std::vector<std::string>& report) {
    std::string s;
    for (const auto& line : report) s += line + "\n";
    return s;
}

/// Registers the canonical SoA candidate: a final two-field class with a
/// field-setter constructor (the shape proveLayout's structure rule wants).
void addPoint(ProgramBuilder& pb) {
    pb.cls("P")
        .finalClass()
        .field("x", Type::f32())
        .field("y", Type::f32())
        .ctor()
        .param("x_", Type::f32())
        .param("y_", Type::f32())
        .body(blk(setSelf("x", lv("x_")), setSelf("y", lv("y_"))));
}

/// `double T.run(int n)` over a `P[]`: fill with fresh objects, fold field
/// paths. Extra statements slot in between fill and fold to plant exactly
/// one escaping use per oracle test.
Program pointProgram(Block extra = {}) {
    ProgramBuilder pb;
    addPoint(pb);
    Block body;
    body.push_back(decl("a", Type::array(Type::cls("P")), newArr(Type::cls("P"), lv("n"))));
    body.push_back(forRange(
        "i", ci(0), lv("n"),
        blk(aset(lv("a"), lv("i"),
                 newObjV("P", exprVec(cast(Type::f32(), lv("i")), cf(2.0f)))))));
    for (auto& s : extra) body.push_back(std::move(s));
    body.push_back(decl("s", Type::f64(), cd(0.0)));
    body.push_back(forRange(
        "i", ci(0), lv("n"),
        blk(assign("s", add(lv("s"),
                            cast(Type::f64(), add(getf(aget(lv("a"), lv("i")), "x"),
                                                  getf(aget(lv("a"), lv("i")), "y"))))))));
    body.push_back(ret(lv("s")));
    pb.cls("T").method("run", Type::f64()).param("n", Type::i32()).body(std::move(body));
    return pb.build();
}

const analysis::ClassLayout& verdictOf(const analysis::Result& r, const std::string& cls) {
    auto it = r.layoutClasses.find(cls);
    EXPECT_NE(it, r.layoutClasses.end()) << "no layout verdict for " << cls;
    static analysis::ClassLayout missing;
    if (it == r.layoutClasses.end()) return missing;
    return it->second;
}

} // namespace

// ---- verdict oracles (lint driver: unknown arguments, no jit boundary) ----

TEST(ProveLayout, CleanFieldPathUseIsCondInlineUnderLint) {
    analysis::Result r = analysis::lintProgram(pointProgram());
    const auto& cl = verdictOf(r, "P");
    EXPECT_EQ(cl.verdict, analysis::LayoutVerdict::CondInline) << cl.reason;
    // Packed SoA plan: two f32 lanes, second at data + len*4.
    ASSERT_EQ(cl.fields.size(), 2u);
    EXPECT_EQ(cl.elemSize, 8);
    EXPECT_EQ(cl.fields[0].pre, 0);
    EXPECT_EQ(cl.fields[1].pre, 4);
    EXPECT_TRUE(reportHas(r.layoutReport, "P: inline (boundary-guarded)"))
        << joined(r.layoutReport);
}

TEST(ProveLayout, ElementBoundToLocalEscapes) {
    analysis::Result r = analysis::lintProgram(pointProgram(
        blk(decl("p", Type::cls("P"), aget(lv("a"), ci(0))),
            exprS(getf(lv("p"), "x")))));
    const auto& cl = verdictOf(r, "P");
    EXPECT_EQ(cl.verdict, analysis::LayoutVerdict::Boxed);
    EXPECT_NE(cl.reason.find("bound to a local variable"), std::string::npos) << cl.reason;
    EXPECT_TRUE(reportHas(r.layoutReport, "P: boxed")) << joined(r.layoutReport);
}

TEST(ProveLayout, IdentityCompareObservesTheAddress) {
    analysis::Result r = analysis::lintProgram(pointProgram(blk(
        decl("same", Type::boolean(), eq(aget(lv("a"), ci(0)), aget(lv("a"), ci(1)))))));
    const auto& cl = verdictOf(r, "P");
    EXPECT_EQ(cl.verdict, analysis::LayoutVerdict::Boxed);
    EXPECT_NE(cl.reason.find("compared by reference identity"), std::string::npos) << cl.reason;
}

TEST(ProveLayout, CallReceiverNeedsAMaterializedObject) {
    // Dispatching a method on a[i] (even a final, devirtualizable one)
    // hands out the element's address as `this`.
    ProgramBuilder pb;
    auto& p = pb.cls("P").finalClass();
    p.field("x", Type::f32()).field("y", Type::f32());
    p.ctor().param("x_", Type::f32()).param("y_", Type::f32()).body(
        blk(setSelf("x", lv("x_")), setSelf("y", lv("y_"))));
    p.method("norm1", Type::f32()).body(blk(ret(add(selff("x"), selff("y")))));
    pb.cls("T").method("run", Type::f64()).param("n", Type::i32()).body(blk(
        decl("a", Type::array(Type::cls("P")), newArr(Type::cls("P"), lv("n"))),
        aset(lv("a"), ci(0), newObjV("P", exprVec(cf(1.0f), cf(2.0f)))),
        ret(cast(Type::f64(), callV(aget(lv("a"), ci(0)), "norm1", {})))));
    analysis::Result r = analysis::lintProgram(pb.build());
    const auto& cl = verdictOf(r, "P");
    EXPECT_EQ(cl.verdict, analysis::LayoutVerdict::Boxed);
    EXPECT_NE(cl.reason.find("receiver of a method call"), std::string::npos) << cl.reason;
}

TEST(ProveLayout, WholeObjectCopyBetweenSlotsIsBoxed) {
    analysis::Result r = analysis::lintProgram(pointProgram(
        blk(aset(lv("a"), ci(1), aget(lv("a"), ci(0))))));
    const auto& cl = verdictOf(r, "P");
    EXPECT_EQ(cl.verdict, analysis::LayoutVerdict::Boxed);
    EXPECT_NE(cl.reason.find("whole-object copy"), std::string::npos) << cl.reason;
}

TEST(ProveLayout, InterfaceElementsHaveNoExactLayout) {
    ProgramBuilder pb;
    pb.cls("I").interfaceClass().method("get", Type::f32()).abstractMethod();
    auto& p = pb.cls("P").finalClass().implements("I");
    p.field("x", Type::f32());
    p.ctor().param("x_", Type::f32()).body(blk(setSelf("x", lv("x_"))));
    p.method("get", Type::f32()).body(blk(ret(selff("x"))));
    pb.cls("T").method("run", Type::i32()).param("n", Type::i32()).body(blk(
        decl("a", Type::array(Type::cls("I")), newArr(Type::cls("I"), lv("n"))),
        aset(lv("a"), ci(0), newObjV("P", exprVec(cf(1.0f)))),
        ret(lv("n"))));
    analysis::Result r = analysis::lintProgram(pb.build());
    const auto& cl = verdictOf(r, "I");
    EXPECT_EQ(cl.verdict, analysis::LayoutVerdict::Boxed);
    EXPECT_NE(cl.reason.find("interface-typed elements"), std::string::npos) << cl.reason;
}

TEST(ProveLayout, NonPrimitiveFieldBlocksTheSplit) {
    ProgramBuilder pb;
    addPoint(pb);
    auto& q = pb.cls("Q").finalClass();
    q.field("p", Type::cls("P"));
    q.ctor().param("p_", Type::cls("P")).body(blk(setSelf("p", lv("p_"))));
    pb.cls("T").method("run", Type::i32()).param("n", Type::i32()).body(blk(
        decl("a", Type::array(Type::cls("Q")), newArr(Type::cls("Q"), lv("n"))),
        aset(lv("a"), ci(0), newObjV("Q", exprVec(newObjV("P", exprVec(cf(1.0f), cf(2.0f)))))),
        ret(lv("n"))));
    analysis::Result r = analysis::lintProgram(pb.build());
    const auto& cl = verdictOf(r, "Q");
    EXPECT_EQ(cl.verdict, analysis::LayoutVerdict::Boxed);
    EXPECT_NE(cl.reason.find("is not primitive"), std::string::npos) << cl.reason;
}

// ---- entry driver: the jit() boundary boxes marshalled arrays ------------

TEST(ProveLayout, EntryDriverPromotesInternalArraysToInline) {
    Program p = pointProgram();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    analysis::Result r =
        analysis::analyzeEntry(p, obj, "run", {Value::ofI32(64)});
    const auto& cl = verdictOf(r, "P");
    // The P[] lives and dies inside run(): no boundary crossing, so the
    // entry driver upgrades lint's CondInline to Inline.
    EXPECT_EQ(cl.verdict, analysis::LayoutVerdict::Inline) << cl.reason;
    EXPECT_TRUE(reportHas(r.layoutReport, "P: inline --")) << joined(r.layoutReport);
}

TEST(ProveLayout, CellWorkloadVerdicts) {
    Program p = stencil::buildProgram();
    Interp in(p);
    Value runner = stencil::makeCellRunner(in, 64, 0.25f, 0.5f, 11);
    analysis::Result r =
        analysis::analyzeEntry(p, runner, "run", {Value::ofI32(3)});
    const auto& cl = verdictOf(r, "Cell");
    EXPECT_EQ(cl.verdict, analysis::LayoutVerdict::Inline) << cl.reason;
    ASSERT_EQ(cl.fields.size(), 6u);
    EXPECT_EQ(cl.elemSize, 24);  // six packed f32 lanes
}

// ---- the vector-prover flip: ScalarOnly under AoS, Vectorizable with --soa

TEST(ProveLayout, ElementLoopsFlipToVectorizableUnderSoa) {
    Program p = stencil::buildProgram();
    Interp in(p);
    Value runner = stencil::makeCellRunner(in, 64, 0.25f, 0.5f, 11);
    {
        ScopedEnv off("WJ_SOA", "0");
        analysis::Result r = analysis::analyzeEntry(p, runner, "run", {Value::ofI32(3)});
        EXPECT_TRUE(reportHas(r.vectorReport,
                              "are struct-strided under AoS -- vectorizable under --soa"))
            << joined(r.vectorReport);
        EXPECT_FALSE(reportHas(r.vectorReport, "unit-stride via the SoA layout"));
    }
    {
        ScopedEnv on("WJ_SOA", "1");
        analysis::Result r = analysis::analyzeEntry(p, runner, "run", {Value::ofI32(3)});
        EXPECT_TRUE(reportHas(r.vectorReport, "unit-stride via the SoA layout of 'Cell[]'"))
            << joined(r.vectorReport);
        EXPECT_FALSE(reportHas(r.vectorReport, "vectorizable under --soa"));
    }
}

TEST(ProveLayout, BoxedElementLoopsStayScalarWithActionableReason) {
    // The escaping local boxes P, so even under WJ_SOA=1 the fold loop
    // must refuse with the layout reason attached.
    ScopedEnv on("WJ_SOA", "1");
    Program p = pointProgram(blk(decl("p0", Type::cls("P"), aget(lv("a"), ci(0))),
                                 exprS(getf(lv("p0"), "x"))));
    Interp in(p);
    Value obj = in.instantiate("T", {});
    analysis::Result r = analysis::analyzeEntry(p, obj, "run", {Value::ofI32(64)});
    EXPECT_TRUE(reportHas(r.vectorReport, "must stay AoS")) << joined(r.vectorReport);
    EXPECT_TRUE(reportHas(r.vectorReport, "layout:")) << joined(r.vectorReport);
}

// ---- determinism: every SoA configuration bitwise-equal to the interp ----

namespace {

double interpCells(int n, int steps) {
    Program p = stencil::buildProgram();
    Interp in(p);
    Value runner = stencil::makeCellRunner(in, n, 0.25f, 0.5f, 11);
    return in.call(runner, "run", {Value::ofI32(steps)}).asF64();
}

double jitCells(int n, int steps) {
    Program p = stencil::buildProgram();
    Interp in(p);
    Value runner = stencil::makeCellRunner(in, n, 0.25f, 0.5f, 11);
    JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(steps)});
    return code.invoke().asF64();
}

} // namespace

TEST(SoaDifferential, CellChainMatchesReferenceEverywhere) {
    ScopedEnv pinB("WJ_BOUNDS", nullptr);
    ScopedEnv pinP("WJ_PARALLEL", nullptr);
    ScopedEnv pinT("WJ_THREADS", nullptr);
    ScopedEnv pinS("WJ_SIMD", nullptr);
    ScopedEnv pinL("WJ_SOA", nullptr);
    const int n = 513, steps = 5;  // odd n: asymmetric halves, exercises swap parity
    const double ref = stencil::referenceCellChain(n, 0.25f, 0.5f, 11, steps);
    const double interp = interpCells(n, steps);
    ASSERT_TRUE(bitEq(interp, ref)) << interp << " vs " << ref;

    EXPECT_TRUE(bitEq(jitCells(n, steps), ref)) << "jit (AoS)";
    {
        ScopedEnv soa("WJ_SOA", "1");
        EXPECT_TRUE(bitEq(jitCells(n, steps), ref)) << "jit+soa";
    }
    {
        ScopedEnv soa("WJ_SOA", "1");
        ScopedEnv simd("WJ_SIMD", "1");
        EXPECT_TRUE(bitEq(jitCells(n, steps), ref)) << "jit+soa+simd";
    }
    {
        ScopedEnv soa("WJ_SOA", "1");
        ScopedEnv simd("WJ_SIMD", "1");
        ScopedEnv par("WJ_PARALLEL", "1");
        ScopedEnv th("WJ_THREADS", "4");
        EXPECT_TRUE(bitEq(jitCells(n, steps), ref)) << "jit+par+simd+soa@4";
    }
}

TEST(SoaDifferential, LaneProjectionProbeMatchesTheInterpreterEverywhere) {
    // The probe kernel reads only the `u` lane of the six-field record —
    // the workload the layout split exists for. Its checksum must be
    // bitwise-identical across every layout/simd configuration.
    ScopedEnv pinB("WJ_BOUNDS", nullptr);
    ScopedEnv pinP("WJ_PARALLEL", nullptr);
    ScopedEnv pinS("WJ_SIMD", nullptr);
    ScopedEnv pinL("WJ_SOA", nullptr);
    const int n = 513, steps = 5;
    Program p = stencil::buildProgram();
    Interp in(p);
    Value runner = stencil::makeCellRunner(in, n, 0.25f, 0.5f, 11);
    const std::vector<Value> args = {Value::ofI32(steps)};
    const double ref = in.call(runner, "probe", args).asF64();

    const auto jitProbe = [&] {
        return WootinJ::jit(p, runner, "probe", args).invoke().asF64();
    };
    EXPECT_TRUE(bitEq(jitProbe(), ref)) << "jit (AoS)";
    {
        ScopedEnv soa("WJ_SOA", "1");
        EXPECT_TRUE(bitEq(jitProbe(), ref)) << "jit+soa";
    }
    {
        ScopedEnv soa("WJ_SOA", "1");
        ScopedEnv simd("WJ_SIMD", "1");
        EXPECT_TRUE(bitEq(jitProbe(), ref)) << "jit+soa+simd";
    }
}

TEST(SoaDifferential, TranslatorReportsTheSplit) {
    ScopedEnv pinS("WJ_SIMD", nullptr);
    Program p = stencil::buildProgram();
    Interp in(p);
    Value runner = stencil::makeCellRunner(in, 64, 0.25f, 0.5f, 11);
    {
        ScopedEnv off("WJ_SOA", nullptr);
        JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(2)});
        EXPECT_EQ(code.soaArrays(), 0);
        EXPECT_TRUE(code.layoutClasses().empty());
        EXPECT_EQ(code.generatedC().find("wjrt_alloc_soa"), std::string::npos);
    }
    {
        ScopedEnv on("WJ_SOA", "1");
        JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(2)});
        EXPECT_EQ(code.soaArrays(), 2) << "cur and nxt allocations";
        ASSERT_EQ(code.layoutClasses().size(), 1u);
        EXPECT_EQ(code.layoutClasses()[0], "Cell");
        EXPECT_NE(code.generatedC().find("wjrt_alloc_soa"), std::string::npos);
    }
}

TEST(SoaDifferential, SoaComposesWithSimdVectorization) {
    ScopedEnv soa("WJ_SOA", "1");
    ScopedEnv simd("WJ_SIMD", "1");
    Program p = stencil::buildProgram();
    Interp in(p);
    Value runner = stencil::makeCellRunner(in, 256, 0.25f, 0.5f, 11);
    JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(2)});
    // fill + interior sweep must vectorize once the layout is unit-stride
    // (the f64 checksum fold stays on the exact serial accumulator path).
    EXPECT_GE(code.vectorLoops(), 2) << code.generatedC();
    EXPECT_EQ(code.soaArrays(), 2);
}
