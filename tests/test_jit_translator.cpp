// Translator internals: shape derivation, specialization, object inlining
// evidence in the generated C, entry marshalling, and rejection paths.
#include <gtest/gtest.h>

#include "interp/interp.h"
#include "ir/builder.h"
#include "jit/jit.h"
#include "jit/shape.h"

using namespace wj;
using namespace wj::dsl;

// ----------------------------------------------------------------- shapes

namespace {

Program shapeProgram() {
    ProgramBuilder pb;
    pb.cls("I").interfaceClass();
    auto& a = pb.cls("A").implements("I").finalClass().field("x", Type::f32());
    a.ctor().param("x_", Type::f32()).body(blk(setSelf("x", lv("x_"))));
    auto& b = pb.cls("B").implements("I").finalClass().field("y", Type::i64());
    b.ctor().param("y_", Type::i64()).body(blk(setSelf("y", lv("y_"))));
    auto& h = pb.cls("Holder").field("i", Type::cls("I")).field("arr", Type::array(Type::f32()));
    h.ctor().param("i_", Type::cls("I")).body(blk(setSelf("i", lv("i_"))));
    return pb.build();
}

} // namespace

TEST(Shape, StrictFinalShapeFromTypeAlone) {
    Program p = shapeProgram();
    ShapeTable st(p);
    const Shape* s = st.ofType(Type::cls("A"));
    ASSERT_TRUE(s->isObject());
    EXPECT_EQ("A", s->cls().name);
    ASSERT_EQ(1u, s->fields().size());
    EXPECT_TRUE(s->field("x")->isPrim());
}

TEST(Shape, InterningGivesPointerEquality) {
    Program p = shapeProgram();
    ShapeTable st(p);
    EXPECT_EQ(st.ofType(Type::cls("A")), st.ofType(Type::cls("A")));
    EXPECT_EQ(st.ofPrim(Prim::F64), st.ofPrim(Prim::F64));
    EXPECT_NE(st.ofType(Type::cls("A")), st.ofType(Type::cls("B")));
    EXPECT_EQ(st.ofArray(Type::f32()), st.ofArray(Type::f32()));
}

TEST(Shape, FromValueCapturesDynamicType) {
    Program p = shapeProgram();
    Interp in(p);
    ShapeTable st(p);
    Value holder = in.instantiate("Holder", {in.instantiate("A", {Value::ofF32(1.f)})});
    const Shape* s = st.ofValue(holder);
    EXPECT_EQ("Holder", s->cls().name);
    EXPECT_EQ("A", s->field("i")->cls().name);  // exact class, not the interface
    EXPECT_TRUE(s->field("arr")->isArray());    // null array field: shape from type
}

TEST(Shape, NullObjectFieldRejected) {
    ProgramBuilder pb;
    pb.cls("I").interfaceClass();
    pb.cls("H").field("i", Type::cls("I"));  // implicit ctor leaves it null
    Program p = pb.build();
    Interp in(p);
    ShapeTable st(p);
    Value h = in.instantiate("H", {});
    EXPECT_THROW(st.ofValue(h), UsageError);
}

TEST(Shape, KeyDistinguishesFieldShapes) {
    Program p = shapeProgram();
    Interp in(p);
    ShapeTable st(p);
    Value ha = in.instantiate("Holder", {in.instantiate("A", {Value::ofF32(0)})});
    Value hb = in.instantiate("Holder", {in.instantiate("B", {Value::ofI64(0)})});
    EXPECT_NE(st.ofValue(ha), st.ofValue(hb));
    EXPECT_NE(st.ofValue(ha)->key(), st.ofValue(hb)->key());
}

// ----------------------------------------------------------- specialization

namespace {

Program polyProgram() {
    ProgramBuilder pb;
    pb.cls("Op").interfaceClass().method("apply", Type::f64()).param("v", Type::f64())
        .abstractMethod();
    auto& dbl = pb.cls("Doubler").implements("Op").finalClass();
    dbl.method("apply", Type::f64()).param("v", Type::f64()).body(blk(ret(mul(lv("v"), cd(2)))));
    auto& sq = pb.cls("Squarer").implements("Op").finalClass();
    sq.method("apply", Type::f64()).param("v", Type::f64()).body(blk(ret(mul(lv("v"), lv("v")))));
    auto& r = pb.cls("Pair").field("first", Type::cls("Op")).field("second", Type::cls("Op"));
    r.ctor()
        .param("a", Type::cls("Op"))
        .param("b", Type::cls("Op"))
        .body(blk(setSelf("first", lv("a")), setSelf("second", lv("b"))));
    // run applies both and a shared helper once per op: the helper method is
    // specialized per receiver shape.
    r.method("applyOne", Type::f64())
        .param("op", Type::cls("Op"))
        .param("v", Type::f64())
        .body(blk(ret(call(lv("op"), "apply", lv("v")))));
    r.method("run", Type::f64())
        .param("v", Type::f64())
        .body(blk(ret(add(call(self(), "applyOne", selff("first"), lv("v")),
                          call(self(), "applyOne", selff("second"), lv("v"))))));
    return pb.build();
}

} // namespace

TEST(Translator, SpecializesPerArgumentShape) {
    Program p = polyProgram();
    Interp in(p);
    Value pair = in.instantiate("Pair",
                                {in.instantiate("Doubler", {}), in.instantiate("Squarer", {})});
    JitCode code = WootinJ::jit(p, pair, "run", {Value::ofF64(3.0)});
    // 2*3 + 3*3 = 15
    EXPECT_DOUBLE_EQ(15.0, code.invoke().asF64());
    // applyOne must appear twice (Doubler-shaped and Squarer-shaped args),
    // so: run + 2x applyOne + Doubler.apply + Squarer.apply = 5 functions.
    EXPECT_EQ(5, code.specializations());
    EXPECT_NE(code.generatedC().find("Doubler_apply"), std::string::npos);
    EXPECT_NE(code.generatedC().find("Squarer_apply"), std::string::npos);
}

TEST(Translator, SameShapeSharesSpecialization) {
    Program p = polyProgram();
    Interp in(p);
    Value pair = in.instantiate("Pair",
                                {in.instantiate("Doubler", {}), in.instantiate("Doubler", {})});
    JitCode code = WootinJ::jit(p, pair, "run", {Value::ofF64(3.0)});
    EXPECT_DOUBLE_EQ(12.0, code.invoke().asF64());
    // run + ONE applyOne + Doubler.apply.
    EXPECT_EQ(3, code.specializations());
}

TEST(Translator, ObjectInliningLeavesNoHeapObjects) {
    Program p = polyProgram();
    Interp in(p);
    Value pair = in.instantiate("Pair",
                                {in.instantiate("Doubler", {}), in.instantiate("Squarer", {})});
    JitCode code = WootinJ::jit(p, pair, "run", {Value::ofF64(1.0)});
    const std::string& c = code.generatedC();
    // Only arrays may allocate; this program has none.
    EXPECT_EQ(c.find("wjrt_alloc_array"), std::string::npos);
    EXPECT_EQ(c.find("malloc"), std::string::npos);
}

TEST(Translator, StaticFieldsBecomeConstants) {
    ProgramBuilder pb;
    auto& t = pb.cls("T").staticConstI32("LIMIT", 17);
    t.method("f", Type::i32()).body(blk(ret(sget("T", "LIMIT"))));
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    JitCode code = WootinJ::jit(p, obj, "f", {});
    EXPECT_EQ(17, code.invoke().asI32());
    EXPECT_NE(code.generatedC().find("static const int32_t SC_T_LIMIT = 17"), std::string::npos);
}

TEST(Translator, ReceiverPrimitivesBakedIn) {
    ProgramBuilder pb;
    auto& t = pb.cls("T").field("bias", Type::f64());
    t.ctor().param("b", Type::f64()).body(blk(setSelf("bias", lv("b"))));
    t.method("f", Type::f64()).body(blk(ret(selff("bias"))));
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("T", {Value::ofF64(2.5)});
    JitCode code = WootinJ::jit(p, obj, "f", {});
    EXPECT_DOUBLE_EQ(2.5, code.invoke().asF64());
    // 2.5 == 0x1.4p+1 appears as a baked literal in the entry.
    EXPECT_NE(code.generatedC().find("0x1.4p+1"), std::string::npos);
}

// --------------------------------------------------------------- rejection

TEST(Translator, RefusesRuleViolatingProgram) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("f", Type::i32()).param("p", Type::i32())
        .body(blk(ret(ternary(gt(lv("p"), ci(0)), ci(1), ci(0)))));
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    EXPECT_THROW(WootinJ::jit(p, obj, "f", {Value::ofI32(1)}), RuleViolationError);
}

TEST(Translator, RefusesNonWootinJReceiver) {
    ProgramBuilder pb;
    pb.cls("T").notWootinJ().method("f", Type::i32()).body(blk(ret(ci(1))));
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    EXPECT_THROW(WootinJ::jit(p, obj, "f", {}), UsageError);
}

TEST(Translator, RefusesObjectReturningEntry) {
    ProgramBuilder pb;
    auto& v = pb.cls("V").finalClass().field("x", Type::i32());
    v.ctor().param("x_", Type::i32()).body(blk(setSelf("x", lv("x_"))));
    auto& t = pb.cls("T");
    t.method("f", Type::cls("V")).body(blk(ret(newObj("V", ci(1)))));
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    EXPECT_THROW(WootinJ::jit(p, obj, "f", {}), UsageError);
}

TEST(Translator, RefusesGlobalEntry) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("k", Type::voidTy()).global().param("conf", Type::cls("CudaConfig"))
        .body(blk(retVoid()));
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    EXPECT_THROW(WootinJ::jit(p, obj, "k", {in.instantiate("CudaConfig", {
        in.instantiate("dim3", {Value::ofI32(1), Value::ofI32(1), Value::ofI32(1)}),
        in.instantiate("dim3", {Value::ofI32(1), Value::ofI32(1), Value::ofI32(1)}),
        Value::ofI32(0)})}), UsageError);
}

TEST(Translator, RefusesMpiIntrinsicInsideKernel) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("k", Type::voidTy()).global().param("conf", Type::cls("CudaConfig"))
        .body(blk(exprS(intr(Intrinsic::MpiBarrier)), retVoid()));
    t.method("go", Type::voidTy())
        .body(blk(exprS(call(self(), "k", cudaConfig(dim3of(ci(1)), dim3of(ci(1)), ci(0)))),
                  retVoid()));
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    EXPECT_THROW(WootinJ::jit(p, obj, "go", {}), UsageError);
}

TEST(Translator, RefusesDeviceIntrinsicOnHost) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("f", Type::i32()).body(blk(ret(tidxX())));
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    EXPECT_THROW(WootinJ::jit(p, obj, "f", {}), UsageError);
}

// --------------------------------------------------------------- marshalling

TEST(JitApi, ArrayArgumentsCrossTheBoundary) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("sum", Type::f64())
        .param("a", Type::array(Type::f32()))
        .body(blk(decl("s", Type::f64(), cd(0)),
                  forRange("i", ci(0), alen(lv("a")),
                           blk(assign("s", add(lv("s"), cast(Type::f64(), aget(lv("a"), lv("i"))))))),
                  ret(lv("s"))));
    Program p = pb.build();
    Interp in(p);
    Value arr = in.newArray(Type::f32(), 4);
    for (int i = 0; i < 4; ++i) arr.asArr()->data[static_cast<size_t>(i)] = Value::ofF32(i + 1.f);
    Value obj = in.instantiate("T", {});
    JitCode code = WootinJ::jit(p, obj, "sum", {arr});
    EXPECT_DOUBLE_EQ(10.0, code.invoke().asF64());
}

TEST(JitApi, NoCopyBackByDefault) {
    // Paper Section 3.1: "The modified data are not copied back."
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("scribble", Type::voidTy())
        .param("a", Type::array(Type::f32()))
        .body(blk(aset(lv("a"), ci(0), cf(99.0f)), retVoid()));
    Program p = pb.build();
    Interp in(p);
    Value arr = in.newArray(Type::f32(), 2);
    Value obj = in.instantiate("T", {});
    JitCode code = WootinJ::jit(p, obj, "scribble", {arr});
    code.invoke();
    EXPECT_FLOAT_EQ(0.0f, arr.asArr()->data[0].asF32());
    // ...unless the copy-back extension is enabled.
    code.enableCopyBack(true);
    code.invoke();
    EXPECT_FLOAT_EQ(99.0f, arr.asArr()->data[0].asF32());
}

TEST(JitApi, Set4MpiValidation) {
    Program p = polyProgram();
    Interp in(p);
    Value pair = in.instantiate("Pair",
                                {in.instantiate("Doubler", {}), in.instantiate("Doubler", {})});
    JitCode code = WootinJ::jit(p, pair, "run", {Value::ofF64(1.0)});
    EXPECT_THROW(code.set4MPI(4), UsageError);  // jit(), not jit4mpi()
    JitCode mcode = WootinJ::jit4mpi(p, pair, "run", {Value::ofF64(1.0)});
    EXPECT_THROW(mcode.set4MPI(0), UsageError);
    mcode.set4MPI(2);
    mcode.enableCopyBack(true);
    EXPECT_THROW(mcode.invoke(), UsageError);  // copy-back undefined for ranks > 1
    mcode.enableCopyBack(false);
    EXPECT_DOUBLE_EQ(4.0, mcode.invoke().asF64());  // rank 0's result
}

TEST(JitApi, InvokeWithWrongArityRejected) {
    Program p = polyProgram();
    Interp in(p);
    Value pair = in.instantiate("Pair",
                                {in.instantiate("Doubler", {}), in.instantiate("Doubler", {})});
    JitCode code = WootinJ::jit(p, pair, "run", {Value::ofF64(1.0)});
    EXPECT_THROW(code.invokeWith({}), UsageError);
    EXPECT_THROW(code.invokeWith({Value::ofF64(1.0), Value::ofF64(2.0)}), UsageError);
}

class ReturnKinds : public ::testing::TestWithParam<int> {};

TEST_P(ReturnKinds, AllPrimitiveReturnsRoundTrip) {
    // Entry methods may return any primitive; the bit-cast slot must round
    // trip exactly.
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    switch (GetParam()) {
    case 0: t.method("f", Type::boolean()).body(blk(ret(cb(true)))); break;
    case 1: t.method("f", Type::i32()).body(blk(ret(ci(-123456789)))); break;
    case 2: t.method("f", Type::i64()).body(blk(ret(cl(int64_t(1) << 40)))); break;
    case 3: t.method("f", Type::f32()).body(blk(ret(cf(1.5f)))); break;
    case 4: t.method("f", Type::f64()).body(blk(ret(cd(-2.25e-3)))); break;
    }
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    JitCode code = WootinJ::jit(p, obj, "f", {});
    Value got = code.invoke();
    switch (GetParam()) {
    case 0: EXPECT_TRUE(got.asBool()); break;
    case 1: EXPECT_EQ(-123456789, got.asI32()); break;
    case 2: EXPECT_EQ(int64_t(1) << 40, got.asI64()); break;
    case 3: EXPECT_FLOAT_EQ(1.5f, got.asF32()); break;
    case 4: EXPECT_DOUBLE_EQ(-2.25e-3, got.asF64()); break;
    }
}

INSTANTIATE_TEST_SUITE_P(All, ReturnKinds, ::testing::Range(0, 5));
