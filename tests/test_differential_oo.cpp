// Differential fuzzing of the OBJECT-ORIENTED surface: random component
// compositions (interface + N implementations + a pipeline class holding
// interface-typed fields), run on the interpreter and through the JIT.
// This hammers exactly what the paper optimizes: dynamic dispatch sites
// whose receivers are fixed by composition, constructor-baked state, and
// per-shape specialization.
//
// Also cross-validates the two GPU execution paths: the interpreter's
// sequential device emulation against GpuSim via the JIT.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "interp/interp.h"
#include "ir/builder.h"
#include "jit/jit.h"
#include "stencil/stencil_lib.h"
#include "support/prng.h"

using namespace wj;
using namespace wj::dsl;

namespace {

/// Builds a program with `nImpls` random Op implementations and a Pipeline
/// of `nSlots` interface-typed fields; returns it plus the chosen impl
/// index per slot (driven by `seed`).
struct OoCase {
    Program prog;
    std::vector<int> slots;
    int nImpls;
};

ExprPtr randomBody(SplitMix64& rng, int depth) {
    // Over locals "v" (the f64 parameter) and "c" (this.c, ctor-baked).
    if (depth <= 0 || rng.nextBelow(3) == 0) {
        switch (rng.nextBelow(3)) {
        case 0: return lv("v");
        case 1: return selff("c");
        default: return cd(rng.nextDouble() * 4.0 - 2.0);
        }
    }
    switch (rng.nextBelow(4)) {
    case 0: return add(randomBody(rng, depth - 1), randomBody(rng, depth - 1));
    case 1: return sub(randomBody(rng, depth - 1), randomBody(rng, depth - 1));
    case 2: return mul(randomBody(rng, depth - 1), randomBody(rng, depth - 1));
    default:
        return divE(randomBody(rng, depth - 1), cd(1.5 + rng.nextDouble() * 2.0));
    }
}

OoCase makeCase(uint64_t seed) {
    SplitMix64 rng(seed);
    const int nImpls = 2 + static_cast<int>(rng.nextBelow(4));   // 2..5
    const int nSlots = 1 + static_cast<int>(rng.nextBelow(5));   // 1..5

    ProgramBuilder pb;
    pb.cls("Op").interfaceClass().method("apply", Type::f64()).param("v", Type::f64())
        .abstractMethod();
    for (int i = 0; i < nImpls; ++i) {
        auto& c = pb.cls("Impl" + std::to_string(i)).implements("Op").finalClass();
        c.field("c", Type::f64());
        c.ctor().param("c_", Type::f64()).body(blk(setSelf("c", lv("c_"))));
        c.method("apply", Type::f64()).param("v", Type::f64())
            .body(blk(ret(randomBody(rng, 3))));
    }
    auto& pipe = pb.cls("Pipeline");
    {
        auto& ct = pipe.ctor();
        Block body;
        for (int s = 0; s < nSlots; ++s) {
            pipe.field("op" + std::to_string(s), Type::cls("Op"));
            ct.param("p" + std::to_string(s), Type::cls("Op"));
            body.push_back(setSelf("op" + std::to_string(s), lv("p" + std::to_string(s))));
        }
        ct.body(std::move(body));
    }
    {
        Block body;
        body.push_back(decl("acc", Type::f64(), lv("v")));
        for (int s = 0; s < nSlots; ++s) {
            body.push_back(assign("acc", call(selff("op" + std::to_string(s)), "apply",
                                              lv("acc"))));
        }
        body.push_back(ret(lv("acc")));
        pipe.method("run", Type::f64()).param("v", Type::f64()).body(std::move(body));
    }

    OoCase out{pb.build(), {}, nImpls};
    for (int s = 0; s < nSlots; ++s) {
        out.slots.push_back(static_cast<int>(rng.nextBelow(static_cast<uint64_t>(nImpls))));
    }
    return out;
}

} // namespace

class OoDifferential : public ::testing::TestWithParam<int> {};

TEST_P(OoDifferential, RandomCompositionsAgreeBitwise) {
    const uint64_t seed = static_cast<uint64_t>(GetParam()) * 77771u + 13;
    OoCase c = makeCase(seed);
    Interp in(c.prog);
    SplitMix64 rng(seed ^ 0xabcdef);

    std::vector<Value> args;
    for (int implIdx : c.slots) {
        args.push_back(in.instantiate("Impl" + std::to_string(implIdx),
                                      {Value::ofF64(rng.nextDouble() * 2.0 - 1.0)}));
    }
    Value pipeline = in.instantiate("Pipeline", args);

    JitCode code = WootinJ::jit(c.prog, pipeline, "run", {Value::ofF64(0.0)});
    for (double v : {0.0, 1.0, -0.75, 3.5}) {
        const double iv = in.call(pipeline, "run", {Value::ofF64(v)}).asF64();
        const double jv = code.invokeWith({Value::ofF64(v)}).asF64();
        if (std::isnan(iv)) {
            EXPECT_TRUE(std::isnan(jv)) << "seed=" << seed;
        } else {
            EXPECT_DOUBLE_EQ(iv, jv) << "seed=" << seed << " v=" << v;
        }
    }
    // Re-composition with different impls must translate independently and
    // still agree (new shapes -> new specializations).
    std::vector<Value> args2;
    for (size_t s = 0; s < c.slots.size(); ++s) {
        const int rotated = (c.slots[s] + 1) % c.nImpls;
        args2.push_back(in.instantiate("Impl" + std::to_string(rotated),
                                       {Value::ofF64(0.5)}));
    }
    Value pipeline2 = in.instantiate("Pipeline", args2);
    JitCode code2 = WootinJ::jit(c.prog, pipeline2, "run", {Value::ofF64(2.0)});
    EXPECT_DOUBLE_EQ(in.call(pipeline2, "run", {Value::ofF64(2.0)}).asF64(),
                     code2.invoke().asF64())
        << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OoDifferential, ::testing::Range(0, 16));

// ------------------------------------------------- GPU path cross-check

TEST(GpuCrossCheck, InterpEmulationMatchesGpuSimForStencil) {
    // The stencil GPU runner's kernel has no barriers, so BOTH GPU paths can
    // run it: the interpreter's sequential device emulation and the real
    // GpuSim through the JIT. They must agree bit-for-bit.
    using namespace wj::stencil;
    Program p = buildProgram();
    Interp::Options opts;
    opts.deviceEmulation = true;
    Interp emu(p, opts);
    const auto c = DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    Value runner = makeGpuRunner(emu, 6, 6, 6, c, 3, 16);
    const double viaEmulation = emu.call(runner, "run", {Value::ofI32(2)}).asF64();

    JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(2)});
    const double viaGpuSim = code.invoke().asF64();
    EXPECT_DOUBLE_EQ(viaEmulation, viaGpuSim);
    EXPECT_DOUBLE_EQ(referenceDiffusion3D(6, 6, 6, c, 3, 2), viaGpuSim);
}
