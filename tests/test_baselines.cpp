// The comparator programs must compute bit-identical checksums: time is
// the only thing the benches should be comparing (paper Section 4).
#include <gtest/gtest.h>

#include "baselines/diffusion_baselines.h"
#include "baselines/matmul_baselines.h"
#include "matmul/matmul_lib.h"
#include "stencil/stencil_lib.h"

using namespace wj;
using namespace wj::baselines;

TEST(Baselines, DiffusionVariantsAgreeBitwise) {
    const auto c = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    const double expect = stencil::referenceDiffusion3D(12, 10, 8, c, 3, 4);
    EXPECT_DOUBLE_EQ(expect, diffusionC(12, 10, 8, c, 3, 4));
    EXPECT_DOUBLE_EQ(expect, diffusionVirtual(12, 10, 8, c, 3, 4));
    EXPECT_DOUBLE_EQ(expect, diffusionTemplate(12, 10, 8, c, 3, 4));
    EXPECT_DOUBLE_EQ(expect, diffusionTemplateNoVirt(12, 10, 8, c, 3, 4));
}

TEST(Baselines, MatmulVariantsAgreeBitwise) {
    const double expect = matmul::referenceMatMulChecksum(24, 5, 6);
    EXPECT_DOUBLE_EQ(expect, matmulC(24, 5, 6));
    EXPECT_DOUBLE_EQ(expect, matmulVirtual(24, 5, 6));
    EXPECT_DOUBLE_EQ(expect, matmulTemplate(24, 5, 6));
    EXPECT_DOUBLE_EQ(expect, matmulTemplateNoVirt(24, 5, 6));
}

class DiffusionSizes : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(DiffusionSizes, AllVariantsAgree) {
    auto [nx, ny, nz, steps] = GetParam();
    const auto c = stencil::DiffusionCoeffs::forKappa(0.2f, 0.05f, 1.0f);
    const double expect = stencil::referenceDiffusion3D(nx, ny, nz, c, 9, steps);
    EXPECT_DOUBLE_EQ(expect, diffusionC(nx, ny, nz, c, 9, steps));
    EXPECT_DOUBLE_EQ(expect, diffusionVirtual(nx, ny, nz, c, 9, steps));
    EXPECT_DOUBLE_EQ(expect, diffusionTemplate(nx, ny, nz, c, 9, steps));
    EXPECT_DOUBLE_EQ(expect, diffusionTemplateNoVirt(nx, ny, nz, c, 9, steps));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DiffusionSizes,
                         ::testing::Values(std::make_tuple(1, 1, 1, 1),
                                           std::make_tuple(2, 3, 4, 2),
                                           std::make_tuple(16, 16, 16, 1),
                                           std::make_tuple(5, 7, 11, 3),
                                           std::make_tuple(8, 8, 8, 0)));

class MatmulSizes : public ::testing::TestWithParam<int> {};

TEST_P(MatmulSizes, AllVariantsAgree) {
    const int n = GetParam();
    const double expect = matmul::referenceMatMulChecksum(n, 1, 2);
    EXPECT_DOUBLE_EQ(expect, matmulC(n, 1, 2));
    EXPECT_DOUBLE_EQ(expect, matmulVirtual(n, 1, 2));
    EXPECT_DOUBLE_EQ(expect, matmulTemplate(n, 1, 2));
    EXPECT_DOUBLE_EQ(expect, matmulTemplateNoVirt(n, 1, 2));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatmulSizes, ::testing::Values(1, 2, 3, 8, 17, 32));
