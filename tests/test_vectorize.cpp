// The vectorization-legality prover (proveVectors, src/analysis/) and the
// WJ_SIMD codegen path it drives: unit-stride/alias/effect audits on every
// innermost counted loop, `#pragma omp simd` emission with restrict-hoisted
// element pointers, byte-range overlap guards with a scalar fallback, and
// the determinism contract — WJ_SIMD=1 output must stay bitwise-equal to
// the scalar translation (no float reassociation without an exact-operator
// reduction clause).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "cg/cg_lib.h"
#include "interp/interp.h"
#include "ir/builder.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "stencil/stencil_lib.h"
#include "trace/metrics.h"

using namespace wj;
using namespace wj::dsl;

namespace {

/// Scoped setenv that restores the previous value on destruction.
class ScopedEnv {
public:
    ScopedEnv(const char* name, const char* value) : name_(name) {
        if (const char* old = std::getenv(name)) {
            had_ = true;
            old_ = old;
        }
        setenv(name, value, 1);
    }
    ~ScopedEnv() {
        if (had_) setenv(name_, old_.c_str(), 1);
        else unsetenv(name_);
    }

private:
    const char* name_;
    bool had_ = false;
    std::string old_;
};

bool bitEq(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

bool vectorReportHas(const analysis::Result& r, const std::string& needle) {
    for (const auto& line : r.vectorReport) {
        if (line.find(needle) != std::string::npos) return true;
    }
    return false;
}

/// `double run(int n)` around the given body; entry context is T.run(192).
Program oneMethodProgram(Block body) {
    ProgramBuilder pb;
    pb.cls("T").method("run", Type::f64()).param("n", Type::i32()).body(std::move(body));
    return pb.build();
}

constexpr int kProbeN = 192;

analysis::Result analyzeRun(const Program& p) {
    Interp in(p);
    Value obj = in.instantiate("T", {});
    return analysis::analyzeEntry(p, obj, "run", {Value::ofI32(kProbeN)});
}

/// saxpy over two locally allocated arrays + an f64 checksum reduction:
/// the fill and update loops must prove Vectorizable, the sum stays on the
/// exact (serial) accumulator path.
Program saxpyProgram() {
    return oneMethodProgram(blk(
        decl("x", Type::array(Type::f32()), newArr(Type::f32(), lv("n"))),
        decl("y", Type::array(Type::f32()), newArr(Type::f32(), lv("n"))),
        forRange("i", ci(0), lv("n"),
                 blk(aset(lv("x"), lv("i"),
                          cast(Type::f32(), mul(cast(Type::f64(), lv("i")), cd(0.25)))),
                     aset(lv("y"), lv("i"),
                          cast(Type::f32(), mul(cast(Type::f64(), lv("i")), cd(-0.5)))))),
        forRange("i", ci(0), lv("n"),
                 blk(aset(lv("y"), lv("i"),
                          add(aget(lv("y"), lv("i")), mul(cf(2.0f), aget(lv("x"), lv("i"))))))),
        decl("s", Type::f64(), cd(0.0)),
        forRange("i", ci(0), lv("n"),
                 blk(assign("s", add(lv("s"), cast(Type::f64(), aget(lv("y"), lv("i"))))))),
        ret(lv("s"))));
}

/// A `copy(dst, src)` helper called once with distinct arrays and once
/// aliased: the cross-context join must weaken the verdict to guarded.
Program aliasedCopyProgram() {
    ProgramBuilder pb;
    auto& c = pb.cls("T");
    c.method("shift", Type::voidTy())
        .param("dst", Type::array(Type::f32()))
        .param("src", Type::array(Type::f32()))
        .param("n", Type::i32())
        .body(blk(forRange("i", ci(0), lv("n"),
                           blk(aset(lv("dst"), lv("i"),
                                    mul(cf(0.5f), aget(lv("src"), lv("i"))))))));
    c.method("run", Type::f64())
        .param("n", Type::i32())
        .body(blk(
            decl("a", Type::array(Type::f32()), newArr(Type::f32(), lv("n"))),
            decl("b", Type::array(Type::f32()), newArr(Type::f32(), lv("n"))),
            forRange("i", ci(0), lv("n"),
                     blk(aset(lv("a"), lv("i"), cast(Type::f32(), lv("i"))))),
            exprS(call(self(), "shift", lv("b"), lv("a"), lv("n"))),  // disjoint payloads
            exprS(call(self(), "shift", lv("a"), lv("a"), lv("n"))),  // aliased payloads
            ret(add(cast(Type::f64(), aget(lv("a"), sub(lv("n"), ci(1)))),
                    cast(Type::f64(), aget(lv("b"), sub(lv("n"), ci(1))))))));
    return pb.build();
}

} // namespace

// ------------------------------------------------------------ vector prover

TEST(VectorProver, UnitStrideElementwiseProvesVectorizable) {
    auto res = analyzeRun(saxpyProgram());
    EXPECT_TRUE(vectorReportHas(res, "T.run: for (i): vectorizable"))
        << "fill/update loops must prove";
    EXPECT_TRUE(vectorReportHas(res, "unit-stride accesses; no cross-lane dependence"));
}

TEST(VectorProver, StridedAccessStaysScalar) {
    auto res = analyzeRun(oneMethodProgram(blk(
        decl("a", Type::array(Type::f32()), newArr(Type::f32(), mul(ci(2), lv("n")))),
        forRange("i", ci(0), lv("n"),
                 blk(aset(lv("a"), mul(ci(2), lv("i")), cast(Type::f32(), lv("i"))))),
        ret(cast(Type::f64(), aget(lv("a"), ci(0)))))));
    EXPECT_TRUE(vectorReportHas(res, "T.run: for (i): scalar"));
    EXPECT_TRUE(vectorReportHas(res, "not unit-stride"));
    EXPECT_TRUE(vectorReportHas(res, "(stride 2)"));
}

TEST(VectorProver, ExpIntrinsicHasNoBitExactVectorVariant) {
    auto res = analyzeRun(oneMethodProgram(blk(
        decl("a", Type::array(Type::f64()), newArr(Type::f64(), lv("n"))),
        forRange("i", ci(0), lv("n"),
                 blk(aset(lv("a"), lv("i"),
                          intr(Intrinsic::MathExpF64, cast(Type::f64(), lv("i")))))),
        ret(aget(lv("a"), ci(0))))));
    EXPECT_TRUE(vectorReportHas(res, "T.run: for (i): scalar"));
    EXPECT_TRUE(vectorReportHas(res, "no bit-exact vector variant"));
}

TEST(VectorProver, AliasedCallContextWeakensToGuarded) {
    Program p = aliasedCopyProgram();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    auto res = analysis::analyzeEntry(p, obj, "run", {Value::ofI32(kProbeN)});
    EXPECT_TRUE(vectorReportHas(res, "T.shift: for (i): vectorizable (guarded)"));
    EXPECT_TRUE(vectorReportHas(res, "'dst'/'src'"));
    EXPECT_TRUE(vectorReportHas(res, "runtime overlap guard"));
}

TEST(VectorProver, ReductionExactnessSplitsByOperatorAndType) {
    // i64 sum wraps mod 2^64 — associative, so the lanes may carry a simd
    // reduction clause; an f64 sum vectorizes elementwise but its
    // accumulator must stay on the bitwise chunk-serial path.
    auto res = analyzeRun(oneMethodProgram(blk(
        decl("c", Type::i64(), cl(0)),
        decl("s", Type::f64(), cd(0.0)),
        forRange("i", ci(0), lv("n"),
                 blk(assign("c", add(lv("c"), cast(Type::i64(), lv("i")))))),
        forRange("j", ci(0), lv("n"),
                 blk(assign("s", add(lv("s"), cast(Type::f64(), lv("j")))))),
        ret(add(cast(Type::f64(), lv("c")), lv("s"))))));
    EXPECT_TRUE(vectorReportHas(res, "T.run: for (i): vectorizable"));
    EXPECT_TRUE(vectorReportHas(res, "exact under reassociation (simd reduction clause)"));
    EXPECT_TRUE(vectorReportHas(res, "T.run: for (j): vectorizable"));
    EXPECT_TRUE(vectorReportHas(res, "reassociation is inexact; accumulator stays chunk-serial"));
}

// ------------------------------------------------------------ simd codegen

TEST(SimdCodegen, EmitsPragmaAndRestrictOnlyUnderWjSimd) {
    Program p = saxpyProgram();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    const std::vector<Value> args{Value::ofI32(kProbeN)};
    std::string scalarSrc;
    {
        ScopedEnv off("WJ_SIMD", "0");
        Translation t = translate(p, obj, "run", args);
        EXPECT_EQ(0, t.vectorLoops);
        EXPECT_EQ(std::string::npos, t.cSource.find("#pragma omp simd"));
        scalarSrc = t.cSource;
    }
    {
        ScopedEnv on("WJ_SIMD", "1");
        Translation t = translate(p, obj, "run", args);
        EXPECT_GE(t.vectorLoops, 2);  // fill + saxpy update
        EXPECT_NE(std::string::npos, t.cSource.find("#pragma omp simd"));
        EXPECT_NE(std::string::npos, t.cSource.find("restrict"));
        // The f64 sum may vectorize elementwise but must NOT take a lane
        // reduction clause (reassociation would change the bits).
        EXPECT_EQ(std::string::npos, t.cSource.find("reduction("));
        // WJ_THREADS is a pure runtime decision: the generated C (and so
        // the compilation cache key) must not depend on it.
        ScopedEnv th("WJ_THREADS", "8");
        Translation t8 = translate(p, obj, "run", args);
        EXPECT_EQ(t.cSource, t8.cSource);
        EXPECT_NE(scalarSrc, t.cSource);
    }
}

TEST(SimdCodegen, ExactReductionCarriesClause) {
    Program p = oneMethodProgram(blk(
        decl("c", Type::i64(), cl(0)),
        forRange("i", ci(0), lv("n"),
                 blk(assign("c", add(lv("c"), cast(Type::i64(), lv("i")))))),
        ret(cast(Type::f64(), lv("c")))));
    Interp in(p);
    Value obj = in.instantiate("T", {});
    ScopedEnv on("WJ_SIMD", "1");
    Translation t = translate(p, obj, "run", {Value::ofI32(kProbeN)});
    EXPECT_GE(t.vectorLoops, 1);
    EXPECT_NE(std::string::npos, t.cSource.find("reduction(+:v_c)"));
}

TEST(SimdCodegen, GuardedLoopKeepsScalarFallback) {
    Program p = aliasedCopyProgram();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    ScopedEnv on("WJ_SIMD", "1");
    Translation t = translate(p, obj, "run", {Value::ofI32(kProbeN)});
    EXPECT_NE(std::string::npos, t.cSource.find("wjrt_ranges_disjoint"));
    EXPECT_NE(std::string::npos, t.cSource.find("wjrt_simd_fallback"));
    EXPECT_NE(std::string::npos, t.cSource.find("#pragma omp simd"));
}

// --------------------------------------------------------------- end to end

TEST(SimdEndToEnd, BitwiseEqualToScalarAndInterp) {
    Program p = saxpyProgram();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    const std::vector<Value> args{Value::ofI32(kProbeN)};
    const double ref = in.call(obj, "run", args).asF64();
    JitCode scalar = [&] {
        ScopedEnv e("WJ_SIMD", "0");
        return WootinJ::jit(p, obj, "run", args);
    }();
    JitCode simd = [&] {
        ScopedEnv e("WJ_SIMD", "1");
        return WootinJ::jit(p, obj, "run", args);
    }();
    const double a = scalar.invokeWith(args).asF64();
    const double b = simd.invokeWith(args).asF64();
    EXPECT_TRUE(bitEq(ref, a));
    EXPECT_TRUE(bitEq(a, b)) << "WJ_SIMD must not change a single bit";
}

TEST(SimdEndToEnd, AliasedCallTakesScalarFallbackAndStaysCorrect) {
    Program p = aliasedCopyProgram();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    const std::vector<Value> args{Value::ofI32(kProbeN)};
    const double ref = in.call(obj, "run", args).asF64();
    ScopedEnv on("WJ_SIMD", "1");
    auto& fallbacks = trace::Metrics::instance().counter("simd.guard.fallbacks");
    const int64_t before = fallbacks.value();
    JitCode code = WootinJ::jit(p, obj, "run", args);
    const double got = code.invokeWith(args).asF64();
    EXPECT_TRUE(bitEq(ref, got));
    // shift(a, a) overlaps byte ranges -> the guard must have sent exactly
    // the aliased call down the scalar branch (shift(b, a) stays simd).
    EXPECT_EQ(before + 1, fallbacks.value());
}

TEST(SimdEndToEnd, ComposesWithParallelBitwiseAcrossThreadCounts) {
    Program p = saxpyProgram();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    const std::vector<Value> args{Value::ofI32(4096)};
    const double serial = [&] {
        ScopedEnv e1("WJ_PARALLEL", "0");
        ScopedEnv e2("WJ_SIMD", "0");
        return WootinJ::jit(p, obj, "run", args).invokeWith(args).asF64();
    }();
    ScopedEnv e1("WJ_PARALLEL", "1");
    ScopedEnv e2("WJ_SIMD", "1");
    JitCode both = WootinJ::jit(p, obj, "run", args);
    EXPECT_NE(std::string::npos, both.generatedC().find("#pragma omp simd"));
    EXPECT_NE(std::string::npos, both.generatedC().find("wjrt_parallel_for"));
    double first = 0;
    bool haveFirst = false;
    for (int t : {1, 2, 8}) {
        ScopedEnv e3("WJ_THREADS", std::to_string(t).c_str());
        const double v = both.invokeWith(args).asF64();
        if (!haveFirst) {
            haveFirst = true;
            first = v;
        }
        EXPECT_TRUE(bitEq(first, v)) << "WJ_THREADS=" << t;
    }
    // 4096 > WJRT_REDUCE_MAX_CHUNKS regroups the f64 sum, so compare the
    // simd+parallel result against serial with a tight tolerance only.
    EXPECT_NEAR(serial, first, std::abs(serial) * 1e-12);
}

// ---------------------------------------------------------------------------
// The acceptance bar: the paper's evaluation kernels and the CG library
// prove with ZERO annotations. Matmul's ikj inner loop is the guarded case
// (`cr[i*n+j] += av*br[k*n+j]` needs the br/cr range guard), the grid fill
// walks an array reached through `this.cur`, and the CG axpy/dot loops are
// the textbook unit-stride forms.

TEST(KernelVectorization, DiffusionGridLoopsProve) {
    Program prog = stencil::buildProgram();
    Interp in(prog);
    const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    Value runner = stencil::makeCpuRunner(in, 8, 8, 8, coeffs, 7);
    auto res = analysis::analyzeEntry(prog, runner, "run", {Value::ofI32(1)});
    EXPECT_TRUE(vectorReportHas(res, "FloatGridDblB.fill: for (i): vectorizable"));
    EXPECT_TRUE(vectorReportHas(res, "FloatGridDblB.checksum: for (i): vectorizable"));
    // The 7-point sweep dispatches through StencilSolver.solve per cell —
    // the refusal must name that call, not a generic "unsupported".
    EXPECT_TRUE(vectorReportHas(res, "StencilCPU3DDblB.step: for (x): scalar"));
    EXPECT_TRUE(vectorReportHas(res, "calls 'get'"));
}

TEST(KernelVectorization, MatmulInnerLoopProvesWithBrCrGuard) {
    Program prog = matmul::buildProgram();
    Interp in(prog);
    Value app = matmul::makeCpuApp(in, matmul::Calc::Optimized);
    auto res =
        analysis::analyzeEntry(prog, app, "run", {Value::ofI32(8), Value::ofI32(7)});
    EXPECT_TRUE(
        vectorReportHas(res, "OptimizedCalculator.multiplyAcc: for (j): vectorizable (guarded)"));
    EXPECT_TRUE(vectorReportHas(res, "'br'/'cr'"));
    EXPECT_TRUE(vectorReportHas(res, "SimpleMatrix.fillGlobal: for (j): vectorizable"));
}

TEST(KernelVectorization, CgAxpyAndDotLoopsProve) {
    Program prog = cg::buildProgram();
    Interp in(prog);
    Value solver = cg::makeCpuSolver(in);
    auto res = analysis::analyzeEntry(prog, solver, "run",
                                      {Value::ofI32(64), Value::ofI32(3), Value::ofI32(5)});
    EXPECT_TRUE(vectorReportHas(res, "LocalDot.dot: for (i): vectorizable"));
    int vectorizable = 0;
    for (const auto& line : res.vectorReport) {
        if (line.find("CGSolver.run") != std::string::npos &&
            line.find(": vectorizable") != std::string::npos) {
            ++vectorizable;
        }
    }
    EXPECT_GE(vectorizable, 3) << "CG axpy/update loops should prove";
}

TEST(KernelVectorization, KernelsStayBitwiseUnderSimd) {
    // diffusion: 8^3 grid, 3 steps; matmul: 8x8, seed 7 — checksums must be
    // bit-identical with and without WJ_SIMD (the determinism contract on
    // the real kernels, not just synthetic loops).
    {
        Program prog = stencil::buildProgram();
        Interp in(prog);
        const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
        Value runner = stencil::makeCpuRunner(in, 8, 8, 8, coeffs, 7);
        const std::vector<Value> args = {Value::ofI32(3)};
        JitCode scalar = WootinJ::jit(prog, runner, "run", args);
        const double ref = scalar.invokeWith(args).asF64();
        ScopedEnv simd("WJ_SIMD", "1");
        JitCode vec = WootinJ::jit(prog, runner, "run", args);
        EXPECT_NE(std::string::npos, vec.generatedC().find("#pragma omp simd"));
        EXPECT_TRUE(bitEq(ref, vec.invokeWith(args).asF64()));
    }
    {
        Program prog = matmul::buildProgram();
        Interp in(prog);
        Value app = matmul::makeCpuApp(in, matmul::Calc::Optimized);
        const std::vector<Value> args = {Value::ofI32(8), Value::ofI32(7)};
        JitCode scalar = WootinJ::jit(prog, app, "run", args);
        const double ref = scalar.invokeWith(args).asF64();
        ScopedEnv simd("WJ_SIMD", "1");
        JitCode vec = WootinJ::jit(prog, app, "run", args);
        EXPECT_NE(std::string::npos, vec.generatedC().find("wjrt_ranges_disjoint"));
        EXPECT_TRUE(bitEq(ref, vec.invokeWith(args).asF64()));
    }
}
