// Differential tests of the matmul class library (paper Section 4.2):
// naive/optimized/GPU-tiled calculators, CPULoop/GPUThread/MPIThread
// threads, SimpleOuterBody/FoxAlgorithm bodies — all against the plain C++
// reference, across rank-grid sizes.
#include <gtest/gtest.h>

#include <cmath>

#include "interp/interp.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "rules/rules.h"

using namespace wj;
using namespace wj::matmul;

namespace {
constexpr int kSeed = 5;

double relTol(double expect) { return std::abs(expect) * 1e-5 + 1e-6; }
} // namespace

TEST(MatMulLib, ProgramSatisfiesCodingRules) {
    Program p = buildProgram();
    auto violations = verifyCodingRules(p);
    for (const auto& v : violations) ADD_FAILURE() << v.str();
}

TEST(MatMulLib, InterpreterCpuMatchesReference) {
    Program p = buildProgram();
    Interp in(p);
    Value app = makeCpuApp(in, Calc::Simple);
    const int n = 12;
    Value r = in.call(app, "run", {Value::ofI32(n), Value::ofI32(kSeed)});
    EXPECT_DOUBLE_EQ(referenceMatMulChecksum(n, kSeed, kSeed + 1), r.asF64());
}

TEST(MatMulLib, JitCpuCalculatorsMatchReference) {
    Program p = buildProgram();
    Interp in(p);
    const int n = 16;
    const double expect = referenceMatMulChecksum(n, kSeed, kSeed + 1);
    for (Calc c : {Calc::Simple, Calc::Optimized}) {
        Value app = makeCpuApp(in, c);
        JitCode code = WootinJ::jit(p, app, "run", {Value::ofI32(n), Value::ofI32(kSeed)});
        EXPECT_DOUBLE_EQ(expect, code.invoke().asF64()) << "calc=" << static_cast<int>(c);
    }
}

TEST(MatMulLib, JitGpuTiledMatchesReference) {
    Program p = buildProgram();
    Interp in(p);
    const int n = 16;  // tile 8 divides n
    Value app = makeGpuApp(in, /*tile=*/8);
    JitCode code = WootinJ::jit(p, app, "run", {Value::ofI32(n), Value::ofI32(kSeed)});
    const double expect = referenceMatMulChecksum(n, kSeed, kSeed + 1);
    EXPECT_DOUBLE_EQ(expect, code.invoke().asF64());
    // The tiled kernel uses shared memory + barriers: the generated C must
    // launch with needs_sync=1 (last argument of wjrt_gpu_launch).
    EXPECT_NE(code.generatedC().find(", 1);"), std::string::npos);
}

TEST(MatMulLib, JitFoxAlgorithmMatchesReferenceAcrossGrids) {
    Program p = buildProgram();
    Interp in(p);
    const int nGlobal = 24;
    const double expect = referenceMatMulChecksum(nGlobal, kSeed, kSeed + 1);
    for (int q : {1, 2, 3}) {
        ASSERT_EQ(0, nGlobal % q);
        Value app = makeMpiFoxApp(in, Calc::Optimized, q);
        JitCode code = WootinJ::jit4mpi(p, app, "run",
                                        {Value::ofI32(nGlobal / q), Value::ofI32(kSeed)});
        code.set4MPI(q * q);
        EXPECT_NEAR(expect, code.invoke().asF64(), relTol(expect)) << "q=" << q;
    }
}

TEST(MatMulLib, JitFoxGpuMatchesReference) {
    Program p = buildProgram();
    Interp in(p);
    const int nGlobal = 16;
    const int q = 2;  // 4 ranks, 8x8 blocks, tile 4
    Value app = makeMpiFoxGpuApp(in, q, /*tile=*/4);
    JitCode code = WootinJ::jit4mpi(p, app, "run",
                                    {Value::ofI32(nGlobal / q), Value::ofI32(kSeed)});
    code.set4MPI(q * q);
    const double expect = referenceMatMulChecksum(nGlobal, kSeed, kSeed + 1);
    EXPECT_NEAR(expect, code.invoke().asF64(), relTol(expect));
}

TEST(MatMulLib, MutualTypeReferenceComposes) {
    // Listing 6: MPIThread <-> FoxAlgorithm. Translation must specialize
    // FoxAlgorithm.run for the MPIThread receiver shape (mutual reference is
    // exactly what defeated the paper's template rewriting).
    Program p = buildProgram();
    Interp in(p);
    Value app = makeMpiFoxApp(in, Calc::Optimized, 1);
    JitCode code = WootinJ::jit4mpi(p, app, "run", {Value::ofI32(8), Value::ofI32(kSeed)});
    const std::string& c = code.generatedC();
    EXPECT_NE(c.find("FoxAlgorithm_run"), std::string::npos);
    EXPECT_NE(c.find("MPIThread_rank"), std::string::npos);
}

TEST(MatMulLib, NaiveAndOptimizedBitwiseAgree) {
    // Same accumulation order -> identical float results, so the checksum
    // comparison is exact; this pins the loop-order refactoring.
    Program p = buildProgram();
    Interp in(p);
    const int n = 20;
    Value s = makeCpuApp(in, Calc::Simple);
    Value o = makeCpuApp(in, Calc::Optimized);
    JitCode cs = WootinJ::jit(p, s, "run", {Value::ofI32(n), Value::ofI32(kSeed)});
    JitCode co = WootinJ::jit(p, o, "run", {Value::ofI32(n), Value::ofI32(kSeed)});
    EXPECT_DOUBLE_EQ(cs.invoke().asF64(), co.invoke().asF64());
}

TEST(MatMulLib, FoxWithNaiveCalculatorAlsoAgrees) {
    // Component orthogonality: the algorithm (Fox) composes with ANY
    // Calculator, including the naive interface-dispatching one.
    Program p = buildProgram();
    Interp in(p);
    const int nGlobal = 12, q = 2;
    Value app = makeMpiFoxApp(in, Calc::Simple, q);
    JitCode code = WootinJ::jit4mpi(p, app, "run",
                                    {Value::ofI32(nGlobal / q), Value::ofI32(kSeed)});
    code.set4MPI(q * q);
    const double expect = referenceMatMulChecksum(nGlobal, kSeed, kSeed + 1);
    EXPECT_NEAR(expect, code.invoke().asF64(), relTol(expect));
}

TEST(MatMulLib, GpuThreadWithCpuCalculatorComposes) {
    // GPUThread is just a Thread choice: pairing it with a CPU calculator is
    // legal composition (no kernels launched) and must stay correct.
    Program p = buildProgram();
    Interp in(p);
    Value body = in.instantiate("SimpleOuterBody", {in.instantiate("OptimizedCalculator", {})});
    Value thread = in.instantiate("GPUThread", {body});
    Value app = in.instantiate("MatMulApp", {thread});
    JitCode code = WootinJ::jit(p, app, "run", {Value::ofI32(10), Value::ofI32(kSeed)});
    EXPECT_DOUBLE_EQ(referenceMatMulChecksum(10, kSeed, kSeed + 1), code.invoke().asF64());
    EXPECT_EQ(0, code.kernels());
}

class MatmulJitSweep : public ::testing::TestWithParam<int> {};

TEST_P(MatmulJitSweep, CpuAppTracksReferenceAcrossSizes) {
    const int n = GetParam();
    Program p = buildProgram();
    Interp in(p);
    Value app = makeCpuApp(in, Calc::Optimized);
    JitCode code = WootinJ::jit(p, app, "run", {Value::ofI32(n), Value::ofI32(kSeed)});
    EXPECT_DOUBLE_EQ(referenceMatMulChecksum(n, kSeed, kSeed + 1), code.invoke().asF64());
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatmulJitSweep, ::testing::Values(1, 2, 5, 13, 40));
