// End-to-end smoke tests of the full pipeline: build IR, verify the coding
// rules, run on the interpreter ("JVM"), translate with the JIT, compile,
// load, invoke, and compare results differentially.
#include <gtest/gtest.h>

#include "interp/interp.h"
#include "ir/builder.h"
#include "jit/jit.h"
#include "rules/rules.h"
#include "support/diagnostics.h"

using namespace wj;
using namespace wj::dsl;

namespace {

/// A tiny library: Op interface with Add/Mul impls, a Runner composing one.
/// Exercises devirtualization (call through interface-typed field) and
/// object inlining (ScalarBox allocation in the hot loop).
Program makeOpProgram() {
    ProgramBuilder pb;

    pb.cls("Op").interfaceClass().method("apply", Type::f64())
        .param("a", Type::f64())
        .param("b", Type::f64())
        .abstractMethod();

    {
        auto& c = pb.cls("AddOp").implements("Op").finalClass();
        c.method("apply", Type::f64())
            .param("a", Type::f64())
            .param("b", Type::f64())
            .body(blk(ret(add(lv("a"), lv("b")))));
    }
    {
        auto& c = pb.cls("MulOp").implements("Op").finalClass();
        c.method("apply", Type::f64())
            .param("a", Type::f64())
            .param("b", Type::f64())
            .body(blk(ret(mul(lv("a"), lv("b")))));
    }
    {
        auto& c = pb.cls("ScalarBox").finalClass();
        c.field("v", Type::f64());
        c.ctor().param("v_", Type::f64()).body(blk(setSelf("v", lv("v_"))));
        c.method("val", Type::f64()).body(blk(ret(selff("v"))));
    }
    {
        auto& c = pb.cls("Runner");
        c.field("op", Type::cls("Op"));
        c.field("bias", Type::f64());
        c.ctor()
            .param("op_", Type::cls("Op"))
            .param("bias_", Type::f64())
            .body(blk(setSelf("op", lv("op_")), setSelf("bias", lv("bias_"))));
        // double run(int n): acc = bias; for i in [0,n): acc = op.apply(acc, box(i).val())
        c.method("run", Type::f64())
            .param("n", Type::i32())
            .body(blk(
                decl("acc", Type::f64(), selff("bias")),
                forRange("i", ci(0), lv("n"),
                         blk(decl("box", Type::cls("ScalarBox"),
                                  newObj("ScalarBox", cast(Type::f64(), lv("i")))),
                             assign("acc", call(selff("op"), "apply", lv("acc"),
                                                call(lv("box"), "val"))))),
                ret(lv("acc"))));
    }
    return pb.build();
}

} // namespace

TEST(JitSmoke, RulesAccept) {
    Program p = makeOpProgram();
    EXPECT_TRUE(verifyCodingRules(p).empty());
}

TEST(JitSmoke, InterpMatchesJitAdd) {
    Program p = makeOpProgram();
    Interp in(p);
    Value op = in.instantiate("AddOp", {});
    Value runner = in.instantiate("Runner", {op, Value::ofF64(10.0)});

    Value expect = in.call(runner, "run", {Value::ofI32(100)});

    JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(100)});
    Value got = code.invoke();
    EXPECT_DOUBLE_EQ(expect.asF64(), got.asF64());
    // 10 + sum(0..99) = 10 + 4950
    EXPECT_DOUBLE_EQ(4960.0, got.asF64());
}

TEST(JitSmoke, SwitchingComponentChangesBehavior) {
    Program p = makeOpProgram();
    Interp in(p);
    Value op = in.instantiate("MulOp", {});
    Value runner = in.instantiate("Runner", {op, Value::ofF64(3.0)});

    Value expect = in.call(runner, "run", {Value::ofI32(5)});
    JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(5)});
    Value got = code.invoke();
    EXPECT_DOUBLE_EQ(expect.asF64(), got.asF64());
    EXPECT_DOUBLE_EQ(0.0, got.asF64());  // 3*0*1*... = 0
}

TEST(JitSmoke, GeneratedCodeIsDevirtualizedAndInlined) {
    Program p = makeOpProgram();
    Interp in(p);
    Value runner = in.instantiate("Runner", {in.instantiate("AddOp", {}), Value::ofF64(0.0)});
    JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(3)});

    EXPECT_GE(code.devirtualizedCalls(), 2);  // op.apply + box.val
    EXPECT_GE(code.inlinedObjects(), 1);      // new ScalarBox
    // The generated C must contain no function-pointer dispatch.
    EXPECT_EQ(code.generatedC().find("(*"), std::string::npos);
    // Invoking with a different argument works (prims are invoke-time).
    EXPECT_DOUBLE_EQ(1.0, code.invokeWith({Value::ofI32(2)}).asF64());
}

TEST(JitSmoke, CompilationTimeAccounted) {
    Program p = makeOpProgram();
    Interp in(p);
    Value runner = in.instantiate("Runner", {in.instantiate("AddOp", {}), Value::ofF64(0.0)});
    JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(3)});
    EXPECT_GE(code.codegenSeconds(), 0.0);
    // Cold compile: the external compiler ran and its time is accounted.
    // Warm (compile cache hit, in-process or persistent across test runs):
    // the external compiler is skipped entirely and costs nothing.
    if (code.cacheHit()) {
        EXPECT_EQ(0.0, code.compileSeconds());
    } else {
        EXPECT_GT(code.compileSeconds(), 0.0);
    }
}

TEST(JitSmoke, AsyncPipelineMatchesSync) {
    Program p = makeOpProgram();
    Interp in(p);
    Value addR = in.instantiate("Runner", {in.instantiate("AddOp", {}), Value::ofF64(10.0)});
    Value mulR = in.instantiate("Runner", {in.instantiate("MulOp", {}), Value::ofF64(3.0)});

    // Two independent translation units compile concurrently on the pool.
    auto f1 = WootinJ::jitAsync(p, addR, "run", {Value::ofI32(100)});
    auto f2 = WootinJ::jitAsync(p, mulR, "run", {Value::ofI32(5)});
    JitCode add = f1.get();
    JitCode mul = f2.get();
    EXPECT_DOUBLE_EQ(4960.0, add.invoke().asF64());
    EXPECT_DOUBLE_EQ(0.0, mul.invoke().asF64());
}

TEST(JitSmoke, AsyncPropagatesErrors) {
    Program p = makeOpProgram();
    Interp in(p);
    Value runner = in.instantiate("Runner", {in.instantiate("AddOp", {}), Value::ofF64(0.0)});
    // A bad entry method surfaces from the async path as the same error
    // the sync path throws.
    EXPECT_THROW(WootinJ::jitAsync(p, runner, "nosuch", {}).get(), WjError);
}
