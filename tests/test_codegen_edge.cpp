// Edge cases of the translator: arrays of (inlined) objects, nested object
// fields, deep composition chains, kernels calling device helpers, i64
// arithmetic, and double-buffer swap through inlined receivers.
#include <gtest/gtest.h>

#include <cmath>

#include "interp/interp.h"
#include "ir/builder.h"
#include "jit/jit.h"

using namespace wj;
using namespace wj::dsl;

namespace {

/// Runs method "run" of class "T" (instantiated with no args) on both the
/// interpreter and the JIT and checks both agree (and equal `expect`).
void expectBoth(Program& p, double expect, std::vector<Value> args = {}) {
    Interp in(p);
    Value obj = in.instantiate("T", {});
    Value iv = in.call(obj, "run", args);
    JitCode code = WootinJ::jit(p, obj, "run", args);
    Value jv = code.invoke();
    EXPECT_DOUBLE_EQ(expect, iv.asF64()) << "interpreter";
    EXPECT_DOUBLE_EQ(expect, jv.asF64()) << "jit";
}

} // namespace

TEST(CodegenEdge, ArrayOfObjectsStoredByValue) {
    // Paper 3.3, Array: "If an array element is a not-array object, the
    // element directly holds the object as a value."
    ProgramBuilder pb;
    auto& v = pb.cls("Point").finalClass().field("x", Type::f32()).field("y", Type::f32());
    v.ctor().param("x_", Type::f32()).param("y_", Type::f32())
        .body(blk(setSelf("x", lv("x_")), setSelf("y", lv("y_"))));
    v.method("norm1", Type::f32()).body(blk(ret(add(selff("x"), selff("y")))));
    auto& t = pb.cls("T");
    t.method("run", Type::f64())
        .body(blk(decl("pts", Type::array(Type::cls("Point")), newArr(Type::cls("Point"), ci(10))),
                  forRange("i", ci(0), ci(10),
                           blk(aset(lv("pts"), lv("i"),
                                    newObj("Point", cast(Type::f32(), lv("i")),
                                           cast(Type::f32(), mul(lv("i"), ci(2))))))),
                  decl("s", Type::f64(), cd(0)),
                  forRange("i", ci(0), ci(10),
                           blk(decl("q", Type::cls("Point"), aget(lv("pts"), lv("i"))),
                               assign("s", add(lv("s"), cast(Type::f64(), call(lv("q"), "norm1")))))),
                  ret(lv("s"))));
    Program p = pb.build();
    // sum of 3i for i in 0..9 = 135
    expectBoth(p, 135.0);
}

TEST(CodegenEdge, NestedObjectFieldsFlatten) {
    ProgramBuilder pb;
    auto& inner = pb.cls("Inner").finalClass().field("v", Type::f64());
    inner.ctor().param("v_", Type::f64()).body(blk(setSelf("v", lv("v_"))));
    auto& outer = pb.cls("Outer").finalClass().field("a", Type::cls("Inner"))
                      .field("b", Type::cls("Inner"));
    outer.ctor()
        .param("a_", Type::cls("Inner"))
        .param("b_", Type::cls("Inner"))
        .body(blk(setSelf("a", lv("a_")), setSelf("b", lv("b_"))));
    outer.method("sum", Type::f64())
        .body(blk(ret(add(getf(selff("a"), "v"), getf(selff("b"), "v")))));
    auto& t = pb.cls("T");
    t.method("run", Type::f64())
        .body(blk(decl("o", Type::cls("Outer"),
                       newObj("Outer", newObj("Inner", cd(1.25)), newObj("Inner", cd(2.5)))),
                  ret(call(lv("o"), "sum"))));
    Program p = pb.build();
    expectBoth(p, 3.75);
    // The Outer struct must embed Inner BY VALUE (members "Inner f_a;" not
    // "Inner* f_a;") — stack-struct pointers elsewhere are fine, heap
    // indirection in the layout is not.
    Interp in(p);
    Value obj = in.instantiate("T", {});
    JitCode code = WootinJ::jit(p, obj, "run", {});
    EXPECT_NE(code.generatedC().find("Inner f_a;"), std::string::npos);
    EXPECT_EQ(code.generatedC().find("Inner* f_a;"), std::string::npos);
}

TEST(CodegenEdge, DeepCompositionChain) {
    // Four levels of wrapping, every level adding its field — typical class
    // library composition depth.
    ProgramBuilder pb;
    pb.cls("L0").finalClass().field("v", Type::f64())
        .ctor().param("v_", Type::f64()).body(blk(setSelf("v", lv("v_"))));
    for (int lvl = 1; lvl <= 3; ++lvl) {
        std::string name = "L" + std::to_string(lvl);
        std::string prev = "L" + std::to_string(lvl - 1);
        auto& c = pb.cls(name).finalClass().field("inner", Type::cls(prev))
                      .field("add", Type::f64());
        c.ctor()
            .param("inner_", Type::cls(prev))
            .param("add_", Type::f64())
            .body(blk(setSelf("inner", lv("inner_")), setSelf("add", lv("add_"))));
    }
    auto& t = pb.cls("T");
    t.method("run", Type::f64())
        .body(blk(decl("x", Type::cls("L3"),
                       newObj("L3", newObj("L2", newObj("L1", newObj("L0", cd(1)), cd(2)),
                                           cd(4)),
                              cd(8))),
                  ret(add(getf(getf(getf(getf(lv("x"), "inner"), "inner"), "inner"), "v"),
                          getf(lv("x"), "add")))));
    Program p = pb.build();
    expectBoth(p, 9.0);
}

TEST(CodegenEdge, SwapThroughInlinedReceiver) {
    // Array-field reassignment through `this` must be visible after the
    // method returns (the FloatGridDblB.swap pattern).
    ProgramBuilder pb;
    auto& g = pb.cls("Buf").finalClass()
                  .field("cur", Type::array(Type::f32()))
                  .field("nxt", Type::array(Type::f32()));
    g.ctor().body(blk(setSelf("cur", newArr(Type::f32(), ci(1))),
                      setSelf("nxt", newArr(Type::f32(), ci(1)))));
    g.method("swap", Type::voidTy())
        .body(blk(decl("t", Type::array(Type::f32()), selff("cur")),
                  setSelf("cur", selff("nxt")), setSelf("nxt", lv("t")), retVoid()));
    auto& t = pb.cls("T");
    t.method("run", Type::f64())
        .body(blk(decl("b", Type::cls("Buf"), newObj("Buf")),
                  aset(getf(lv("b"), "cur"), ci(0), cf(1.0f)),
                  aset(getf(lv("b"), "nxt"), ci(0), cf(2.0f)),
                  exprS(call(lv("b"), "swap")),
                  ret(cast(Type::f64(), aget(getf(lv("b"), "cur"), ci(0))))));
    Program p = pb.build();
    expectBoth(p, 2.0);
}

TEST(CodegenEdge, Int64Arithmetic) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("run", Type::f64())
        .body(blk(decl("x", Type::i64(), cl(1)),
                  forRange("i", ci(0), ci(40), blk(assign("x", mul(lv("x"), cl(2))))),
                  ret(cast(Type::f64(), lv("x")))));
    Program p = pb.build();
    expectBoth(p, static_cast<double>(int64_t(1) << 40));
}

TEST(CodegenEdge, MathIntrinsicsAgree) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("run", Type::f64())
        .body(blk(ret(add(intr(Intrinsic::MathSqrtF64, cd(2.0)),
                          add(intr(Intrinsic::MathExpF64, cd(1.0)),
                              intr(Intrinsic::MathFabsF64, cd(-3.5)))))));
    Program p = pb.build();
    expectBoth(p, std::sqrt(2.0) + std::exp(1.0) + 3.5);
}

TEST(CodegenEdge, KernelCallsDeviceHelperChain) {
    // @Global kernel -> device method -> device method: the whole chain
    // must be translated with the device flag and the thread context.
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("leaf", Type::f32()).param("v", Type::f32())
        .body(blk(ret(mul(lv("v"), cf(3.0f)))));
    t.method("mid", Type::f32()).param("v", Type::f32())
        .body(blk(ret(add(call(self(), "leaf", lv("v")), cf(1.0f)))));
    t.method("k", Type::voidTy()).global()
        .param("conf", Type::cls("CudaConfig"))
        .param("a", Type::array(Type::f32()))
        .body(blk(decl("i", Type::i32(), tidxX()),
                  aset(lv("a"), lv("i"), call(self(), "mid", aget(lv("a"), lv("i")))),
                  retVoid()));
    t.method("run", Type::f64())
        .body(blk(decl("h", Type::array(Type::f32()), newArr(Type::f32(), ci(4))),
                  forRange("i", ci(0), ci(4),
                           blk(aset(lv("h"), lv("i"), cast(Type::f32(), lv("i"))))),
                  decl("d", Type::array(Type::f32()), intr(Intrinsic::GpuMallocF32, ci(4))),
                  exprS(intr(Intrinsic::GpuMemcpyH2DF32, lv("d"), lv("h"), ci(4))),
                  exprS(call(self(), "k", cudaConfig(dim3of(ci(1)), dim3of(ci(4)), ci(0)),
                             lv("d"))),
                  exprS(intr(Intrinsic::GpuMemcpyD2HF32, lv("h"), lv("d"), ci(4))),
                  exprS(intr(Intrinsic::GpuFree, lv("d"))),
                  decl("s", Type::f64(), cd(0)),
                  forRange("i", ci(0), ci(4),
                           blk(assign("s", add(lv("s"), cast(Type::f64(), aget(lv("h"), lv("i"))))))),
                  ret(lv("s"))));
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    JitCode code = WootinJ::jit(p, obj, "run", {});
    // per element: 3v+1; sum over v=0..3 -> 3*(0+1+2+3)+4 = 22
    EXPECT_DOUBLE_EQ(22.0, code.invoke().asF64());
}

TEST(CodegenEdge, WhileLoopAndNestedIf) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    // Collatz-style loop (bounded): count steps from 27 until 1.
    t.method("run", Type::f64())
        .body(blk(decl("n", Type::i32(), ci(27)),
                  decl("steps", Type::i32(), ci(0)),
                  whileS(gt(lv("n"), ci(1)),
                         blk(ifs(eq(rem(lv("n"), ci(2)), ci(0)),
                                 blk(assign("n", divE(lv("n"), ci(2)))),
                                 blk(assign("n", add(mul(lv("n"), ci(3)), ci(1))))),
                             assign("steps", add(lv("steps"), ci(1))))),
                  ret(cast(Type::f64(), lv("steps")))));
    Program p = pb.build();
    expectBoth(p, 111.0);
}

TEST(CodegenEdge, BooleanLogicShortCircuits) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    // (i % 2 == 0) || (100 / (i % 2) > 0): the division must never run when
    // the left side is true... and never runs at all here since i%2==0 is
    // checked first on even i, and odd i divides by 1 (fine). Also tests &&.
    t.method("run", Type::f64())
        .body(blk(decl("count", Type::i32(), ci(0)),
                  forRange("i", ci(0), ci(10),
                           blk(ifs(lor(eq(rem(lv("i"), ci(2)), ci(0)),
                                       land(gt(lv("i"), ci(5)), lt(lv("i"), ci(8)))),
                                   blk(assign("count", add(lv("count"), ci(1))))))),
                  ret(cast(Type::f64(), lv("count")))));
    Program p = pb.build();
    expectBoth(p, 6.0);  // evens {0,2,4,6,8} plus odd 7
}

TEST(CodegenEdge, SharedFieldTranslatesToBlockSharedMemory) {
    // The paper's @Shared annotation: a field of array type becomes the
    // block's __shared__ buffer. Kernel: stage, barrier, read reversed.
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.sharedField("tile", Type::array(Type::f32()));
    auto& k = t.method("k", Type::voidTy()).global();
    k.param("conf", Type::cls("CudaConfig"));
    k.param("in2", Type::array(Type::f32()));
    k.param("out", Type::array(Type::f32()));
    k.body(blk(decl("tx", Type::i32(), tidxX()),
               decl("bs", Type::i32(), bdimX()),
               aset(selff("tile"), lv("tx"), aget(lv("in2"), lv("tx"))),
               exprS(intr(Intrinsic::CudaSyncThreads)),
               aset(lv("out"), lv("tx"),
                    aget(selff("tile"), sub(sub(lv("bs"), ci(1)), lv("tx")))),
               retVoid()));
    t.method("run", Type::f64())
        .body(blk(
            decl("n", Type::i32(), ci(8)),
            decl("h", Type::array(Type::f32()), newArr(Type::f32(), lv("n"))),
            forRange("i", ci(0), lv("n"),
                     blk(aset(lv("h"), lv("i"), cast(Type::f32(), lv("i"))))),
            decl("din", Type::array(Type::f32()), intr(Intrinsic::GpuMallocF32, lv("n"))),
            decl("dout", Type::array(Type::f32()), intr(Intrinsic::GpuMallocF32, lv("n"))),
            exprS(intr(Intrinsic::GpuMemcpyH2DF32, lv("din"), lv("h"), lv("n"))),
            exprS(call(self(), "k",
                       cudaConfig(dim3of(ci(1)), dim3of(lv("n")),
                                  mul(lv("n"), ci(4))),
                       lv("din"), lv("dout"))),
            exprS(intr(Intrinsic::GpuMemcpyD2HF32, lv("h"), lv("dout"), lv("n"))),
            exprS(intr(Intrinsic::GpuFree, lv("din"))),
            exprS(intr(Intrinsic::GpuFree, lv("dout"))),
            // out[i] = n-1-i  ->  sum of i*out[i] distinguishes reversal.
            decl("s", Type::f64(), cd(0)),
            forRange("i", ci(0), lv("n"),
                     blk(assign("s", add(lv("s"),
                                         mul(cast(Type::f64(), lv("i")),
                                             cast(Type::f64(), aget(lv("h"), lv("i")))))))),
            ret(lv("s"))));
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    JitCode code = WootinJ::jit(p, obj, "run", {});
    // sum i*(7-i) for i in 0..7 = 7*28 - 140 = 56
    EXPECT_DOUBLE_EQ(56.0, code.invoke().asF64());
}

TEST(CodegenEdge, SharedFieldOnHostRejected) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.sharedField("tile", Type::array(Type::f32()));
    t.method("run", Type::f64())
        .body(blk(ret(cast(Type::f64(), aget(selff("tile"), ci(0))))));
    Program p = pb.build();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    EXPECT_THROW(WootinJ::jit(p, obj, "run", {}), UsageError);
}

TEST(CodegenEdge, UpcastParameterPassing) {
    // Passing a leaf instance where a superclass is expected: exact shape
    // flows through, upcast is a no-op.
    ProgramBuilder pb;
    auto& base = pb.cls("Base");
    base.method("tag", Type::i32()).body(blk(ret(ci(1))));
    auto& leaf = pb.cls("Leaf2").extends("Base").finalClass();
    leaf.method("tag", Type::i32()).body(blk(ret(ci(2))));
    auto& t = pb.cls("T");
    t.method("probe", Type::i32()).param("b", Type::cls("Base"))
        .body(blk(ret(call(lv("b"), "tag"))));
    t.method("run", Type::f64())
        .body(blk(decl("l", Type::cls("Leaf2"), newObj("Leaf2")),
                  ret(cast(Type::f64(), call(self(), "probe", lv("l"))))));
    Program p = pb.build();
    expectBoth(p, 2.0);  // devirtualized to Leaf2.tag
}
