// The textual front end: lexer, parser, error reporting — plus the
// strongest property we have for it: PRINT -> PARSE -> PRINT is a fixpoint
// for every class library in the repository, and parsed programs execute
// identically to builder-constructed ones.
#include <gtest/gtest.h>

#include "cg/cg_lib.h"
#include "frontend/composition.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "interp/interp.h"
#include "ir/printer.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "rules/rules.h"
#include "stencil/stencil_lib.h"

using namespace wj;
using namespace wj::frontend;

// ------------------------------------------------------------------ lexer

TEST(Lexer, TokenKinds) {
    auto toks = lex("foo 12 12L 1.5f 1.5 1e-3 ( ) { } [ ] , ; . = + - * / % "
                    "< <= > >= == != && || ! @ ? :");
    ASSERT_GE(toks.size(), 30u);
    EXPECT_EQ(Tok::Ident, toks[0].kind);
    EXPECT_EQ(Tok::IntLit, toks[1].kind);
    EXPECT_EQ(12, toks[1].ival);
    EXPECT_EQ(Tok::LongLit, toks[2].kind);
    EXPECT_EQ(Tok::FloatLit, toks[3].kind);
    EXPECT_FLOAT_EQ(1.5f, static_cast<float>(toks[3].fval));
    EXPECT_EQ(Tok::DoubleLit, toks[4].kind);
    EXPECT_EQ(Tok::DoubleLit, toks[5].kind);
    EXPECT_DOUBLE_EQ(1e-3, toks[5].fval);
    EXPECT_EQ(Tok::Eof, toks.back().kind);
}

TEST(Lexer, CommentsSkipped) {
    auto toks = lex("a // line comment\n b /* block\n comment */ c");
    ASSERT_EQ(4u, toks.size());  // a b c EOF
    EXPECT_EQ("b", toks[1].text);
    EXPECT_EQ("c", toks[2].text);
}

TEST(Lexer, LineColumnTracking) {
    auto toks = lex("a\n  b");
    EXPECT_EQ(1, toks[0].line);
    EXPECT_EQ(2, toks[1].line);
    EXPECT_EQ(3, toks[1].col);
}

TEST(Lexer, ErrorsCarryLocation) {
    try {
        lex("a\n  #");
        FAIL();
    } catch (const UsageError& e) {
        EXPECT_NE(std::string(e.what()).find("2:3"), std::string::npos);
    }
    EXPECT_THROW(lex("/* unterminated"), UsageError);
    EXPECT_THROW(lex("1e+"), UsageError);
    EXPECT_THROW(lex("a & b"), UsageError);
}

// ----------------------------------------------------------------- parser

namespace {

const char* kMiniSource = R"WJ(
@WootinJ interface Op {
  abstract double apply(double a, double b);
}

@WootinJ final class AddOp implements Op {
  double apply(double a, double b) {
    return (a + b);
  }
}

@WootinJ class Runner {
  Op op;
  double bias;
  Runner(Op op_, double bias_) {
    this.op = op_;
    this.bias = bias_;
  }
  double run(int n) {
    double acc = this.bias;
    for (int i = 0; (i < n); i = (i + 1)) {
      acc = this.op.apply(acc, ((double) i));
    }
    return acc;
  }
}
)WJ";

} // namespace

TEST(ParserExec, ParsedProgramRunsOnInterpreterAndJit) {
    Program p = parseProgram(kMiniSource);
    EXPECT_TRUE(verifyCodingRules(p).empty());
    Interp in(p);
    Value runner = in.instantiate("Runner", {in.instantiate("AddOp", {}), Value::ofF64(10.0)});
    EXPECT_DOUBLE_EQ(4960.0, in.call(runner, "run", {Value::ofI32(100)}).asF64());
    JitCode code = WootinJ::jit(p, runner, "run", {Value::ofI32(100)});
    EXPECT_DOUBLE_EQ(4960.0, code.invoke().asF64());
}

TEST(Parser, IntrinsicsParseAsInPaper) {
    Program p = parseProgram(R"WJ(
@WootinJ class K {
  @Global void kern(CudaConfig conf, float[] a) {
    int x = cuda.threadIdx.x();
    a[x] = WootinJ.rngHashF32(1, x);
    return;
  }
  double host(int n) {
    int r = MPI.rank();
    return (Math.sqrt(((double) n)) + ((double) r));
  }
}
)WJ");
    const ClassDecl* k = p.cls("K");
    ASSERT_NE(nullptr, k);
    EXPECT_TRUE(k->ownMethod("kern")->isGlobal);
    // Rendered form matches the paper's spelling.
    const std::string s = printClass(*k);
    EXPECT_NE(s.find("cuda.threadIdx.x()"), std::string::npos);
    EXPECT_NE(s.find("MPI.rank()"), std::string::npos);
}

TEST(Parser, StaticReferences) {
    Program p = parseProgram(R"WJ(
@WootinJ class Consts {
  static final int LIMIT = 42;
  static final double K = -0.5;
  static int twice(int v) {
    return (v * 2);
  }
}
@WootinJ class U {
  int f() {
    return (Consts.LIMIT + Consts.twice(3));
  }
}
)WJ");
    Interp in(p);
    EXPECT_EQ(48, in.call(in.instantiate("U", {}), "f", {}).asI32());
}

TEST(Parser, CastVsParenDisambiguation) {
    Program p = parseProgram(R"WJ(
@WootinJ class C {
  double f(int x) {
    double a = ((double) x);
    double b = ((a) + 1.0);
    return (a * b);
  }
}
)WJ");
    Interp in(p);
    EXPECT_DOUBLE_EQ(12.0, in.call(in.instantiate("C", {}), "f", {Value::ofI32(3)}).asF64());
}

TEST(Parser, SharedFieldAndAnnotations) {
    Program p = parseProgram(R"WJ(
@WootinJ class K {
  @Shared float[] tile;
}
)WJ");
    EXPECT_TRUE(p.cls("K")->fields[0].isShared);
}

TEST(Parser, SyntaxErrorsCarryLocation) {
    EXPECT_THROW(parseProgram("class {"), UsageError);
    EXPECT_THROW(parseProgram("@Bogus class A {}"), UsageError);
    EXPECT_THROW(parseProgram("class A { int f( { }"), UsageError);
    try {
        parseProgram("class A {\n  int f() {\n    return +;\n  }\n}");
        FAIL();
    } catch (const UsageError& e) {
        EXPECT_NE(std::string(e.what()).find("parse error"), std::string::npos);
    }
}

TEST(Parser, TernaryParsesAndVerifierRejectsIt) {
    Program p = parseProgram(R"WJ(
@WootinJ class A {
  int f(int x) {
    return ((x > 0) ? 1 : 0);
  }
}
)WJ");
    // The parser is permissive; rule 7 is the verifier's job.
    auto vs = verifyCodingRules(p);
    ASSERT_FALSE(vs.empty());
    EXPECT_NE(vs[0].rule.find("rule-7"), std::string::npos);
}

// ------------------------------------------------------- round-trip fixpoint

namespace {

void expectRoundTrip(const Program& original) {
    const std::string once = printProgram(original);
    Program reparsed = parseProgram(once);
    const std::string twice = printProgram(reparsed);
    EXPECT_EQ(once, twice);
}

} // namespace

TEST(RoundTrip, StencilLibraryIsAFixpoint) { expectRoundTrip(stencil::buildProgram()); }

TEST(RoundTrip, MatmulLibraryIsAFixpoint) { expectRoundTrip(matmul::buildProgram()); }

TEST(RoundTrip, CgLibraryIsAFixpoint) { expectRoundTrip(cg::buildProgram()); }

TEST(RoundTrip, ReparsedStencilStillComputesTheSameAnswer) {
    // Beyond textual equality: the reparsed library must still translate and
    // produce the reference checksum.
    Program reparsed = parseProgram(printProgram(stencil::buildProgram()));
    Interp in(reparsed);
    const auto c = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    Value solver = in.instantiate("Dif3DSolver", {});
    Value q = in.instantiate("DiffusionQuantity",
                             {Value::ofF32(c.cc), Value::ofF32(c.cw), Value::ofF32(c.ce),
                              Value::ofF32(c.cn), Value::ofF32(c.cs), Value::ofF32(c.cb),
                              Value::ofF32(c.ct)});
    Value grid = in.instantiate("FloatGridDblB",
                                {Value::ofI32(6), Value::ofI32(6), Value::ofI32(6)});
    Value runner = in.instantiate("StencilCPU3DDblB", {solver, q, grid, Value::ofI32(2)});
    JitCode code = WootinJ::jit(reparsed, runner, "run", {Value::ofI32(2)});
    EXPECT_DOUBLE_EQ(stencil::referenceDiffusion3D(6, 6, 6, c, 2, 2), code.invoke().asF64());
}

TEST(Parser, OperatorPrecedence) {
    Program p = parseProgram(R"WJ(
@WootinJ class P {
  int f(int a, int b) {
    return a + b * 2 - -b / 2;
  }
  boolean g(int a, int b) {
    return a < b && b < 10 || a == 0;
  }
}
)WJ");
    Interp in(p);
    Value obj = in.instantiate("P", {});
    // 3 + 4*2 - (-4)/2 = 3 + 8 + 2 = 13
    EXPECT_EQ(13, in.call(obj, "f", {Value::ofI32(3), Value::ofI32(4)}).asI32());
    EXPECT_TRUE(in.call(obj, "g", {Value::ofI32(1), Value::ofI32(5)}).asBool());
    EXPECT_TRUE(in.call(obj, "g", {Value::ofI32(0), Value::ofI32(-5)}).asBool());
    EXPECT_FALSE(in.call(obj, "g", {Value::ofI32(7), Value::ofI32(5)}).asBool());
}

TEST(Parser, NewArrayAndLength) {
    Program p = parseProgram(R"WJ(
@WootinJ class A {
  int f(int n) {
    int[] a = new int[n];
    for (int i = 0; i < a.length; i = i + 1) {
      a[i] = i * i;
    }
    return a[a.length - 1];
  }
}
)WJ");
    Interp in(p);
    EXPECT_EQ(81, in.call(in.instantiate("A", {}), "f", {Value::ofI32(10)}).asI32());
}

TEST(Parser, SuperConstructorChain) {
    Program p = parseProgram(R"WJ(
@WootinJ class Base {
  int x;
  Base(int x_) {
    this.x = x_;
  }
}
@WootinJ final class Sub extends Base {
  int y;
  Sub(int x_, int y_) {
    super(x_);
    this.y = y_;
  }
  int sum() {
    return this.x + this.y;
  }
}
)WJ");
    Interp in(p);
    Value v = in.instantiate("Sub", {Value::ofI32(3), Value::ofI32(9)});
    EXPECT_EQ(12, in.call(v, "sum", {}).asI32());
}

// ------------------------------------------------- robustness / fuzzing
//
// wjd feeds attacker-controlled module text straight into this front end,
// so "malformed input" must mean "typed UsageError", never a crash or a
// stack overflow. The sweeps are seeded (SplitMix64) and deterministic.

namespace {

/// Wraps an expression in a minimal valid module.
std::string moduleWithExpr(const std::string& expr) {
    return "@WootinJ class Fz { int run() { int x = " + expr + "; return x; } }";
}

/// parseProgram must either succeed or throw a WjError; anything else
/// (segfault, std::bad_alloc, stack overflow) fails the test hard.
void expectTypedOutcome(const std::string& src) {
    try {
        (void)parseProgram(src);
    } catch (const WjError&) {
        // typed rejection: fine
    }
}

uint64_t splitmix64(uint64_t& s) {
    uint64_t z = (s += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

TEST(ParserRobustness, DeepParenNestingIsATypedError) {
    std::string expr(5000, '(');
    expr += "1";
    expr.append(5000, ')');
    try {
        parseProgram(moduleWithExpr(expr));
        FAIL() << "expected a parse error";
    } catch (const UsageError& e) {
        EXPECT_NE(std::string(e.what()).find("nesting too deep"), std::string::npos)
            << e.what();
    }
}

TEST(ParserRobustness, DeepUnaryChainIsATypedError) {
    try {
        parseProgram(moduleWithExpr(std::string(5000, '-') + "1"));
        FAIL() << "expected a parse error";
    } catch (const UsageError& e) {
        EXPECT_NE(std::string(e.what()).find("nesting too deep"), std::string::npos)
            << e.what();
    }
}

TEST(ParserRobustness, DeepBlockNestingIsATypedError) {
    // Statements only nest through control flow, so stack 5000 if-blocks.
    std::string body;
    for (int i = 0; i < 5000; ++i) body += "if (n > 0) { ";
    body += "n = 0;";
    body.append(5000, '}');
    try {
        parseProgram("@WootinJ class Fz { int run(int n) { " + body + " return 0; } }");
        FAIL() << "expected a parse error";
    } catch (const UsageError& e) {
        EXPECT_NE(std::string(e.what()).find("nesting too deep"), std::string::npos)
            << e.what();
    }
}

TEST(ParserRobustness, ReasonableNestingStillParses) {
    // The depth bound must not reject code a human would plausibly write.
    std::string expr(60, '(');
    expr += "1";
    expr.append(60, ')');
    Program p = parseProgram(moduleWithExpr("--" + expr + " + 1"));
    Interp in(p);
    EXPECT_EQ(2, in.call(in.instantiate("Fz", {}), "run", {}).asI32());
}

TEST(ParserRobustness, CompositionDeepNestingIsATypedError) {
    std::string comp;
    for (int i = 0; i < 5000; ++i) comp += "A(";
    comp += "1";
    comp.append(5000, ')');
    Program p = parseProgram(moduleWithExpr("1"));
    Interp in(p);
    try {
        parseComposition(in, comp);
        FAIL() << "expected a composition error";
    } catch (const UsageError& e) {
        EXPECT_NE(std::string(e.what()).find("nesting too deep"), std::string::npos)
            << e.what();
    }
    // Same guard for a pathological unary chain.
    EXPECT_THROW(parseComposition(in, std::string(5000, '-') + "1"), UsageError);
}

TEST(ParserRobustness, TruncatedModulesNeverCrash) {
    // Chop a realistic module at every byte offset: each prefix must parse
    // or be rejected typed. This is exactly what a client disconnecting
    // mid-frame hands the daemon.
    const std::string src = R"WJ(
@WootinJ class Base {
  double bias;
  Base(double b) { this.bias = b; }
}
@WootinJ final class Acc extends Base {
  double[] data;
  Acc(double b, int n) { super(b); this.data = new double[n]; }
  double run(int n) {
    double acc = this.bias;
    for (int i = 0; i < n; i = i + 1) {
      acc = acc + (i % 2 == 0 ? 1.5 : -0.5) * this.data.length;
    }
    return acc;
  }
}
)WJ";
    for (size_t cut = 0; cut < src.size(); ++cut) {
        expectTypedOutcome(src.substr(0, cut));
    }
}

TEST(ParserRobustness, SeededRandomJunkNeverCrashes) {
    uint64_t seed = 0x77cb4dbb1e8ee943ULL;  // fixed: failures reproduce
    for (int iter = 0; iter < 300; ++iter) {
        const size_t len = splitmix64(seed) % 512;
        std::string junk;
        junk.reserve(len);
        for (size_t i = 0; i < len; ++i) {
            junk.push_back(static_cast<char>(splitmix64(seed) % 256));
        }
        expectTypedOutcome(junk);
    }
}

TEST(ParserRobustness, SeededMutationsOfAValidModuleNeverCrash) {
    const std::string base =
        "@WootinJ class Mut { int run(int n) { int acc = 0; "
        "for (int i = 0; i < n; i = i + 1) { acc = acc + i; } return acc; } }";
    uint64_t seed = 0x243f6a8885a308d3ULL;
    for (int iter = 0; iter < 300; ++iter) {
        std::string mutated = base;
        const int flips = 1 + static_cast<int>(splitmix64(seed) % 8);
        for (int f = 0; f < flips; ++f) {
            const size_t at = splitmix64(seed) % mutated.size();
            mutated[at] = static_cast<char>(splitmix64(seed) % 256);
        }
        expectTypedOutcome(mutated);
    }
}
