// The fault-injection and recovery subsystem (src/fault/): every FaultPlan
// action reproduced deterministically from its spec, the CheckpointStore's
// coordinated-restart protocol, and the JIT degradation ladder (retry,
// cache CRC eviction, interpreter fallback).
//
// Like test_jit_cache, the JIT tests redirect the compile cache into a
// private temp directory and restore the environment afterwards; every
// test disarms the process-global FaultPlan and CheckpointStore so suites
// stay hermetic.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "fault/checkpoint.h"
#include "fault/fault.h"
#include "interp/interp.h"
#include "ir/builder.h"
#include "jit/cache.h"
#include "jit/compile.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "minimpi/minimpi.h"
#include "stencil/stencil_lib.h"
#include "support/diagnostics.h"
#include "support/timer.h"

namespace fs = std::filesystem;
using namespace wj;
using namespace wj::dsl;
using namespace wj::fault;
using wj::minimpi::Comm;
using wj::minimpi::World;

namespace {

class FaultTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() / ("wjfault-test-" + std::to_string(::getpid()) + "-" +
                                            ::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        setenv("WJ_CACHE_DIR", dir_.c_str(), 1);
        setenv("WJ_CACHE", "1", 1);
        setenv("WJ_JIT_BACKOFF_MS", "1", 1);
        unsetenv("WJ_CC");
        unsetenv("WJ_JIT_RETRIES");
        unsetenv("WJ_JIT_FALLBACK");
        FaultPlan::instance().disarm();
        FaultPlan::instance().resetStats();
        CheckpointStore::instance().disarm();
        JitCache::instance().clearLoaded();
        JitCache::instance().resetStats();
    }

    void TearDown() override {
        FaultPlan::instance().disarm();
        CheckpointStore::instance().disarm();
        JitCache::instance().clearLoaded();
        unsetenv("WJ_CACHE_DIR");
        unsetenv("WJ_CACHE");
        unsetenv("WJ_JIT_BACKOFF_MS");
        unsetenv("WJ_JIT_RETRIES");
        unsetenv("WJ_JIT_FALLBACK");
        unsetenv("WJ_CC");
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    fs::path dir_;
};

/// A tiny program whose `k` constant gives each test a distinct cache key.
Program makeProgram(double k) {
    ProgramBuilder pb;
    auto& c = pb.cls("Calc").finalClass();
    c.method("run", Type::f64())
        .param("n", Type::i32())
        .body(blk(decl("acc", Type::f64(), cd(k)),
                  forRange("i", ci(0), lv("n"), blk(assign("acc", add(lv("acc"), cd(1.0))))),
                  ret(lv("acc"))));
    return pb.build();
}

// ------------------------------------------------------------ plan parsing

TEST_F(FaultTest, RejectsMalformedSpecs) {
    auto& p = FaultPlan::instance();
    EXPECT_THROW(p.configure("explode"), UsageError);
    EXPECT_THROW(p.configure("kill"), UsageError);            // kill needs rank=
    EXPECT_THROW(p.configure("drop:nth=0"), UsageError);      // nth is 1-based
    EXPECT_THROW(p.configure("drop:prob=1.5"), UsageError);
    EXPECT_THROW(p.configure("delay:ms=x"), UsageError);
    EXPECT_THROW(p.configure("drop:frobnicate=1"), UsageError);
    EXPECT_FALSE(FaultPlan::active());
}

TEST_F(FaultTest, DescribeRoundTrips) {
    auto& p = FaultPlan::instance();
    p.configure("seed=7;drop:src=0,dest=1,tag=5,nth=2;delay:ms=3");
    const std::string d = p.describe();
    EXPECT_TRUE(FaultPlan::active());
    // Re-configuring from the description yields the identical plan.
    p.configure(d);
    EXPECT_EQ(d, p.describe());
    p.disarm();
    EXPECT_FALSE(FaultPlan::active());
}

// ------------------------------------------------------------ MPI actions

TEST_F(FaultTest, KillFiresAtExactCommOp) {
    FaultPlan::instance().configure("kill:rank=1,op=3");
    World w(2);
    std::vector<int> opsDone(2, 0);
    try {
        w.run([&](Comm& c) {
            for (int i = 0; i < 5; ++i) {
                c.barrier();
                opsDone[static_cast<size_t>(c.rank())] = i + 1;
            }
        });
        FAIL() << "expected the injected kill to propagate";
    } catch (const ExecError& e) {
        EXPECT_NE(std::string(e.what()).find("rank 1 killed at comm op 3"), std::string::npos);
    }
    // The kill fired at the 3rd barrier entry, so exactly 2 completed.
    EXPECT_EQ(2, opsDone[1]);
    EXPECT_EQ(1, FaultPlan::instance().stats().kills);
}

TEST_F(FaultTest, DropStallsReceiverUntilWatchdog) {
    // The dropped message models a lost packet: the receiver blocks forever
    // and the watchdog must convert the hang into a diagnosable abort.
    FaultPlan::instance().configure("drop:src=0,dest=1,tag=5");
    World w(2);
    w.setWatchdogMillis(150);
    try {
        w.run([](Comm& c) {
            if (c.rank() == 0) {
                const int v = 99;
                c.send(&v, sizeof v, 1, 5);
            } else {
                int got = 0;
                c.recv(&got, sizeof got, 0, 5);  // never arrives
            }
        });
        FAIL() << "expected the watchdog to abort the stalled world";
    } catch (const ExecError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("watchdog"), std::string::npos);
        EXPECT_NE(msg.find("rank 1"), std::string::npos);
        EXPECT_NE(msg.find("blocked in recv"), std::string::npos);
    }
    EXPECT_TRUE(w.watchdogFired());
    EXPECT_EQ(1, FaultPlan::instance().stats().drops);
}

TEST_F(FaultTest, DuplicateDeliversTwice) {
    FaultPlan::instance().configure("dup:src=0,dest=1,tag=9");
    World w(2);
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            const int v = 7;
            c.send(&v, sizeof v, 1, 9);
        } else {
            int a = 0, b = 0;
            c.recv(&a, sizeof a, 0, 9);
            c.recv(&b, sizeof b, 0, 9);  // satisfied by the duplicate
            EXPECT_EQ(7, a);
            EXPECT_EQ(7, b);
        }
    });
    EXPECT_EQ(1, FaultPlan::instance().stats().duplicates);
}

TEST_F(FaultTest, CorruptIsDeterministicPerSeed) {
    // The same seed must flip the same byte the same way on every run.
    int first = -1;
    for (int round = 0; round < 2; ++round) {
        FaultPlan::instance().resetStats();
        FaultPlan::instance().configure("seed=11;corrupt:src=0,dest=1,tag=4");
        World w(2);
        int got = 0;
        w.run([&](Comm& c) {
            if (c.rank() == 0) {
                const int v = 0;  // all zero bits: any corruption is visible
                c.send(&v, sizeof v, 1, 4);
            } else {
                c.recv(&got, sizeof got, 0, 4);
            }
        });
        EXPECT_NE(0, got) << "corruption must alter the payload";
        if (round == 0) first = got;
        else EXPECT_EQ(first, got) << "same seed, same corruption";
    }
    EXPECT_EQ(1, FaultPlan::instance().stats().corruptions);
}

TEST_F(FaultTest, DelayHoldsMessageBack) {
    FaultPlan::instance().configure("delay:src=0,dest=1,ms=80");
    World w(2);
    Timer t;
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            const int v = 1;
            c.send(&v, sizeof v, 1, 2);
        } else {
            int got = 0;
            c.recv(&got, sizeof got, 0, 2);
            EXPECT_EQ(1, got);
        }
    });
    EXPECT_GE(t.seconds(), 0.08);
    EXPECT_EQ(1, FaultPlan::instance().stats().delays);
}

TEST_F(FaultTest, ProbabilisticRuleIsSeedStable) {
    // prob=1 always fires, prob=0 never; the boundary cases need no
    // schedule determinism.
    FaultPlan::instance().configure("seed=3;dup:prob=1");
    World w(2);
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            const int v = 5;
            c.send(&v, sizeof v, 1, 1);
        } else {
            int a = 0, b = 0;
            c.recv(&a, sizeof a, 0, 1);
            c.recv(&b, sizeof b, 0, 1);
        }
    });
    EXPECT_EQ(1, FaultPlan::instance().stats().duplicates);

    FaultPlan::instance().configure("seed=3;drop:prob=0");
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            const int v = 5;
            c.send(&v, sizeof v, 1, 1);
        } else {
            int a = 0;
            c.recv(&a, sizeof a, 0, 1);
            EXPECT_EQ(5, a);
        }
    });
    EXPECT_EQ(0, FaultPlan::instance().stats().drops);
}

// ------------------------------------------------- JIT degradation ladder

TEST_F(FaultTest, TransientCompileFailureIsRetried) {
    FaultPlan::instance().configure("failcompile:nth=1");
    Program p = makeProgram(0.25);
    Interp in(p);
    Value calc = in.instantiate("Calc", {});
    JitCode code = WootinJ::jit(p, calc, "run", {Value::ofI32(4)});
    EXPECT_EQ(4.25, code.invoke().asF64());
    EXPECT_EQ(ExecMode::Native, code.execMode());
    EXPECT_EQ(2, code.compileAttempts());  // 1 injected failure + 1 success
    EXPECT_EQ(1, FaultPlan::instance().stats().compileFailures);
}

TEST_F(FaultTest, PersistentCompileFailureExhaustsRetries) {
    setenv("WJ_JIT_RETRIES", "1", 1);
    FaultPlan::instance().configure("failcompile:nth=1,count=10");
    Program p = makeProgram(0.5);
    Interp in(p);
    Value calc = in.instantiate("Calc", {});
    try {
        WootinJ::jit(p, calc, "run", {Value::ofI32(4)});
        FAIL() << "expected compile failure after exhausted retries";
    } catch (const UsageError& e) {
        EXPECT_NE(std::string(e.what()).find("after 2 attempt"), std::string::npos);
    }
    EXPECT_EQ(2, FaultPlan::instance().stats().compileFailures);
}

TEST_F(FaultTest, UnavailableCompilerFallsBackToInterpreter) {
    setenv("WJ_CC", "/nonexistent/wj-no-such-cc", 1);
    Program p = makeProgram(0.75);
    Interp in(p);
    Value calc = in.instantiate("Calc", {});
    JitCode code = WootinJ::jit(p, calc, "run", {Value::ofI32(3)});
    EXPECT_EQ(ExecMode::Interpreter, code.execMode());
    EXPECT_FALSE(code.cacheHit());
    EXPECT_EQ(3.75, code.invoke().asF64());
    // Fallback is an opt-out: with WJ_JIT_FALLBACK=0 the error surfaces.
    setenv("WJ_JIT_FALLBACK", "0", 1);
    EXPECT_THROW(WootinJ::jit(p, calc, "run", {Value::ofI32(3)}), CompilerUnavailableError);
}

TEST_F(FaultTest, InterpreterFallbackDoesNotCopyBack) {
    // The ladder must preserve the paper's no-copy-back contract (§3.1):
    // mutations by the fallback interpreter stay invisible to the host heap.
    setenv("WJ_CC", "/nonexistent/wj-no-such-cc", 1);
    ProgramBuilder pb;
    auto& c = pb.cls("Mut").finalClass();
    c.method("bump", Type::f32())
        .param("a", Type::array(Type::f32()))
        .body(blk(aset(lv("a"), ci(0), cf(9.0f)), ret(aget(lv("a"), ci(0)))));
    Program p = pb.build();
    Interp in(p);
    Value mut = in.instantiate("Mut", {});
    Value arr = in.newArray(Type::f32(), 2);
    arr.asArr()->data[0] = Value::ofF32(1.0f);
    arr.asArr()->data[1] = Value::ofF32(2.0f);
    JitCode code = WootinJ::jit(p, mut, "bump", {arr});
    EXPECT_EQ(ExecMode::Interpreter, code.execMode());
    EXPECT_EQ(9.0f, code.invoke().asF32());
    EXPECT_EQ(1.0f, arr.asArr()->data[0].asF32()) << "fallback must not copy back";
}

TEST_F(FaultTest, CorruptCacheEntryIsEvictedAndRecompiled) {
    FaultPlan::instance().configure("corruptcache:nth=1");
    Program p = makeProgram(1.5);
    Interp in(p);
    Value calc = in.instantiate("Calc", {});

    // Cold compile publishes a .so the plan then corrupts on disk.
    JitCode cold = WootinJ::jit(p, calc, "run", {Value::ofI32(2)});
    EXPECT_FALSE(cold.cacheHit());
    EXPECT_EQ(1, FaultPlan::instance().stats().cacheCorruptions);

    // A fresh process (cleared registry) must detect the bad bytes via the
    // CRC sidecar, evict, and recompile rather than dlopen garbage.
    JitCache::instance().clearLoaded();
    JitCode warm = WootinJ::jit(p, calc, "run", {Value::ofI32(2)});
    EXPECT_FALSE(warm.cacheHit());
    EXPECT_EQ(3.5, warm.invoke().asF64());
    EXPECT_GE(JitCache::instance().stats().corrupt, 1);

    // The recompiled entry (corruptcache rule now spent) serves clean hits.
    JitCache::instance().clearLoaded();
    JitCode again = WootinJ::jit(p, calc, "run", {Value::ofI32(2)});
    EXPECT_TRUE(again.cacheHit());
    EXPECT_EQ(ExecMode::NativeCached, again.execMode());
    EXPECT_EQ(3.5, again.invoke().asF64());
}

// ---------------------------------------------------- checkpoint/restart

TEST_F(FaultTest, CheckpointRoundTrip) {
    auto& s = CheckpointStore::instance();
    s.arm(/*ranks=*/1, /*interval=*/1);
    const std::vector<float> gen1 = {1, 2, 3}, gen2 = {4, 5, 6};
    s.save(0, 0, 1, gen1.data(), 3);
    s.save(0, 0, 2, gen2.data(), 3);
    EXPECT_EQ(2, s.latestIter(0, 0));
    EXPECT_EQ(2, s.resolve());
    std::vector<float> out(3, 0.0f);
    EXPECT_EQ(2, s.load(0, 0, out.data(), 3));
    EXPECT_EQ(gen2, out);
    EXPECT_EQ(2, s.saves());
    EXPECT_EQ(1, s.restores());
}

TEST_F(FaultTest, CheckpointIntervalSkipsOffCycleSaves) {
    auto& s = CheckpointStore::instance();
    s.arm(1, /*interval=*/3);
    const std::vector<float> d = {1};
    for (int iter = 1; iter <= 7; ++iter) s.save(0, 0, iter, d.data(), 1);
    EXPECT_EQ(2, s.saves());          // iterations 3 and 6 only
    EXPECT_EQ(6, s.latestIter(0, 0));
}

TEST_F(FaultTest, CorruptSnapshotFallsBackToOlderGeneration) {
    auto& s = CheckpointStore::instance();
    s.arm(1, 1);
    const std::vector<float> gen1 = {1, 1}, gen2 = {2, 2};
    s.save(0, 0, 1, gen1.data(), 2);
    s.save(0, 0, 2, gen2.data(), 2);
    s.corruptSnapshot(0, 0);          // newest generation fails its CRC
    EXPECT_EQ(1, s.resolve());
    std::vector<float> out(2, 0.0f);
    EXPECT_EQ(1, s.load(0, 0, out.data(), 2));
    EXPECT_EQ(gen1, out);
    EXPECT_GE(s.crcFailures(), 1);
}

TEST_F(FaultTest, ResolvePicksNewestGenerationCompleteAcrossRanks) {
    // Rank 1 died before checkpointing iteration 2: the restart generation
    // is the newest one EVERY rank holds, not the global maximum.
    auto& s = CheckpointStore::instance();
    s.arm(/*ranks=*/2, 1);
    const std::vector<float> d = {1};
    s.save(0, 0, 1, d.data(), 1);
    s.save(0, 0, 2, d.data(), 1);
    s.save(1, 0, 1, d.data(), 1);
    EXPECT_EQ(1, s.resolve());
    // A rank with no snapshots at all means no consistent generation.
    s.arm(2, 1);
    s.save(0, 0, 1, d.data(), 1);
    EXPECT_EQ(-1, s.resolve());
}

TEST_F(FaultTest, KilledStencilWorldRestartsFromCheckpoint) {
    // End-to-end acceptance path: a rank killed mid-run, restart resumes
    // from the last consistent generation, and the result is bitwise
    // identical to the fault-free run.
    Program p = stencil::buildProgram();
    Interp in(p);
    const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    const int steps = 4;

    auto runWorld = [&]() {
        Value runner = stencil::makeMpiRunner(in, 8, 8, 2, coeffs, 5);
        JitCode code = WootinJ::jit4mpi(p, runner, "run", {Value::ofI32(steps)});
        code.set4MPI(4);
        return code;
    };

    JitCode ref = runWorld();
    const double expect = ref.invoke().asF64();

    // Each halo step costs 4 comm ops per rank (2x sendrecv = send + recv),
    // so op 17 is rank 1's entry into the final allreduce: all 4 of its
    // step snapshots exist. Ranks drift by one step per neighbour hop, so
    // the farthest rank is guaranteed only steps 1..2 — a keep window of 4
    // generations makes the consistent-generation intersection non-empty
    // no matter how the scheduler interleaves the kill.
    auto& ckpt = CheckpointStore::instance();
    ckpt.arm(/*ranks=*/4, /*interval=*/1, /*keep=*/4);
    FaultPlan::instance().configure("kill:rank=1,op=17");
    JitCode code = runWorld();
    EXPECT_THROW(code.invoke(), ExecError);
    EXPECT_GE(ckpt.resolve(), 1) << "at least one full step was checkpointed";
    EXPECT_EQ(expect, code.invoke().asF64());
    EXPECT_GE(ckpt.restores(), 1);
}

TEST_F(FaultTest, KilledFoxMatmulRestartsFromCheckpoint) {
    // Same protocol through the Fox algorithm's two checkpoint slots (the
    // C accumulator and the shifting B block).
    Program p = matmul::buildProgram();
    Interp in(p);
    const int q = 2, nLocal = 4;
    const double expect = matmul::referenceMatMulChecksum(q * nLocal, 5, 6);

    auto makeCode = [&]() {
        Value app = matmul::makeMpiFoxApp(in, matmul::Calc::Optimized, q);
        JitCode code = WootinJ::jit4mpi(p, app, "run",
                                        {Value::ofI32(nLocal), Value::ofI32(5)});
        code.set4MPI(q * q);
        return code;
    };

    JitCode ref = makeCode();
    const double cleanSum = ref.invoke().asF64();
    EXPECT_NEAR(expect, cleanSum, std::abs(expect) * 1e-5);

    auto& ckpt = CheckpointStore::instance();
    ckpt.arm(/*ranks=*/q * q, /*interval=*/1);
    FaultPlan::instance().configure("kill:rank=3,op=4");
    JitCode code = makeCode();
    EXPECT_THROW(code.invoke(), ExecError);
    ckpt.resolve();
    EXPECT_EQ(cleanSum, code.invoke().asF64()) << "restart must be bitwise identical";
}

// ------------------------------------------- disk checkpoints (wjrun PR)
//
// armDisk puts snapshots on the filesystem instead of process memory — the
// mode the process transport needs, where each rank's memory vanishes at
// SIGKILL. Publication is tmp-write + fsync + atomic rename + dir fsync.

TEST_F(FaultTest, DiskCheckpointRoundTrip) {
    auto& s = CheckpointStore::instance();
    const std::string dir = (dir_ / "ck").string();
    s.armDisk(dir, /*ranks=*/1, /*interval=*/1);
    EXPECT_TRUE(s.diskMode());
    EXPECT_EQ(dir, s.directory());
    const std::vector<float> gen1 = {1, 2, 3}, gen2 = {4, 5, 6};
    s.save(0, 0, 1, gen1.data(), 3);
    s.save(0, 0, 2, gen2.data(), 3);
    EXPECT_EQ(2, s.latestIter(0, 0));
    EXPECT_EQ(2, s.resolve());
    std::vector<float> out(3, 0.0f);
    EXPECT_EQ(2, s.load(0, 0, out.data(), 3));
    EXPECT_EQ(gen2, out);
    EXPECT_EQ(2, s.saves());
    EXPECT_EQ(1, s.restores());
}

TEST_F(FaultTest, DiskKeepWindowPrunesOldGenerations) {
    auto& s = CheckpointStore::instance();
    const std::string dir = (dir_ / "ck").string();
    s.armDisk(dir, 1, 1, /*keep=*/2);
    const std::vector<float> d = {1};
    for (int iter = 1; iter <= 5; ++iter) s.save(0, 0, iter, d.data(), 1);
    // Only the last two generations survive on disk.
    size_t files = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
        ++files;
        const std::string n = e.path().filename().string();
        EXPECT_TRUE(n == "ck_r0_s0_g4" || n == "ck_r0_s0_g5") << n;
    }
    EXPECT_EQ(2u, files);
    EXPECT_EQ(5, s.resolve());
}

TEST_F(FaultTest, DiskArmPreserveKeepsOrWipesSnapshots) {
    auto& s = CheckpointStore::instance();
    const std::string dir = (dir_ / "ck").string();
    s.armDisk(dir, 1, 1);
    const std::vector<float> d = {7};
    s.save(0, 0, 1, d.data(), 1);
    // preserve=true (the wjrun --restart path) sees the previous run's files.
    s.armDisk(dir, 1, 1, 2, /*preserve=*/true);
    EXPECT_EQ(1, s.resolve());
    // preserve=false is a fresh run: the directory is wiped.
    s.armDisk(dir, 1, 1, 2, /*preserve=*/false);
    EXPECT_EQ(-1, s.resolve());
}

TEST_F(FaultTest, DiskTornNewestGenerationFallsBackToPrevious) {
    // A torn file (half the payload missing) must disqualify its
    // generation via the CRC, not crash or win the resolve.
    auto& s = CheckpointStore::instance();
    const std::string dir = (dir_ / "ck").string();
    s.armDisk(dir, 1, 1);
    const std::vector<float> gen1 = {1, 1, 1, 1}, gen2 = {2, 2, 2, 2};
    s.save(0, 0, 1, gen1.data(), 4);
    s.save(0, 0, 2, gen2.data(), 4);
    const fs::path newest = fs::path(dir) / "ck_r0_s0_g2";
    ASSERT_TRUE(fs::exists(newest));
    fs::resize_file(newest, fs::file_size(newest) - 8);  // simulated torn write
    EXPECT_EQ(1, s.resolve());
    std::vector<float> out(4, 0.0f);
    EXPECT_EQ(1, s.load(0, 0, out.data(), 4));
    EXPECT_EQ(gen1, out);
    EXPECT_GE(s.crcFailures(), 1);
}

TEST_F(FaultTest, DiskCorruptSnapshotFallsBackToOlderGeneration) {
    auto& s = CheckpointStore::instance();
    s.armDisk((dir_ / "ck").string(), 1, 1);
    const std::vector<float> gen1 = {1, 1}, gen2 = {2, 2};
    s.save(0, 0, 1, gen1.data(), 2);
    s.save(0, 0, 2, gen2.data(), 2);
    s.corruptSnapshot(0, 0);  // flips a payload byte of the newest file
    EXPECT_EQ(1, s.resolve());
    std::vector<float> out(2, 0.0f);
    EXPECT_EQ(1, s.load(0, 0, out.data(), 2));
    EXPECT_EQ(gen1, out);
    EXPECT_GE(s.crcFailures(), 1);
}

TEST_F(FaultTest, DiskResolveSkipsGenerationMissingARank) {
    auto& s = CheckpointStore::instance();
    s.armDisk((dir_ / "ck").string(), /*ranks=*/2, 1);
    const std::vector<float> d = {1};
    s.save(0, 0, 1, d.data(), 1);
    s.save(0, 0, 2, d.data(), 1);
    s.save(1, 0, 1, d.data(), 1);  // rank 1 died before generation 2
    EXPECT_EQ(1, s.resolve());
}

// -------------------------------------- proc-transport suite (wjrun PR)
//
// Everything named Proc* forks real child processes, so these tests carry
// the "proc" ctest label instead of "tsan" (see tests/CMakeLists.txt).
// In-rank verification throws ExecError — gtest assertions inside a forked
// child are invisible to the parent.

class ProcFault : public FaultTest {
protected:
    void SetUp() override {
        FaultTest::SetUp();
        setenv("WJ_TRANSPORT", "proc", 1);  // JitCode::invoke worlds go proc
    }
    void TearDown() override {
        unsetenv("WJ_TRANSPORT");
        FaultTest::TearDown();
    }
};

TEST_F(ProcFault, SigkillAfterPublishLeavesNewestGenerationValid) {
    // Satellite regression: the durable-publish protocol (tmp file, fsync,
    // atomic rename, directory fsync) means a SIGKILL delivered the instant
    // save() returns can never yield a torn or CRC-failing newest
    // generation. A forked child saves two generations and SIGKILLs itself;
    // the parent must resolve generation 2 clean.
    const std::string dir = (dir_ / "ck").string();
    const int64_t n = 257;
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        auto& s = CheckpointStore::instance();
        s.armDisk(dir, /*ranks=*/1, /*interval=*/1);
        std::vector<float> g1(static_cast<size_t>(n), 1.5f);
        std::vector<float> g2(static_cast<size_t>(n), 2.5f);
        s.save(0, 0, 1, g1.data(), n);
        s.save(0, 0, 2, g2.data(), n);
        ::raise(SIGKILL);  // crash-real: no teardown, no atexit, no flush
        _exit(99);         // unreachable
    }
    int status = 0;
    ASSERT_EQ(pid, ::waitpid(pid, &status, 0));
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

    auto& s = CheckpointStore::instance();
    s.armDisk(dir, 1, 1, 2, /*preserve=*/true);
    EXPECT_EQ(2, s.resolve()) << "newest generation must survive the SIGKILL";
    std::vector<float> out(static_cast<size_t>(n), 0.0f);
    EXPECT_EQ(2, s.load(0, 0, out.data(), n));
    EXPECT_EQ(2.5f, out.front());
    EXPECT_EQ(2.5f, out.back());
    EXPECT_EQ(0, s.crcFailures()) << "a post-rename kill must never tear the file";
}

TEST_F(ProcFault, DeadChildReportNamesPidAndSignal) {
    // Watchdog organ ported to real process death: the parent supervisor
    // reaps the SIGKILLed child via waitpid and aborts the world with a
    // report naming the pid, the signal, and every rank's wait state.
    minimpi::World w(3, minimpi::TransportKind::Proc);
    try {
        w.run([](Comm& c) {
            if (c.rank() == 2) ::raise(SIGKILL);
            int got = 0;
            c.recv(&got, sizeof got, 2, 1);  // never satisfied
        });
        FAIL() << "expected the dead child to abort the world";
    } catch (const ExecError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("rank 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("pid"), std::string::npos) << msg;
        EXPECT_NE(msg.find("killed by signal 9"), std::string::npos) << msg;
        EXPECT_NE(msg.find("Per-rank wait state"), std::string::npos) << msg;
    }
    // The world is reusable after burying its dead.
    w.run([](Comm& c) { c.barrier(); });
}

TEST_F(ProcFault, WatchdogStallDumpNamesPids) {
    // Head-to-head deadlock across real processes: the shared-memory stall
    // watchdog must fire and the per-rank dump must identify each child.
    minimpi::World w(2, minimpi::TransportKind::Proc);
    w.setWatchdogMillis(200);
    try {
        w.run([](Comm& c) {
            int got = 0;
            c.recv(&got, sizeof got, 1 - c.rank(), 6);  // neither sends
        });
        FAIL() << "expected the watchdog to break the deadlock";
    } catch (const ExecError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("watchdog"), std::string::npos) << msg;
        EXPECT_NE(msg.find("transport=proc"), std::string::npos) << msg;
        EXPECT_NE(msg.find("blocked in recv(src=1, tag=6"), std::string::npos) << msg;
        EXPECT_NE(msg.find("pid"), std::string::npos) << msg;
    }
    EXPECT_TRUE(w.watchdogFired());
}

TEST_F(ProcFault, KillRuleDeliversRealSigkill) {
    // On the proc transport a WJ_FAULT kill rule is not a throw: the child
    // raises SIGKILL on itself, and the parent reports it like any other
    // dead process.
    FaultPlan::instance().configure("kill:rank=1,op=2");
    minimpi::World w(2, minimpi::TransportKind::Proc);
    try {
        w.run([](Comm& c) {
            for (int i = 0; i < 4; ++i) c.barrier();
        });
        FAIL() << "expected the injected SIGKILL to abort the world";
    } catch (const ExecError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("killed by signal 9"), std::string::npos) << msg;
        EXPECT_NE(msg.find("pid"), std::string::npos) << msg;
    }
}

TEST_F(ProcFault, SigkillMidDiffusionRestartsBitwise) {
    // The acceptance path with REAL process death: rank 2 of a 4-rank
    // diffusion world is SIGKILLed mid-run; the durable on-disk
    // checkpoints let a restart reproduce the unfaulted checksum bitwise.
    Program p = stencil::buildProgram();
    Interp in(p);
    const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    const int steps = 4;

    auto makeCode = [&]() {
        Value runner = stencil::makeMpiRunner(in, 8, 8, 2, coeffs, 5);
        JitCode code = WootinJ::jit4mpi(p, runner, "run", {Value::ofI32(steps)});
        code.set4MPI(4);
        return code;
    };

    const double expect = makeCode().invoke().asF64();  // clean run, proc world

    // Same op arithmetic as KilledStencilWorldRestartsFromCheckpoint: 4
    // comm ops per halo step, so op 17 is the final-allreduce entry; the
    // keep window of 4 generations guarantees a consistent intersection.
    auto& ckpt = CheckpointStore::instance();
    ckpt.armDisk((dir_ / "ck").string(), /*ranks=*/4, /*interval=*/1, /*keep=*/4);
    FaultPlan::instance().configure("seed=42;kill:rank=2,op=17");
    JitCode code = makeCode();
    try {
        code.invoke();
        FAIL() << "expected the SIGKILLed rank to abort the world";
    } catch (const ExecError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("killed by signal 9"), std::string::npos) << msg;
        EXPECT_NE(msg.find("pid"), std::string::npos) << msg;
    }
    // Unlike the threads transport, the kill rule was spent in the dead
    // child's memory, not ours — disarm it or the next fork re-inherits it.
    FaultPlan::instance().disarm();
    EXPECT_GE(ckpt.resolve(), 1) << "at least one full step reached the disk";
    EXPECT_EQ(expect, code.invoke().asF64()) << "restart must be bitwise identical";
}

TEST_F(ProcFault, DiffusionChecksumBitwiseEqualAcrossTransports) {
    // The determinism contract end-to-end: the same jitted MPI program
    // produces bit-identical checksums on threads and forked processes.
    Program p = stencil::buildProgram();
    Interp in(p);
    const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    auto runOn = [&](const char* transport) {
        setenv("WJ_TRANSPORT", transport, 1);
        Value runner = stencil::makeMpiRunner(in, 8, 8, 2, coeffs, 5);
        JitCode code = WootinJ::jit4mpi(p, runner, "run", {Value::ofI32(3)});
        code.set4MPI(4);
        return code.invoke().asF64();
    };
    const double threads = runOn("threads");
    const double proc = runOn("proc");
    EXPECT_EQ(0, std::memcmp(&threads, &proc, sizeof threads))
        << "threads=" << threads << " proc=" << proc;
}

// Message-level fault rules must replay identically whether the rank is a
// thread or a forked process (in-rank verification via thrown ExecError;
// rule counters live in child memory on proc, so observable behavior is
// the only cross-transport truth).
class ProcReplay : public ::testing::TestWithParam<minimpi::TransportKind> {
protected:
    void SetUp() override {
        FaultPlan::instance().disarm();
        FaultPlan::instance().resetStats();
    }
    void TearDown() override { FaultPlan::instance().disarm(); }

    static void require(bool cond, const char* what) {
        if (!cond) throw ExecError(std::string("in-rank check failed: ") + what);
    }
};

TEST_P(ProcReplay, DropStarvesTheReceiverIdentically) {
    FaultPlan::instance().configure("seed=5;drop:src=0,dest=1,tag=5,nth=1");
    minimpi::World w(2, GetParam());
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            const int doomed = 13, alive = 42;
            c.send(&doomed, sizeof doomed, 1, 5);  // swallowed by the rule
            c.send(&alive, sizeof alive, 1, 6);
        } else {
            int got = 0;
            bool timedOut = false;
            try {
                c.recvTimeout(&got, sizeof got, 0, 5, 250);
            } catch (const ExecError&) {
                timedOut = true;
            }
            require(timedOut, "the dropped message must never arrive");
            c.recv(&got, sizeof got, 0, 6);
            require(got == 42, "traffic after the drop flows normally");
        }
    });
}

TEST_P(ProcReplay, DelayHoldsTheMessageBackIdentically) {
    FaultPlan::instance().configure("delay:src=0,dest=1,ms=120");
    minimpi::World w(2, GetParam());
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            const int v = 1;
            c.send(&v, sizeof v, 1, 2);
        } else {
            const auto t0 = std::chrono::steady_clock::now();
            int got = 0;
            c.recv(&got, sizeof got, 0, 2);
            const double sec =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
            require(got == 1, "delayed payload intact");
            require(sec >= 0.1, "delay rule must hold the message back");
        }
    });
}

TEST_P(ProcReplay, DuplicateDeliversTwiceIdentically) {
    FaultPlan::instance().configure("dup:src=0,dest=1,tag=9");
    minimpi::World w(2, GetParam());
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            const int v = 7;
            c.send(&v, sizeof v, 1, 9);
        } else {
            int a = 0, b = 0;
            c.recv(&a, sizeof a, 0, 9);
            c.recv(&b, sizeof b, 0, 9);  // satisfied by the duplicate
            require(a == 7 && b == 7, "both copies carry the payload");
        }
    });
}

INSTANTIATE_TEST_SUITE_P(ProcReplayThreads, ProcReplay,
                         ::testing::Values(minimpi::TransportKind::Threads),
                         [](const auto&) { return std::string("threads"); });
INSTANTIATE_TEST_SUITE_P(ProcReplayProc, ProcReplay,
                         ::testing::Values(minimpi::TransportKind::Proc),
                         [](const auto&) { return std::string("proc"); });

TEST(ProcReplayCross, CorruptedPayloadBitsMatchAcrossTransports) {
    // The corrupt rule's seeded RNG must flip the same byte the same way
    // regardless of the address-space strategy; the corrupted value leaves
    // the proc world through the shared-memory result slot.
    auto corruptedValue = [](minimpi::TransportKind kind) {
        FaultPlan::instance().configure("seed=11;corrupt:src=0,dest=1,tag=4");
        minimpi::World w(2, kind);
        w.run([](Comm& c) {
            if (c.rank() == 0) {
                const int v = 0;  // all zero bits: any corruption is visible
                c.send(&v, sizeof v, 1, 4);
            } else {
                int got = 0;
                c.recv(&got, sizeof got, 0, 4);
                c.publishResult(2, got);
            }
        });
        int kind_ = 0;
        int64_t bits = 0;
        EXPECT_TRUE(w.takeResult(&kind_, &bits));
        FaultPlan::instance().disarm();
        return bits;
    };
    const int64_t threads = corruptedValue(minimpi::TransportKind::Threads);
    const int64_t proc = corruptedValue(minimpi::TransportKind::Proc);
    EXPECT_NE(0, threads) << "corruption must alter the payload";
    EXPECT_EQ(threads, proc) << "same seed, same corruption, either transport";
}

TEST_F(FaultTest, DisarmedStoreIsInert) {
    auto& s = CheckpointStore::instance();
    const std::vector<float> d = {1};
    s.save(0, 0, 1, d.data(), 1);
    std::vector<float> out(1, 7.0f);
    EXPECT_EQ(-1, s.load(0, 0, out.data(), 1));
    EXPECT_EQ(7.0f, out[0]);
    EXPECT_EQ(0, s.saves());
}

} // namespace
