#!/bin/sh
# Refreshes the checked-in codegen snapshots in tests/golden/ after an
# INTENTIONAL translator change. Builds test_codegen_golden, reruns it in
# update mode (WJ_UPDATE_GOLDEN=1), then shows the resulting diff so it can
# be reviewed like any other source change.
#
# Usage: tests/update_goldens.sh [build-dir]   (default: ./build)
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build"}

if [ ! -f "$build/CMakeCache.txt" ]; then
    echo "error: $build is not a configured build tree (pass the build dir)" >&2
    exit 1
fi

cmake --build "$build" --target test_codegen_golden
WJ_UPDATE_GOLDEN=1 "$build/tests/test_codegen_golden"

echo
echo "== golden diff (review before committing) =="
git -C "$repo" --no-pager diff --stat -- tests/golden || true
