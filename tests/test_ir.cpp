// Unit tests for the WJ IR: types, builder, program validation, printer,
// and the type checker.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/typecheck.h"
#include "support/diagnostics.h"

using namespace wj;
using namespace wj::dsl;

// ----------------------------------------------------------------- types

TEST(Type, PrimitiveIdentity) {
    EXPECT_EQ(Type::i32(), Type::i32());
    EXPECT_NE(Type::i32(), Type::i64());
    EXPECT_NE(Type::f32(), Type::f64());
    EXPECT_TRUE(Type::f64().isFloating());
    EXPECT_TRUE(Type::i64().isIntegral());
    EXPECT_FALSE(Type::boolean().isNumeric());
}

TEST(Type, ArrayEquality) {
    EXPECT_EQ(Type::array(Type::f32()), Type::array(Type::f32()));
    EXPECT_NE(Type::array(Type::f32()), Type::array(Type::f64()));
    EXPECT_EQ(Type::array(Type::array(Type::i32())).elem(), Type::array(Type::i32()));
}

TEST(Type, Rendering) {
    EXPECT_EQ("float[]", Type::array(Type::f32()).str());
    EXPECT_EQ("Solver", Type::cls("Solver").str());
    EXPECT_EQ("long", Type::i64().str());
    EXPECT_EQ("double[][]", Type::array(Type::array(Type::f64())).str());
}

TEST(Type, InvalidAccessorsThrow) {
    EXPECT_THROW(Type::i32().elem(), UsageError);
    EXPECT_THROW(Type::i32().className(), UsageError);
    EXPECT_THROW(Type::cls("X").prim(), UsageError);
    EXPECT_THROW(Type::array(Type::voidTy()), UsageError);
    EXPECT_THROW(Type::cls(""), UsageError);
}

// --------------------------------------------------------------- builder

TEST(Builder, RegistersBuiltins) {
    ProgramBuilder pb;
    Program p = pb.build();
    ASSERT_NE(nullptr, p.cls("dim3"));
    ASSERT_NE(nullptr, p.cls("CudaConfig"));
    EXPECT_EQ(3u, p.cls("dim3")->fields.size());
}

TEST(Builder, RejectsDuplicateClass) {
    ProgramBuilder pb;
    pb.cls("A");
    pb.cls("A");
    EXPECT_THROW(pb.build(), UsageError);
}

TEST(Builder, RejectsBadNames) {
    ProgramBuilder pb;
    EXPECT_THROW(pb.cls("3bad"), UsageError);
    EXPECT_THROW(pb.cls("has space"), UsageError);
    auto& c = pb.cls("Ok");
    EXPECT_THROW(c.field("bad-name", Type::i32()), UsageError);
    EXPECT_THROW(c.method("bad name", Type::voidTy()), UsageError);
}

TEST(Builder, RejectsDoubleBody) {
    ProgramBuilder pb;
    auto& m = pb.cls("A").method("f", Type::voidTy());
    m.body(blk(retVoid()));
    EXPECT_THROW(m.body(blk(retVoid())), UsageError);
}

TEST(Builder, RejectsOverloading) {
    ProgramBuilder pb;
    auto& c = pb.cls("A");
    c.method("f", Type::voidTy()).body(blk(retVoid()));
    EXPECT_THROW(c.method("f", Type::i32()), UsageError);
}

TEST(Builder, RejectsReuseAfterBuild) {
    ProgramBuilder pb;
    pb.build();
    EXPECT_THROW(pb.cls("Late"), UsageError);
}

TEST(Builder, SharedFieldMustBeArray) {
    ProgramBuilder pb;
    auto& c = pb.cls("K");
    EXPECT_THROW(c.sharedField("s", Type::f32()), UsageError);
}

// ------------------------------------------------------------ validation

TEST(Validate, UnknownSuperclass) {
    ProgramBuilder pb;
    pb.cls("A").extends("Missing");
    EXPECT_THROW(pb.build(), UsageError);
}

TEST(Validate, InheritanceCycle) {
    ProgramBuilder pb;
    pb.cls("A").extends("B");
    pb.cls("B").extends("A");
    EXPECT_THROW(pb.build(), UsageError);
}

TEST(Validate, ExtendingInterfaceRejected) {
    ProgramBuilder pb;
    pb.cls("I").interfaceClass();
    pb.cls("A").extends("I");
    EXPECT_THROW(pb.build(), UsageError);
}

TEST(Validate, ImplementingClassRejected) {
    ProgramBuilder pb;
    pb.cls("C");
    pb.cls("A").implements("C");
    EXPECT_THROW(pb.build(), UsageError);
}

TEST(Validate, InterfaceWithFieldRejected) {
    ProgramBuilder pb;
    pb.cls("I").interfaceClass().field("x", Type::i32());
    EXPECT_THROW(pb.build(), UsageError);
}

TEST(Validate, MissingAbstractImplementation) {
    ProgramBuilder pb;
    pb.cls("I").interfaceClass().method("f", Type::voidTy()).abstractMethod();
    pb.cls("A").implements("I");  // no f
    EXPECT_THROW(pb.build(), UsageError);
}

TEST(Validate, AbstractClassExemptFromImplementing) {
    ProgramBuilder pb;
    pb.cls("I").interfaceClass().method("f", Type::voidTy()).abstractMethod();
    auto& a = pb.cls("A").implements("I");
    a.method("g", Type::voidTy()).abstractMethod();  // A is abstract
    auto& b = pb.cls("B").extends("A");
    b.method("f", Type::voidTy()).body(blk(retVoid()));
    b.method("g", Type::voidTy()).body(blk(retVoid()));
    EXPECT_NO_THROW(pb.build());
}

TEST(Validate, GlobalMethodNeedsCudaConfig) {
    ProgramBuilder pb;
    pb.cls("A").method("k", Type::voidTy()).global().body(blk(retVoid()));
    EXPECT_THROW(pb.build(), UsageError);
}

TEST(Validate, GlobalMethodMustReturnVoid) {
    ProgramBuilder pb;
    pb.cls("A")
        .method("k", Type::i32())
        .global()
        .param("conf", Type::cls("CudaConfig"))
        .body(blk(ret(ci(0))));
    EXPECT_THROW(pb.build(), UsageError);
}

TEST(Validate, FieldOfUnknownClassRejected) {
    ProgramBuilder pb;
    pb.cls("A").field("x", Type::cls("Nope"));
    EXPECT_THROW(pb.build(), UsageError);
}

// ------------------------------------------------------------- resolution

namespace {

Program hierarchyProgram() {
    ProgramBuilder pb;
    pb.cls("I").interfaceClass().method("f", Type::i32()).abstractMethod();
    auto& base = pb.cls("Base").implements("I");
    base.field("x", Type::i32());
    base.method("f", Type::i32()).body(blk(ret(ci(1))));
    base.method("g", Type::i32()).body(blk(ret(ci(2))));
    auto& mid = pb.cls("Mid").extends("Base");
    mid.field("y", Type::f64());
    mid.method("f", Type::i32()).body(blk(ret(ci(3))));
    auto& leaf = pb.cls("Leaf").extends("Mid").finalClass();
    leaf.field("z", Type::f32());
    return pb.build();
}

} // namespace

TEST(Program, SubtypeQueries) {
    Program p = hierarchyProgram();
    EXPECT_TRUE(p.isSubtypeOf("Leaf", "Base"));
    EXPECT_TRUE(p.isSubtypeOf("Leaf", "I"));
    EXPECT_TRUE(p.isSubtypeOf("Mid", "Mid"));
    EXPECT_FALSE(p.isSubtypeOf("Base", "Mid"));
    EXPECT_FALSE(p.isSubtypeOf("I", "Base"));
}

TEST(Program, MethodResolutionWalksChain) {
    Program p = hierarchyProgram();
    EXPECT_EQ("Mid", p.methodOwner("Leaf", "f")->name);   // override wins
    EXPECT_EQ("Base", p.methodOwner("Leaf", "g")->name);  // inherited
    EXPECT_EQ(nullptr, p.resolveMethod("Leaf", "missing"));
}

TEST(Program, FieldLayoutSuperFirst) {
    Program p = hierarchyProgram();
    auto fields = p.allFields("Leaf");
    ASSERT_EQ(3u, fields.size());
    EXPECT_EQ("x", fields[0]->name);
    EXPECT_EQ("y", fields[1]->name);
    EXPECT_EQ("z", fields[2]->name);
}

TEST(Program, LeafDetection) {
    Program p = hierarchyProgram();
    EXPECT_TRUE(p.isLeaf("Leaf"));
    EXPECT_FALSE(p.isLeaf("Base"));
    EXPECT_FALSE(p.isLeaf("I"));
}

TEST(Program, ConcreteSubtypes) {
    Program p = hierarchyProgram();
    EXPECT_EQ(3u, p.concreteSubtypes("I").size());
    EXPECT_EQ(1u, p.concreteSubtypes("Leaf").size());
}

// -------------------------------------------------------------- typecheck

namespace {

/// Builds a one-class program whose method "f" has the given body; returns
/// whether type checking passes.
void checkBody(Block body, Type ret = Type::voidTy()) {
    ProgramBuilder pb;
    pb.cls("T").method("f", ret).param("p", Type::i32()).body(std::move(body));
    Program p = pb.build();
    checkProgramTypes(p);
}

} // namespace

TEST(TypeCheck, AcceptsWellTyped) {
    EXPECT_NO_THROW(checkBody(blk(decl("x", Type::i32(), add(lv("p"), ci(1))), retVoid())));
}

TEST(TypeCheck, RejectsMixedArithmetic) {
    // No implicit widening: int + double must be an error.
    EXPECT_THROW(checkBody(blk(decl("x", Type::f64(), add(cast(Type::f64(), lv("p")), ci(1))))),
                 UsageError);
}

TEST(TypeCheck, RejectsUndeclaredLocal) {
    EXPECT_THROW(checkBody(blk(exprS(lv("nope")))), UsageError);
}

TEST(TypeCheck, RejectsDuplicateLocal) {
    EXPECT_THROW(checkBody(blk(decl("x", Type::i32(), ci(0)), decl("x", Type::i32(), ci(1)))),
                 UsageError);
}

TEST(TypeCheck, RejectsNonBooleanCondition) {
    EXPECT_THROW(checkBody(blk(ifs(ci(1), blk()))), UsageError);
}

TEST(TypeCheck, RejectsBadReturnType) {
    EXPECT_THROW(checkBody(blk(ret(cd(1.0))), Type::i32()), UsageError);
}

TEST(TypeCheck, RejectsVoidReturnWithValue) {
    EXPECT_THROW(checkBody(blk(ret(ci(1)))), UsageError);
}

TEST(TypeCheck, RejectsNonIntIndex) {
    EXPECT_THROW(checkBody(blk(decl("a", Type::array(Type::f32()), newArr(Type::f32(), ci(4))),
                               exprS(aget(lv("a"), cd(0.0))))),
                 UsageError);
}

TEST(TypeCheck, RejectsCallOnPrimitive) {
    EXPECT_THROW(checkBody(blk(exprS(call(ci(1), "foo")))), UsageError);
}

TEST(TypeCheck, RejectsWrongIntrinsicArity) {
    EXPECT_THROW(checkBody(blk(exprS(intr(Intrinsic::MathSqrtF64)))), UsageError);
}

TEST(TypeCheck, RejectsThisInStatic) {
    ProgramBuilder pb;
    pb.cls("T").method("f", Type::voidTy()).staticMethod().body(blk(exprS(selff("x"))));
    Program p = pb.build();
    EXPECT_THROW(checkProgramTypes(p), UsageError);
}

TEST(TypeCheck, AcceptsInterfaceAssignment) {
    ProgramBuilder pb;
    pb.cls("I").interfaceClass();
    pb.cls("A").implements("I").finalClass();
    pb.cls("T")
        .method("f", Type::cls("I"))
        .body(blk(decl("a", Type::cls("A"), newObj("A")), ret(lv("a"))));
    Program p = pb.build();
    EXPECT_NO_THROW(checkProgramTypes(p));
}

TEST(TypeCheck, RejectsUnrelatedCast) {
    ProgramBuilder pb;
    pb.cls("A").finalClass();
    pb.cls("B").finalClass();
    pb.cls("T")
        .method("f", Type::voidTy())
        .body(blk(decl("a", Type::cls("A"), newObj("A")),
                  exprS(cast(Type::cls("B"), lv("a"))), retVoid()));
    Program p = pb.build();
    EXPECT_THROW(checkProgramTypes(p), UsageError);
}

// ---------------------------------------------------------------- printer

TEST(Printer, RoundTripReadable) {
    ProgramBuilder pb;
    auto& c = pb.cls("Dif1DSolver").extends("Base").finalClass();
    pb.cls("Base");
    c.field("a", Type::f32());
    c.ctor().param("a_", Type::f32()).body(blk(setSelf("a", lv("a_"))));
    c.method("solve", Type::f32())
        .param("x", Type::f32())
        .body(blk(ret(mul(selff("a"), lv("x")))));
    Program p = pb.build();
    const std::string out = printClass(*p.cls("Dif1DSolver"));
    EXPECT_NE(out.find("final class Dif1DSolver extends Base"), std::string::npos);
    EXPECT_NE(out.find("float a;"), std::string::npos);
    EXPECT_NE(out.find("return (this.a * x);"), std::string::npos);
}

TEST(Printer, StatementsRender) {
    const std::string s =
        printStmt(*forRange("i", ci(0), ci(10), blk(exprS(intr(Intrinsic::MpiBarrier)))));
    EXPECT_NE(s.find("for (int i = 0; (i < 10); i = (i + 1))"), std::string::npos);
    EXPECT_NE(s.find("MPI.barrier()"), std::string::npos);
}

TEST(Printer, GlobalAnnotationShown) {
    ProgramBuilder pb;
    pb.cls("K")
        .method("kern", Type::voidTy())
        .global()
        .param("conf", Type::cls("CudaConfig"))
        .body(blk(retVoid()));
    Program p = pb.build();
    EXPECT_NE(printClass(*p.cls("K")).find("@Global"), std::string::npos);
}

TEST(Intrinsics, TableIsConsistent) {
    for (int i = 0; i < intrinsicCount(); ++i) {
        const auto& sig = intrinsicSig(static_cast<Intrinsic>(i));
        EXPECT_NE(nullptr, sig.name);
        EXPECT_FALSE(sig.deviceOnly && sig.hostOnly) << sig.name;
    }
    EXPECT_EQ(std::string("MPI.rank"), intrinsicSig(Intrinsic::MpiRank).name);
    EXPECT_EQ(std::string("cuda.syncthreads"), intrinsicSig(Intrinsic::CudaSyncThreads).name);
}
