// Golden-snapshot tests for the translator's C output on the two paper
// kernels (Section 4.1 diffusion, Section 4.2 matmul). The generated C IS
// the product the paper evaluates — a silent change to devirtualization,
// object inlining, guard emission, or runtime-call lowering shifts every
// measurement, so these tests pin the exact bytes.
//
// The snapshots live in tests/golden/*.golden (checked in). On mismatch the
// test prints the first diverging line with context. To refresh after an
// INTENTIONAL codegen change, run tests/update_goldens.sh (or set
// WJ_UPDATE_GOLDEN=1 around this binary) and review the diff like any other
// source change.
//
// translate() is called directly — no external compiler, no dlopen — so
// these tests are fast and hermetic. WJ_BOUNDS / WJ_PARALLEL are pinned per
// test because they legitimately change the output (that is the point of
// the guarded/parallel variants below).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "interp/interp.h"
#include "ir/builder.h"
#include "jit/codegen.h"
#include "matmul/matmul_lib.h"
#include "stencil/stencil_lib.h"

using namespace wj;
using namespace wj::dsl;

namespace {

// WJ_GOLDEN_DIR is a compile definition pointing at tests/golden in the
// SOURCE tree, so update mode rewrites the checked-in files directly.
std::string goldenPath(const std::string& name) {
    return std::string(WJ_GOLDEN_DIR) + "/" + name;
}

bool updateMode() {
    const char* v = std::getenv("WJ_UPDATE_GOLDEN");
    return v && *v && std::string(v) != "0";
}

bool slurp(const std::string& path, std::string& out) {
    std::ifstream f(path, std::ios::binary);
    if (!f) return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    out = ss.str();
    return true;
}

/// Line number (1-based) and text of the first line where a and b differ.
struct FirstDiff {
    int line = 0;
    std::string expected, actual;
};

FirstDiff firstDiff(const std::string& expected, const std::string& actual) {
    std::istringstream ea(expected), aa(actual);
    std::string el, al;
    FirstDiff d;
    for (int line = 1;; ++line) {
        const bool he = static_cast<bool>(std::getline(ea, el));
        const bool ha = static_cast<bool>(std::getline(aa, al));
        if (!he && !ha) break;
        if (el != al || he != ha) {
            d.line = line;
            d.expected = he ? el : "<end of file>";
            d.actual = ha ? al : "<end of file>";
            break;
        }
    }
    return d;
}

void checkGolden(const std::string& name, const std::string& actual) {
    const std::string path = goldenPath(name);
    if (updateMode()) {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(f.good()) << "cannot write " << path;
        f << actual;
        std::fprintf(stderr, "[golden] updated %s (%zu bytes)\n", path.c_str(), actual.size());
        return;
    }
    std::string expected;
    ASSERT_TRUE(slurp(path, expected))
        << "missing golden file " << path
        << " — run tests/update_goldens.sh to create it, then check it in";
    if (expected == actual) return;
    const FirstDiff d = firstDiff(expected, actual);
    FAIL() << "generated C diverged from " << path << " at line " << d.line << "\n"
           << "  golden: " << d.expected << "\n"
           << "  actual: " << d.actual << "\n"
           << "If the codegen change is intentional, refresh with tests/update_goldens.sh "
           << "and review the golden diff.";
}

/// Clears an env var for the scope (the translator reads WJ_BOUNDS /
/// WJ_PARALLEL at translate() time) and restores it on exit.
class ScopedUnset {
public:
    explicit ScopedUnset(const char* name) : name_(name) {
        if (const char* old = std::getenv(name)) {
            had_ = true;
            old_ = old;
        }
        unsetenv(name);
    }
    ~ScopedUnset() {
        if (had_) setenv(name_, old_.c_str(), 1);
    }
    ScopedUnset(const ScopedUnset&) = delete;
    ScopedUnset& operator=(const ScopedUnset&) = delete;

private:
    const char* name_;
    bool had_ = false;
    std::string old_;
};

Translation translateDiffusion() {
    static Program prog = stencil::buildProgram();
    Interp in(prog);
    const auto coeffs = stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    Value runner = stencil::makeCpuRunner(in, 8, 8, 8, coeffs, 7);
    return translate(prog, runner, "run", {Value::ofI32(1)});
}

Translation translateMatmul() {
    static Program prog = matmul::buildProgram();
    Interp in(prog);
    Value app = matmul::makeCpuApp(in, matmul::Calc::Optimized);
    return translate(prog, app, "run", {Value::ofI32(8), Value::ofI32(7)});
}

/// Array fill + dot product — the CG reduction kernel in miniature. Under
/// WJ_PARALLEL the fill outlines through wjrt_parallel_for and the dot
/// through wjrt_parallel_reduce (chunk fn + identity seeding + ordered
/// combine), which is exactly what this snapshot pins.
/// The cell-chain workload over Cell[] buffers (see stencil_lib): the
/// canonical subject of the proveLayout AoS→SoA split.
Translation translateCells() {
    static Program prog = stencil::buildProgram();
    Interp in(prog);
    Value runner = stencil::makeCellRunner(in, 64, 0.25f, 0.5f, 11);
    return translate(prog, runner, "run", {Value::ofI32(2)});
}

Translation translateDot() {
    static Program prog = [] {
        ProgramBuilder pb;
        pb.cls("Dot")
            .method("run", Type::f64())
            .param("n", Type::i32())
            .body(blk(
                decl("a", Type::array(Type::f32()), newArr(Type::f32(), lv("n"))),
                forRange("i", ci(0), lv("n"),
                         blk(aset(lv("a"), lv("i"),
                                  cast(Type::f32(),
                                       mul(cast(Type::f64(), lv("i")), cd(0.125)))))),
                decl("s", Type::f64(), cd(0.0)),
                forRange("i", ci(0), lv("n"),
                         blk(assign("s",
                                    add(lv("s"),
                                        mul(cast(Type::f64(), aget(lv("a"), lv("i"))),
                                            cast(Type::f64(), aget(lv("a"), lv("i")))))))),
                ret(lv("s"))));
        return pb.build();
    }();
    Interp in(prog);
    Value obj = in.instantiate("Dot", {});
    return translate(prog, obj, "run", {Value::ofI32(100)});
}

} // namespace

class CodegenGolden : public ::testing::Test {
protected:
    // Pin the knobs that legitimately change the output; each variant test
    // re-sets exactly the one it exercises.
    ScopedUnset bounds_{"WJ_BOUNDS"};
    ScopedUnset parallel_{"WJ_PARALLEL"};
    ScopedUnset simd_{"WJ_SIMD"};
    ScopedUnset soa_{"WJ_SOA"};
};

TEST_F(CodegenGolden, Diffusion3DCpu) {
    checkGolden("diffusion3d_cpu.c.golden", translateDiffusion().cSource);
}

TEST_F(CodegenGolden, MatmulCpu) {
    checkGolden("matmul_cpu.c.golden", translateMatmul().cSource);
}

// The WJ_BOUNDS=all variant pins guard emission (wj_chk on every access).
TEST_F(CodegenGolden, Diffusion3DCpuBoundsAll) {
    setenv("WJ_BOUNDS", "all", 1);
    checkGolden("diffusion3d_cpu_bounds.c.golden", translateDiffusion().cSource);
}

// The WJ_PARALLEL=1 variant pins parallel-for outlining and the guarded
// dispatch (wjrt_parallel_for + wjrt_guard_fallback serial else-branch).
TEST_F(CodegenGolden, MatmulCpuParallel) {
    setenv("WJ_PARALLEL", "1", 1);
    checkGolden("matmul_cpu_parallel.c.golden", translateMatmul().cSource);
}

// The WJ_PARALLEL=1 dot-product variant pins the ParallelReduce outlining:
// per-chunk partial record, exact-identity seeding, fixed chunk grid, and
// the ordered combine loop.
TEST_F(CodegenGolden, DotProductParallelReduce) {
    setenv("WJ_PARALLEL", "1", 1);
    checkGolden("cg_dot_parallel.c.golden", translateDot().cSource);
}

// The WJ_SIMD=1 variants pin the vectorized emission: `#pragma omp simd`
// on every proveVectors-cleared loop, restrict-qualified element-pointer
// hoists, wjrt_ranges_disjoint guards with the scalar else-branch, and —
// for the dot product — the ABSENCE of a reduction clause on the inexact
// f64 accumulator.
TEST_F(CodegenGolden, Diffusion3DCpuSimd) {
    setenv("WJ_SIMD", "1", 1);
    checkGolden("diffusion3d_cpu_simd.c.golden", translateDiffusion().cSource);
}

TEST_F(CodegenGolden, MatmulCpuSimd) {
    setenv("WJ_SIMD", "1", 1);
    checkGolden("matmul_cpu_simd.c.golden", translateMatmul().cSource);
}

TEST_F(CodegenGolden, DotProductSimd) {
    setenv("WJ_SIMD", "1", 1);
    checkGolden("cg_dot_simd.c.golden", translateDot().cSource);
}

// The WJ_SOA=1 variants pin the AoS→SoA storage split on the cell chain:
// wjrt_alloc_soa allocation, per-field region arithmetic, the per-field
// scatter on element stores, and the SIMD composition (restrict-hoisted
// per-field lane pointers under `#pragma omp simd`).
TEST_F(CodegenGolden, CellsStencilSoa) {
    setenv("WJ_SOA", "1", 1);
    setenv("WJ_SIMD", "1", 1);
    checkGolden("cells_stencil_soa.c.golden", translateCells().cSource);
}

// A prim-only unit under WJ_SOA=1 must be byte-identical to the WJ_SOA=0
// translation: the layout pass only rewrites class-element arrays.
TEST_F(CodegenGolden, DotProductSoaIsANoOpOnPrimArrays) {
    setenv("WJ_SOA", "1", 1);
    setenv("WJ_SIMD", "1", 1);
    checkGolden("cg_dot_simd.c.golden", translateDot().cSource);
}

// Determinism prerequisite: two translations of the same unit in one
// process must be byte-identical, otherwise golden comparison is noise.
TEST_F(CodegenGolden, TranslationIsDeterministic) {
    EXPECT_EQ(translateDiffusion().cSource, translateDiffusion().cSource);
    EXPECT_EQ(translateMatmul().cSource, translateMatmul().cSource);
    setenv("WJ_SIMD", "1", 1);
    EXPECT_EQ(translateDiffusion().cSource, translateDiffusion().cSource);
    EXPECT_EQ(translateMatmul().cSource, translateMatmul().cSource);
    EXPECT_EQ(translateDot().cSource, translateDot().cSource);
    setenv("WJ_SOA", "1", 1);
    EXPECT_EQ(translateCells().cSource, translateCells().cSource);
}
