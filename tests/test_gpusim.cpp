// GpuSim substrate: memory-space separation, launch geometry, shared
// memory, fiber-scheduled barriers, and divergence detection.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gpusim/gpusim.h"
#include "support/diagnostics.h"

using namespace wj;
using namespace wj::gpusim;

// ----------------------------------------------------------------- memory

TEST(GpuMem, AllocateFreeTracksBytes) {
    Device d;
    void* p = d.malloc(1024);
    EXPECT_TRUE(d.owns(p));
    EXPECT_EQ(1024, d.bytesAllocated());
    void* q = d.malloc(512);
    EXPECT_EQ(1536, d.bytesAllocated());
    EXPECT_EQ(1536, d.peakBytes());
    d.free(p);
    EXPECT_EQ(512, d.bytesAllocated());
    EXPECT_EQ(1536, d.peakBytes());
    d.free(q);
    EXPECT_EQ(0, d.bytesAllocated());
}

TEST(GpuMem, ForeignFreeThrows) {
    Device d;
    int host = 0;
    EXPECT_THROW(d.free(&host), ExecError);
    void* p = d.malloc(16);
    d.free(p);
    EXPECT_THROW(d.free(p), ExecError);  // double free
}

TEST(GpuMem, SeparateMemorySpacesEnforced) {
    Device d;
    std::vector<float> host(16, 1.0f);
    void* dev = d.malloc(16 * sizeof(float));
    // Correct directions work.
    d.memcpyH2D(dev, host.data(), 16 * sizeof(float));
    d.memcpyD2H(host.data(), dev, 16 * sizeof(float));
    // Wrong-side pointers are rejected (a real GPU would fault).
    EXPECT_THROW(d.memcpyH2D(host.data(), dev, 4), ExecError);
    EXPECT_THROW(d.memcpyD2H(dev, host.data(), 4), ExecError);
    d.free(dev);
}

TEST(GpuMem, TwoDevicesAreDistinctSpaces) {
    Device a(0), b(1);
    void* pa = a.malloc(8);
    EXPECT_FALSE(b.owns(pa));
    EXPECT_THROW(b.free(pa), ExecError);
    a.free(pa);
}

// ----------------------------------------------------------------- launch

namespace {

struct IotaArgs {
    int* out;
    int n;
};

void iotaKernel(ThreadCtx* t, void* argsv) {
    auto* a = static_cast<IotaArgs*>(argsv);
    const int i = t->blockIdx.x * t->blockDim.x + t->threadIdx.x;
    if (i < a->n) a->out[i] = i;
}

} // namespace

TEST(GpuLaunch, CoversWholeGrid) {
    Device d;
    std::vector<int> out(100, -1);
    IotaArgs args{out.data(), 100};
    d.launch(&iotaKernel, &args, {7, 1, 1}, {16, 1, 1}, 0, false);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(i, out[static_cast<size_t>(i)]);
    EXPECT_EQ(1, d.kernelsLaunched());
    EXPECT_EQ(7 * 16, d.threadsExecuted());
}

namespace {

struct GeomArgs {
    int* counts;  // indexed by linear (block, thread)
    int bdx, bdy;
};

void geomKernel(ThreadCtx* t, void* argsv) {
    auto* a = static_cast<GeomArgs*>(argsv);
    const int threadLinear = t->threadIdx.y * a->bdx + t->threadIdx.x;
    const int blockLinear = t->blockIdx.y * t->gridDim.x + t->blockIdx.x;
    a->counts[blockLinear * (a->bdx * a->bdy) + threadLinear] += 1;
}

} // namespace

TEST(GpuLaunch, TwoDimensionalGeometryEachThreadOnce) {
    Device d;
    const int gx = 3, gy = 2, bx = 4, by = 2;
    std::vector<int> counts(static_cast<size_t>(gx * gy * bx * by), 0);
    GeomArgs args{counts.data(), bx, by};
    d.launch(&geomKernel, &args, {gx, gy, 1}, {bx, by, 1}, 0, false);
    for (int v : counts) EXPECT_EQ(1, v);
}

TEST(GpuLaunch, RejectsBadGeometry) {
    Device d;
    IotaArgs args{nullptr, 0};
    EXPECT_THROW(d.launch(&iotaKernel, &args, {0, 1, 1}, {4, 1, 1}, 0, false), ExecError);
    EXPECT_THROW(d.launch(&iotaKernel, &args, {1, 1, 1}, {2048, 1, 1}, 0, false), ExecError);
    EXPECT_THROW(d.launch(&iotaKernel, &args, {1, 1, 1}, {4, 1, 1}, -8, false), ExecError);
}

TEST(GpuLaunch, SyncInFastPathKernelThrows) {
    Device d;
    auto kernel = [](ThreadCtx* t, void*) { syncThreads(t); };
    EXPECT_THROW(d.launch(kernel, nullptr, {1, 1, 1}, {4, 1, 1}, 0, /*needsSync=*/false),
                 ExecError);
}

// --------------------------------------------------- shared memory + sync

namespace {

/// Block-wide reversal through shared memory: out[i] = in[blockDim-1-i].
/// Requires a real barrier between the store and the crossed load.
struct ReverseArgs {
    const float* in;
    float* out;
};

void reverseKernel(ThreadCtx* t, void* argsv) {
    auto* a = static_cast<ReverseArgs*>(argsv);
    const int i = t->threadIdx.x;
    const int n = t->blockDim.x;
    t->shared[i] = a->in[t->blockIdx.x * n + i];
    syncThreads(t);
    a->out[t->blockIdx.x * n + i] = t->shared[n - 1 - i];
}

} // namespace

TEST(GpuSync, SharedMemoryReversal) {
    Device d;
    const int blocks = 3, bs = 32;
    std::vector<float> in(static_cast<size_t>(blocks * bs)), out(in.size(), -1);
    for (size_t i = 0; i < in.size(); ++i) in[i] = static_cast<float>(i);
    ReverseArgs args{in.data(), out.data()};
    d.launch(&reverseKernel, &args, {blocks, 1, 1}, {bs, 1, 1},
             bs * static_cast<int64_t>(sizeof(float)), /*needsSync=*/true);
    for (int b = 0; b < blocks; ++b)
        for (int i = 0; i < bs; ++i)
            EXPECT_EQ(in[static_cast<size_t>(b * bs + bs - 1 - i)],
                      out[static_cast<size_t>(b * bs + i)]);
}

namespace {

/// Tree reduction with log2(n) barriers — the classic multi-barrier kernel.
struct ReduceArgs {
    const float* in;
    float* blockSums;
};

void reduceKernel(ThreadCtx* t, void* argsv) {
    auto* a = static_cast<ReduceArgs*>(argsv);
    const int i = t->threadIdx.x;
    const int n = t->blockDim.x;
    t->shared[i] = a->in[t->blockIdx.x * n + i];
    syncThreads(t);
    for (int stride = n / 2; stride > 0; stride /= 2) {
        if (i < stride) t->shared[i] += t->shared[i + stride];
        syncThreads(t);
    }
    if (i == 0) a->blockSums[t->blockIdx.x] = t->shared[0];
}

} // namespace

TEST(GpuSync, TreeReductionAcrossManyBarriers) {
    Device d;
    const int blocks = 4, bs = 64;
    std::vector<float> in(static_cast<size_t>(blocks * bs));
    for (size_t i = 0; i < in.size(); ++i) in[i] = 1.0f;
    std::vector<float> sums(static_cast<size_t>(blocks), 0);
    ReduceArgs args{in.data(), sums.data()};
    d.launch(&reduceKernel, &args, {blocks, 1, 1}, {bs, 1, 1},
             bs * static_cast<int64_t>(sizeof(float)), true);
    for (float s : sums) EXPECT_EQ(static_cast<float>(bs), s);
}

TEST(GpuSync, SharedMemoryResetBetweenBlocks) {
    // Each block increments shared[0] once; without per-block reset the
    // second block would observe the first block's value.
    Device d;
    static thread_local float observed[8];
    auto kernel = [](ThreadCtx* t, void*) {
        if (t->threadIdx.x == 0) {
            observed[t->blockIdx.x] = t->shared[0];
            t->shared[0] += 1.0f;
        }
        syncThreads(t);
    };
    d.launch(kernel, nullptr, {8, 1, 1}, {4, 1, 1}, 16, true);
    for (int b = 0; b < 8; ++b) EXPECT_EQ(0.0f, observed[b]);
}

namespace {

void divergentKernel(ThreadCtx* t, void*) {
    if (t->threadIdx.x == 0) return;  // thread 0 exits...
    syncThreads(t);                   // ...while the others wait: UB in CUDA
}

} // namespace

TEST(GpuSync, BarrierDivergenceDetected) {
    Device d;
    EXPECT_THROW(d.launch(&divergentKernel, nullptr, {1, 1, 1}, {8, 1, 1}, 0, true), ExecError);
}

TEST(GpuSync, UniformEarlyExitIsFine) {
    // ALL threads skipping the barrier together is well-defined.
    Device d;
    auto kernel = [](ThreadCtx*, void*) { return; };
    EXPECT_NO_THROW(d.launch(kernel, nullptr, {2, 1, 1}, {8, 1, 1}, 0, true));
}

class GpuBlockSizes : public ::testing::TestWithParam<int> {};

TEST_P(GpuBlockSizes, ReductionWorksAtEveryPowerOfTwo) {
    const int bs = GetParam();
    Device d;
    std::vector<float> in(static_cast<size_t>(bs), 2.0f);
    float sum = 0;
    ReduceArgs args{in.data(), &sum};
    d.launch(&reduceKernel, &args, {1, 1, 1}, {bs, 1, 1},
             bs * static_cast<int64_t>(sizeof(float)), true);
    EXPECT_EQ(2.0f * bs, sum);
}

INSTANTIATE_TEST_SUITE_P(Pow2, GpuBlockSizes, ::testing::Values(1, 2, 4, 16, 64, 256, 1024));
