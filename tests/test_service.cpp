// The wjd compile service (src/service/): protocol framing, in-flight
// dedup, admission control, typed error taxonomy, graceful drain, and the
// daemon's resilience to misbehaving clients.
//
// Two tiers:
//   * ServiceTest — an in-process Daemon on a private socket + private
//     compile cache per test. Fast, deterministic, and the metrics
//     registry is shared with the test so counters can be asserted
//     directly.
//   * ProcWjdTest (ctest label "proc") — forks the REAL wjd binary
//     (path injected via the WJD_BIN compile definition) to cover what
//     only a separate process can: SIGTERM drain and the cross-process
//     single-cc guarantee of two daemons sharing one cache directory.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "jit/cache.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/protocol.h"
#include "support/diagnostics.h"
#include "support/scratch.h"
#include "trace/metrics.h"

namespace fs = std::filesystem;
using namespace wj;
using namespace wj::service;

namespace {

/// A tiny valid module whose generated C differs per `nonce`, so every
/// test (and every phase within a test) can mint fresh cache keys.
std::string moduleSource(int nonce) {
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "@WootinJ\n"
                  "class Svc%d {\n"
                  "    Svc%d() {}\n"
                  "    int run(int n) {\n"
                  "        int acc = 0;\n"
                  "        for (int i = 0; i < n; i = i + 1) { acc = acc + i * %d; }\n"
                  "        return acc;\n"
                  "    }\n"
                  "}\n",
                  nonce, nonce, nonce % 97 + 1);
    return buf;
}

/// Per-run nonce base so repeated ctest invocations against a reused
/// build tree never collide on cache keys across tests.
int nonceBase() {
    static int base = static_cast<int>((::getpid() % 10000) * 1000);
    return base;
}

class ServiceTest : public ::testing::Test {
protected:
    void SetUp() override {
        scratch_ = makeScratchDir("wjd_test");
        setenv("WJ_CACHE_DIR", (scratch_ + "/cache").c_str(), 1);
        setenv("WJ_CACHE", "1", 1);
        unsetenv("WJ_CACHE_MAX_BYTES");
        JitCache::instance().clearLoaded();
        fault::FaultPlan::instance().disarm();
    }

    void TearDown() override {
        daemon_.reset();
        fault::FaultPlan::instance().disarm();
        unsetenv("WJ_CACHE_DIR");
        unsetenv("WJ_JIT_RETRIES");
        unsetenv("WJ_JIT_BACKOFF_MS");
        JitCache::instance().clearLoaded();
        std::error_code ec;
        fs::remove_all(scratch_, ec);
    }

    /// Starts the in-process daemon (quiet, private socket in scratch).
    Daemon& startDaemon(int workers = 2, int maxInflight = 0, int queueCap = 0) {
        DaemonOptions o;
        o.socketPath = scratch_ + "/wjd.sock";
        o.workers = workers;
        o.maxInflightPerClient = maxInflight;
        o.queueCap = queueCap;
        o.quiet = true;
        daemon_ = std::make_unique<Daemon>(o);
        daemon_->start();
        return *daemon_;
    }

    Client connect() {
        Client c;
        c.connect(daemon_->socketPath());
        return c;
    }

    std::string scratch_;
    std::unique_ptr<Daemon> daemon_;
};

/// kv field of a decoded body, "" when absent.
std::string bodyField(const Body& b, const std::string& key) {
    const std::string* v = b.find(key);
    return v ? *v : std::string();
}

/// Counter value out of the daemon's Stats JSON ( "name": value ).
int64_t counterIn(const std::string& json, const std::string& name) {
    const std::string needle = "\"" + name + "\": ";
    const size_t at = json.find(needle);
    if (at == std::string::npos) return -1;
    return std::strtoll(json.c_str() + at + needle.size(), nullptr, 10);
}

} // namespace

// ------------------------------------------------------------ basic RPCs

TEST_F(ServiceTest, PingStatsAndColdWarmCompile) {
    startDaemon();
    Client c = connect();
    EXPECT_TRUE(c.ping().ok);

    const int nonce = nonceBase() + 1;
    const std::string src = moduleSource(nonce);
    const std::string newExpr = "Svc" + std::to_string(nonce) + "()";

    Client::Reply cold = c.compile(src, newExpr, "run", "8");
    ASSERT_TRUE(cold.ok) << cold.message;
    EXPECT_FALSE(cold.cacheHit);
    EXPECT_GE(cold.attempts, 1);
    EXPECT_TRUE(fs::exists(cold.path)) << cold.path;

    Client::Reply warm = c.compile(src, newExpr, "run", "8");
    ASSERT_TRUE(warm.ok) << warm.message;
    EXPECT_TRUE(warm.cacheHit);
    EXPECT_EQ(warm.keyHex, cold.keyHex);

    Client::Reply st = c.stats();
    ASSERT_TRUE(st.ok);
    EXPECT_GE(counterIn(st.statsJson, "wjd.requests.total"), 4);
    EXPECT_GE(counterIn(st.statsJson, "wjd.compile.ok"), 2);
}

TEST_F(ServiceTest, TypedErrorsForBadModules) {
    startDaemon();
    Client c = connect();

    // Parse error: daemon answers typed, stays up.
    Client::Reply parseErr = c.compile("class {", "X()", "run");
    EXPECT_FALSE(parseErr.ok);
    EXPECT_EQ(ErrCode::ParseError, parseErr.code);
    EXPECT_NE(parseErr.message.find("parse error"), std::string::npos) << parseErr.message;

    // Semantically broken: valid syntax, unknown receiver class.
    Client::Reply semErr =
        c.compile(moduleSource(nonceBase() + 2), "NoSuchClass()", "run");
    EXPECT_FALSE(semErr.ok);
    EXPECT_EQ(ErrCode::SemanticError, semErr.code);

    // Missing required fields is a BAD_REQUEST, not a crash.
    Body b;
    b.set("method", "run");
    b.payload = moduleSource(nonceBase() + 3);
    Frame req{MsgType::Compile, 77, encodeBody(b)};
    writeFrame(c.fd(), req);
    Frame resp;
    ASSERT_TRUE(c.readReply(resp));
    EXPECT_EQ(MsgType::Error, resp.type);
    Body eb = decodeBody(resp.body);
    EXPECT_EQ(errName(ErrCode::BadRequest), bodyField(eb, "name"));

    EXPECT_TRUE(c.ping().ok);
}

// ------------------------------------------------- in-flight compile dedup

TEST_F(ServiceTest, ConcurrentSameKeyCompilesCollapseToOneCc) {
    startDaemon(4);
    const int nonce = nonceBase() + 10;
    const std::string src = moduleSource(nonce);
    const std::string newExpr = "Svc" + std::to_string(nonce) + "()";

    const CacheStats before = JitCache::instance().stats();
    const int64_t joinsBefore =
        trace::Metrics::instance().counter("wjd.compile.joins").value();

    constexpr int kClients = 8;
    std::atomic<int> okCount{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&] {
            Client c;
            c.connect(daemon_->socketPath());
            while (!go.load()) std::this_thread::yield();
            Client::Reply r = c.compile(src, newExpr, "run", "8");
            if (r.ok) okCount.fetch_add(1);
        });
    }
    go.store(true);
    for (auto& t : threads) t.join();

    EXPECT_EQ(kClients, okCount.load());
    // The herd cost exactly one external cc invocation...
    const CacheStats after = JitCache::instance().stats();
    EXPECT_EQ(1, after.misses - before.misses);
    // ...because the daemon joined the rest onto the in-flight compile.
    EXPECT_GE(trace::Metrics::instance().counter("wjd.compile.joins").value(),
              joinsBefore + 1);
}

TEST_F(ServiceTest, ClientDisconnectMidCompileDoesNotOrphanTheEntry) {
    startDaemon(2);
    const int nonce = nonceBase() + 20;
    const std::string src = moduleSource(nonce);
    const std::string newExpr = "Svc" + std::to_string(nonce) + "()";

    // Client A submits a fresh module and vanishes without reading the
    // response — mid-compile from the daemon's point of view.
    {
        Client a = connect();
        Body b;
        b.set("new", newExpr);
        b.set("method", "run");
        b.set("args", "8");
        b.payload = src;
        Frame req{MsgType::Compile, 1, encodeBody(b)};
        writeFrame(a.fd(), req);
        a.close();
    }

    // The compile must complete anyway (the artifact warms the cache) and
    // the in-flight entry must be reaped: client B's request for the SAME
    // key succeeds — either joined onto A's still-running compile or served
    // from the cache A's orphaned compile populated.
    Client b = connect();
    Client::Reply r = b.compile(src, newExpr, "run", "8");
    ASSERT_TRUE(r.ok) << r.message;

    // Once everything settled, the daemon reports zero in-flight work.
    // (A's worker may still be tearing down its job when B's joined reply
    // arrives, so poll briefly rather than sampling once.)
    int64_t inflight = -1;
    for (int i = 0; i < 100; ++i) {
        Client::Reply st = b.stats();
        ASSERT_TRUE(st.ok);
        inflight = counterIn(st.statsJson, "wjd.inflight.current");
        if (inflight == 0) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(0, inflight) << "orphaned in-flight work after client disconnect";
    EXPECT_TRUE(b.ping().ok);
}

// -------------------------------------------------------- fault injection

TEST_F(ServiceTest, InjectedCompileFailureIsTypedAndDaemonSurvives) {
    setenv("WJ_JIT_RETRIES", "0", 1);    // no ladder: first failure is final
    setenv("WJ_JIT_BACKOFF_MS", "1", 1);
    startDaemon();
    Client c = connect();

    // Arm: the next external-compiler invocation fails (simulated OOM).
    fault::FaultPlan::instance().configure("failcompile:nth=1,count=1");
    Client::Reply fail =
        c.compile(moduleSource(nonceBase() + 30), "Svc" + std::to_string(nonceBase() + 30) + "()",
                  "run", "8");
    EXPECT_FALSE(fail.ok);
    EXPECT_EQ(ErrCode::CompileError, fail.code);
    EXPECT_NE(fail.message.find("injected"), std::string::npos) << fail.message;

    // The daemon is unharmed: the same module compiles once the fault
    // cleared (the failed attempt must not have poisoned the cache).
    fault::FaultPlan::instance().disarm();
    Client::Reply r =
        c.compile(moduleSource(nonceBase() + 30), "Svc" + std::to_string(nonceBase() + 30) + "()",
                  "run", "8");
    ASSERT_TRUE(r.ok) << r.message;
    EXPECT_FALSE(r.cacheHit);

    Client::Reply st = c.stats();
    EXPECT_GE(counterIn(st.statsJson, "wjd.compile.errors"), 1);
}

// ------------------------------------------------------- admission control

TEST_F(ServiceTest, SaturatedQueueShedsLoadWithTypedRejections) {
    // One worker and a 2-slot queue: a pipelined burst must overflow.
    startDaemon(1, 64, 2);
    Client c = connect();

    constexpr int kBurst = 16;
    for (int i = 0; i < kBurst; ++i) {
        const int nonce = nonceBase() + 40 + i;
        Body b;
        b.set("new", "Svc" + std::to_string(nonce) + "()");
        b.set("method", "run");
        b.set("args", "8");
        b.payload = moduleSource(nonce);
        Frame req{MsgType::Compile, static_cast<uint64_t>(i + 1), encodeBody(b)};
        writeFrame(c.fd(), req);
    }
    int accepted = 0, rejected = 0, other = 0;
    for (int i = 0; i < kBurst; ++i) {
        Frame resp;
        ASSERT_TRUE(c.readReply(resp)) << "connection died mid-burst";
        if (resp.type == MsgType::Ok) {
            ++accepted;
        } else {
            Body eb = decodeBody(resp.body);
            if (bodyField(eb, "name") == errName(ErrCode::ResourceExhausted)) ++rejected;
            else ++other;
        }
    }
    EXPECT_EQ(kBurst, accepted + rejected);
    EXPECT_EQ(0, other);
    EXPECT_GE(rejected, 1) << "a 2-slot queue should shed a 16-deep burst";
    EXPECT_GE(accepted, 1);
    EXPECT_TRUE(c.ping().ok) << "daemon must stay responsive after shedding";

    Client::Reply st = c.stats();
    EXPECT_GE(counterIn(st.statsJson, "wjd.admission.rejects.queue"), 1);
}

TEST_F(ServiceTest, PerClientInflightCapRejectsTheGreedyClient) {
    // Per-client cap of 1 with a deep queue: pipelining two compiles on one
    // connection must bounce the second, while a second CONNECTION is
    // admitted fine.
    startDaemon(1, 1, 64);
    Client greedy = connect();
    for (int i = 0; i < 2; ++i) {
        const int nonce = nonceBase() + 60 + i;
        Body b;
        b.set("new", "Svc" + std::to_string(nonce) + "()");
        b.set("method", "run");
        b.set("args", "8");
        b.payload = moduleSource(nonce);
        Frame req{MsgType::Compile, static_cast<uint64_t>(i + 1), encodeBody(b)};
        writeFrame(greedy.fd(), req);
    }
    int okN = 0, rejectedN = 0;
    for (int i = 0; i < 2; ++i) {
        Frame resp;
        ASSERT_TRUE(greedy.readReply(resp));
        if (resp.type == MsgType::Ok) ++okN;
        else if (bodyField(decodeBody(resp.body), "name") ==
                 errName(ErrCode::ResourceExhausted))
            ++rejectedN;
    }
    EXPECT_EQ(1, okN);
    EXPECT_EQ(1, rejectedN);

    Client::Reply st = greedy.stats();
    EXPECT_GE(counterIn(st.statsJson, "wjd.admission.rejects.client"), 1);
}

// ------------------------------------------------------------ protocol edge

TEST_F(ServiceTest, GarbageBytesGetBadRequestNotACrash) {
    startDaemon();
    Client c = connect();
    // Wrong magic entirely; at least one full header's worth of bytes so
    // the daemon's framed read completes and can reject it.
    const char junk[] = "GET / HTTP/1.1\r\nHost: nope\r\n\r\n";
    static_assert(sizeof junk - 1 >= 20);
    c.sendRaw(junk, sizeof junk - 1);
    Frame resp;
    ASSERT_TRUE(c.readReply(resp)) << "daemon should answer before closing";
    EXPECT_EQ(MsgType::Error, resp.type);
    EXPECT_EQ(errName(ErrCode::BadRequest), bodyField(decodeBody(resp.body), "name"));

    // That connection is dead, but the daemon is not.
    Client c2 = connect();
    EXPECT_TRUE(c2.ping().ok);
}

TEST_F(ServiceTest, OversizedBodyIsRejected) {
    startDaemon();
    Client c = connect();
    // Valid magic, absurd bodyLen: must be refused without allocating it.
    unsigned char hdr[20] = {0};
    hdr[0] = 'W'; hdr[1] = 'J'; hdr[2] = 'D'; hdr[3] = '1';
    hdr[4] = 1;                               // type Compile
    hdr[16] = 0xff; hdr[17] = 0xff; hdr[18] = 0xff; hdr[19] = 0x7f;  // ~2 GiB
    c.sendRaw(hdr, sizeof hdr);
    Frame resp;
    ASSERT_TRUE(c.readReply(resp));
    EXPECT_EQ(MsgType::Error, resp.type);
    Client c2 = connect();
    EXPECT_TRUE(c2.ping().ok);
}

TEST_F(ServiceTest, TruncatedFrameThenDisconnectLeavesDaemonHealthy) {
    startDaemon();
    {
        Client c = connect();
        unsigned char partial[8] = {'W', 'J', 'D', '1', 1, 0, 0, 0};
        c.sendRaw(partial, sizeof partial);  // half a header, then EOF
        c.close();
    }
    Client c2 = connect();
    EXPECT_TRUE(c2.ping().ok);
}

#ifdef __linux__
/// Open fds of this process — the in-process daemon's fds included.
int openFdCount() {
    int n = 0;
    for ([[maybe_unused]] const auto& e : fs::directory_iterator("/proc/self/fd")) ++n;
    return n;
}

TEST_F(ServiceTest, DisconnectedClientsReleaseTheirFds) {
    startDaemon();
    // Warm up one connect/disconnect cycle so lazily-created fds (metrics
    // files, cache dir handles) are part of the baseline.
    {
        Client w = connect();
        ASSERT_TRUE(w.ping().ok);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const int baseline = openFdCount();

    // A long-running daemon's stated workload: many short-lived clients.
    // Each accepted connection must give its fd back when the client
    // hangs up, not hold it until daemon shutdown.
    constexpr int kClients = 50;
    for (int i = 0; i < kClients; ++i) {
        Client c = connect();
        ASSERT_TRUE(c.ping().ok);
    }

    // Readers close their fd on EOF asynchronously; poll briefly.
    int now = -1;
    for (int i = 0; i < 100; ++i) {
        now = openFdCount();
        if (now <= baseline + 2) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_LE(now, baseline + 2)
        << kClients << " disconnected clients leaked fds (baseline " << baseline << ")";
    // And the daemon is still accepting.
    Client again = connect();
    EXPECT_TRUE(again.ping().ok);
}
#endif

// ---------------------------------------------------------- graceful drain

TEST_F(ServiceTest, ShutdownDrainsInflightCompilesFirst) {
    startDaemon(1);
    const int nonce = nonceBase() + 70;

    // Queue a fresh compile, then immediately request shutdown from a
    // second connection. The shutdown must not be acknowledged until the
    // compile finished, and the compile client must still get its answer.
    Client worker = connect();
    Body b;
    b.set("new", "Svc" + std::to_string(nonce) + "()");
    b.set("method", "run");
    b.set("args", "8");
    b.payload = moduleSource(nonce);
    Frame req{MsgType::Compile, 9, encodeBody(b)};
    writeFrame(worker.fd(), req);

    Client admin = connect();
    Client::Reply sd = admin.shutdown();
    EXPECT_TRUE(sd.ok);

    Frame resp;
    ASSERT_TRUE(worker.readReply(resp)) << "in-flight compile was dropped by shutdown";
    EXPECT_EQ(MsgType::Ok, resp.type);

    daemon_->wait();
    // Post-drain: new connections are refused (socket is gone).
    Client late;
    EXPECT_THROW(late.connect(scratch_ + "/wjd.sock"), UsageError);
    daemon_.reset();
}

TEST_F(ServiceTest, CompilesArrivingDuringDrainGetShuttingDown) {
    startDaemon(1);
    Client c = connect();
    ASSERT_TRUE(c.ping().ok);
    daemon_->requestStop();
    // The existing connection stays readable during the drain; a new
    // Compile on it must bounce with the typed drain code.
    Client::Reply r = c.compile(moduleSource(nonceBase() + 80),
                                "Svc" + std::to_string(nonceBase() + 80) + "()", "run");
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(ErrCode::ShuttingDown, r.code);
    daemon_->wait();
    daemon_.reset();
}

// ======================================================================
// ProcWjdTest — the real binary (label "proc"; WJD_BIN from CMake).
// ======================================================================

namespace {

struct WjdProc {
    pid_t pid = -1;
    std::string sock;
};

/// Forks WJD_BIN --socket <sock> --quiet with the given extra env.
WjdProc spawnWjd(const std::string& sock,
                 const std::vector<std::pair<std::string, std::string>>& env = {}) {
    WjdProc p;
    p.sock = sock;
    p.pid = ::fork();
    if (p.pid == 0) {
        for (const auto& [k, v] : env) ::setenv(k.c_str(), v.c_str(), 1);
        ::execl(WJD_BIN, WJD_BIN, "--socket", sock.c_str(), "--quiet",
                static_cast<char*>(nullptr));
        ::_exit(127);
    }
    return p;
}

/// Polls until the daemon answers a ping (10 s budget).
bool awaitUp(const std::string& sock) {
    for (int i = 0; i < 200; ++i) {
        try {
            Client c;
            c.connect(sock);
            if (c.ping().ok) return true;
        } catch (const WjError&) {
        }
        ::usleep(50 * 1000);
    }
    return false;
}

/// waitpid with a 30 s watchdog; returns the exit status, -1 on timeout.
int awaitExit(pid_t pid) {
    for (int i = 0; i < 600; ++i) {
        int status = 0;
        const pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid) return status;
        ::usleep(50 * 1000);
    }
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return -1;
}

class ProcWjdTest : public ::testing::Test {
protected:
    void SetUp() override { scratch_ = makeScratchDir("wjd_proc"); }
    void TearDown() override {
        std::error_code ec;
        fs::remove_all(scratch_, ec);
    }
    std::string scratch_;
};

} // namespace

TEST_F(ProcWjdTest, SigtermDrainsInflightWorkThenExitsZero) {
    // A wrapper compiler that sleeps keeps the compile in flight long
    // enough to SIGTERM the daemon mid-build deterministically.
    const std::string wrapper = scratch_ + "/slow-cc.sh";
    {
        std::ofstream out(wrapper);
        out << "#!/bin/sh\nsleep 0.5\nexec cc \"$@\"\n";
    }
    ::chmod(wrapper.c_str(), 0755);

    const std::string sock = scratch_ + "/wjd.sock";
    WjdProc d = spawnWjd(sock, {{"WJ_CACHE_DIR", scratch_ + "/cache"},
                                {"WJ_CC", wrapper}});
    ASSERT_TRUE(awaitUp(sock));

    // Submit a fresh compile; once the daemon reports it in flight,
    // SIGTERM. Drain semantics: the response must still arrive, the
    // process must exit 0, and the socket file must be removed.
    const int nonce = nonceBase() + 90;
    Client c;
    c.connect(sock);
    Body b;
    b.set("new", "Svc" + std::to_string(nonce) + "()");
    b.set("method", "run");
    b.set("args", "8");
    b.payload = moduleSource(nonce);
    Frame req{MsgType::Compile, 5, encodeBody(b)};
    writeFrame(c.fd(), req);

    bool inflightSeen = false;
    for (int i = 0; i < 200 && !inflightSeen; ++i) {
        Client probe;
        probe.connect(sock);
        Client::Reply st = probe.stats();
        inflightSeen = st.ok && counterIn(st.statsJson, "wjd.inflight.current") >= 1;
        if (!inflightSeen) ::usleep(10 * 1000);
    }
    ASSERT_TRUE(inflightSeen) << "compile never showed up as in-flight";

    ASSERT_EQ(0, ::kill(d.pid, SIGTERM));

    Frame resp;
    ASSERT_TRUE(c.readReply(resp)) << "SIGTERM dropped an in-flight compile";
    EXPECT_EQ(MsgType::Ok, resp.type);

    const int status = awaitExit(d.pid);
    ASSERT_NE(-1, status) << "daemon hung after SIGTERM";
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "exit status " << status;
    EXPECT_FALSE(fs::exists(sock)) << "socket file left behind";
}

TEST_F(ProcWjdTest, TwoDaemonsOneCacheCompileTheSameModuleOnce) {
    // Two independent wjd processes share one cache directory. The same
    // fresh module submitted to both concurrently must cost exactly ONE
    // external cc invocation: the second daemon joins the first's build
    // via the cross-process BuildLock (or adopts the published artifact).
    //
    // cc invocations are counted exactly with a wrapper compiler that
    // appends to a log before delegating; a 300 ms sleep in the wrapper
    // forces the two submissions to overlap.
    const std::string log = scratch_ + "/cc.log";
    const std::string wrapper = scratch_ + "/cc-wrapper.sh";
    {
        std::ofstream out(wrapper);
        out << "#!/bin/sh\necho x >> '" << log << "'\nsleep 0.3\nexec cc \"$@\"\n";
    }
    ::chmod(wrapper.c_str(), 0755);

    const std::string cacheDir = scratch_ + "/cache";
    std::vector<std::pair<std::string, std::string>> env = {
        {"WJ_CACHE_DIR", cacheDir}, {"WJ_CC", wrapper}};
    WjdProc d1 = spawnWjd(scratch_ + "/wjd1.sock", env);
    WjdProc d2 = spawnWjd(scratch_ + "/wjd2.sock", env);
    ASSERT_TRUE(awaitUp(d1.sock));
    ASSERT_TRUE(awaitUp(d2.sock));

    const int nonce = nonceBase() + 95;
    const std::string src = moduleSource(nonce);
    const std::string newExpr = "Svc" + std::to_string(nonce) + "()";

    Client::Reply r1, r2;
    std::thread t1([&] {
        Client c;
        c.connect(d1.sock);
        r1 = c.compile(src, newExpr, "run", "8");
    });
    std::thread t2([&] {
        Client c;
        c.connect(d2.sock);
        r2 = c.compile(src, newExpr, "run", "8");
    });
    t1.join();
    t2.join();

    ASSERT_TRUE(r1.ok) << r1.message;
    ASSERT_TRUE(r2.ok) << r2.message;
    EXPECT_EQ(r1.keyHex, r2.keyHex);

    // Exactly one wrapper invocation across both daemons.
    int ccRuns = 0;
    {
        std::ifstream in(log);
        std::string line;
        while (std::getline(in, line)) ++ccRuns;
    }
    EXPECT_EQ(1, ccRuns) << "both daemons ran cc for the same key";

    // And the dedup is visible in the daemons' own metrics: one of them
    // joined a foreign in-flight build (crossproc) or served the freshly
    // published entry as a hit.
    const bool oneJoined = r1.cacheHit != r2.cacheHit;
    int64_t crossJoins = 0;
    for (const auto& sock : {d1.sock, d2.sock}) {
        Client c;
        c.connect(sock);
        Client::Reply st = c.stats();
        if (st.ok) crossJoins += std::max<int64_t>(
            0, counterIn(st.statsJson, "jit.cache.joins.crossproc"));
    }
    EXPECT_TRUE(oneJoined || crossJoins >= 1)
        << "no evidence of cross-process dedup (hits " << r1.cacheHit << "/"
        << r2.cacheHit << ", crossJoins " << crossJoins << ")";

    for (const auto& d : {d1, d2}) {
        Client c;
        c.connect(d.sock);
        (void)c.shutdown();
        const int status = awaitExit(d.pid);
        EXPECT_TRUE(status != -1 && WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }
}
