// Tests for Section 3.2: the strict-final and semi-immutable properties and
// every coding rule, each exercised with accepting and rejecting programs.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "rules/rules.h"

using namespace wj;
using namespace wj::dsl;

namespace {

/// True if some violation's rule id contains `ruleTag`.
bool hasViolation(const std::vector<Violation>& vs, const std::string& ruleTag) {
    for (const auto& v : vs) {
        if (v.rule.find(ruleTag) != std::string::npos) return true;
    }
    return false;
}

} // namespace

// ------------------------------------------------------------ strict-final

TEST(StrictFinal, PrimitivesAndTheirArrays) {
    ProgramBuilder pb;
    Program p = pb.build();
    TypeProperties props(p);
    EXPECT_TRUE(props.isStrictFinal(Type::i32()));
    EXPECT_TRUE(props.isStrictFinal(Type::array(Type::f64())));
    EXPECT_TRUE(props.isStrictFinal(Type::array(Type::array(Type::boolean()))));
}

TEST(StrictFinal, LeafClassWithPrimFields) {
    ProgramBuilder pb;
    pb.cls("Leaf").finalClass().field("x", Type::f32());
    Program p = pb.build();
    TypeProperties props(p);
    EXPECT_TRUE(props.isStrictFinal(Type::cls("Leaf")));
}

TEST(StrictFinal, ClassWithSubclassIsNot) {
    ProgramBuilder pb;
    pb.cls("Base");
    pb.cls("Sub").extends("Base");
    Program p = pb.build();
    TypeProperties props(p);
    EXPECT_FALSE(props.isStrictFinal(Type::cls("Base")));
    EXPECT_TRUE(props.isStrictFinal(Type::cls("Sub")));  // leaf
    EXPECT_NE("", props.explainStrictFinal(Type::cls("Base")));
}

TEST(StrictFinal, InterfaceIsNot) {
    ProgramBuilder pb;
    pb.cls("I").interfaceClass();
    Program p = pb.build();
    TypeProperties props(p);
    EXPECT_FALSE(props.isStrictFinal(Type::cls("I")));
}

TEST(StrictFinal, FieldOfNonLeafTypeBreaksIt) {
    ProgramBuilder pb;
    pb.cls("Base");
    pb.cls("Sub").extends("Base");
    pb.cls("Holder").field("b", Type::cls("Base"));
    Program p = pb.build();
    TypeProperties props(p);
    EXPECT_FALSE(props.isStrictFinal(Type::cls("Holder")));
}

TEST(StrictFinal, InheritedFieldsCount) {
    ProgramBuilder pb;
    pb.cls("I").interfaceClass();
    pb.cls("SuperWithBadField").field("i", Type::cls("I"));
    pb.cls("Child").extends("SuperWithBadField");
    Program p = pb.build();
    TypeProperties props(p);
    EXPECT_FALSE(props.isStrictFinal(Type::cls("Child")));
}

TEST(StrictFinal, RecursiveTypeIsNot) {
    ProgramBuilder pb;
    pb.cls("Node").field("next", Type::cls("Node"));
    Program p = pb.build();
    TypeProperties props(p);
    EXPECT_FALSE(props.isStrictFinal(Type::cls("Node")));
}

// ---------------------------------------------------------- semi-immutable

TEST(SemiImmutable, SimpleValueClass) {
    ProgramBuilder pb;
    auto& c = pb.cls("V").finalClass().field("x", Type::f32());
    c.ctor().param("x_", Type::f32()).body(blk(setSelf("x", lv("x_"))));
    Program p = pb.build();
    TypeProperties props(p);
    EXPECT_TRUE(props.isSemiImmutable(Type::cls("V")));
}

TEST(SemiImmutable, CtorWithBranchRejected) {
    ProgramBuilder pb;
    auto& c = pb.cls("V").finalClass().field("x", Type::i32());
    c.ctor().param("x_", Type::i32())
        .body(blk(ifs(gt(lv("x_"), ci(0)), blk(setSelf("x", lv("x_"))),
                      blk(setSelf("x", ci(0))))));
    Program p = pb.build();
    TypeProperties props(p);
    EXPECT_FALSE(props.isSemiImmutable(Type::cls("V")));
    EXPECT_NE(props.explainSemiImmutable(Type::cls("V")).find("branch"), std::string::npos);
}

TEST(SemiImmutable, CtorWithMethodCallRejected) {
    ProgramBuilder pb;
    auto& helper = pb.cls("H").finalClass();
    helper.method("get", Type::i32()).body(blk(ret(ci(1))));
    auto& c = pb.cls("V").finalClass().field("x", Type::i32());
    c.ctor().param("h", Type::cls("H")).body(blk(setSelf("x", call(lv("h"), "get"))));
    Program p = pb.build();
    TypeProperties props(p);
    EXPECT_FALSE(props.isSemiImmutable(Type::cls("V")));
}

TEST(SemiImmutable, CtorUsingThisAsValueRejected) {
    ProgramBuilder pb;
    auto& c = pb.cls("V").field("x", Type::i32()).field("y", Type::i32());
    c.ctor().body(blk(setSelf("x", ci(1)), setSelf("y", selff("x"))));
    Program p = pb.build();
    TypeProperties props(p);
    EXPECT_FALSE(props.isSemiImmutable(Type::cls("V")));
}

TEST(SemiImmutable, NewInCtorAllowed) {
    // Allocation expressions (arrays, nested semi-immutable objects) are
    // fine in constructors — the stencil grid relies on this.
    ProgramBuilder pb;
    auto& c = pb.cls("G").finalClass().field("data", Type::array(Type::f32()));
    c.ctor().param("n", Type::i32()).body(blk(setSelf("data", newArr(Type::f32(), lv("n")))));
    Program p = pb.build();
    TypeProperties props(p);
    EXPECT_TRUE(props.isSemiImmutable(Type::cls("G")));
}

TEST(SemiImmutable, RecursiveTypeRejected) {
    ProgramBuilder pb;
    pb.cls("A").field("b", Type::cls("B"));
    pb.cls("B").field("a", Type::cls("A"));
    Program p = pb.build();
    TypeProperties props(p);
    EXPECT_FALSE(props.isSemiImmutable(Type::cls("A")));
}

TEST(SemiImmutable, SuperChainChecked) {
    ProgramBuilder pb;
    auto& bad = pb.cls("BadSuper").field("x", Type::i32());
    bad.ctor().body(blk(ifs(cb(true), blk(setSelf("x", ci(1))))));
    pb.cls("Child").extends("BadSuper");
    Program p = pb.build();
    TypeProperties props(p);
    EXPECT_FALSE(props.isSemiImmutable(Type::cls("Child")));
}

// ------------------------------------------------------------ coding rules

namespace {

/// Common scaffold: a class "T" with a method "f" whose body is given.
std::vector<Violation> verifyBody(Block body) {
    ProgramBuilder pb;
    pb.cls("T").method("f", Type::voidTy()).param("p", Type::i32()).body(std::move(body));
    Program p = pb.build();
    return verifyCodingRules(p);
}

} // namespace

TEST(CodingRules, CleanProgramPasses) {
    auto vs = verifyBody(blk(decl("x", Type::i32(), add(lv("p"), ci(1))), retVoid()));
    EXPECT_TRUE(vs.empty());
}

TEST(CodingRules, Rule3ParameterAssignment) {
    auto vs = verifyBody(blk(assign("p", ci(0)), retVoid()));
    EXPECT_TRUE(hasViolation(vs, "rule-3"));
}

TEST(CodingRules, Rule7ConditionalOperator) {
    auto vs = verifyBody(blk(decl("x", Type::i32(), ternary(cb(true), ci(1), ci(2))), retVoid()));
    EXPECT_TRUE(hasViolation(vs, "rule-7"));
}

TEST(CodingRules, Rule7ReferenceEquality) {
    ProgramBuilder pb;
    pb.cls("V").finalClass();
    pb.cls("T").method("f", Type::boolean())
        .body(blk(decl("a", Type::cls("V"), newObj("V")), decl("b", Type::cls("V"), newObj("V")),
                  ret(eq(lv("a"), lv("b")))));
    Program p = pb.build();
    EXPECT_TRUE(hasViolation(verifyCodingRules(p), "rule-7"));
}

TEST(CodingRules, PrimitiveEqualityAllowed) {
    auto vs = verifyBody(blk(decl("b", Type::boolean(), eq(lv("p"), ci(3))), retVoid()));
    EXPECT_TRUE(vs.empty());
}

TEST(CodingRules, Rule2LocalMustBeStrictFinal) {
    ProgramBuilder pb;
    pb.cls("I").interfaceClass();
    pb.cls("A").implements("I").finalClass();
    pb.cls("T").method("f", Type::voidTy())
        .body(blk(decl("x", Type::cls("I"), newObj("A")), retVoid()));
    Program p = pb.build();
    EXPECT_TRUE(hasViolation(verifyCodingRules(p), "rule-2"));
}

TEST(CodingRules, Rule2ReturnMustBeStrictFinal) {
    ProgramBuilder pb;
    pb.cls("I").interfaceClass();
    pb.cls("A").implements("I").finalClass();
    pb.cls("T").method("f", Type::cls("I")).body(blk(ret(newObj("A"))));
    Program p = pb.build();
    EXPECT_TRUE(hasViolation(verifyCodingRules(p), "rule-2"));
}

TEST(CodingRules, ParametersAndFieldsExemptFromRule2) {
    ProgramBuilder pb;
    pb.cls("I").interfaceClass();
    pb.cls("A").implements("I").finalClass();
    auto& t = pb.cls("T").field("i", Type::cls("I"));
    t.ctor().param("i_", Type::cls("I")).body(blk(setSelf("i", lv("i_"))));
    t.method("f", Type::voidTy()).param("j", Type::cls("I")).body(blk(retVoid()));
    Program p = pb.build();
    EXPECT_TRUE(verifyCodingRules(p).empty());
}

TEST(CodingRules, Rule6DirectRecursion) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("f", Type::i32())
        .param("n", Type::i32())
        .body(blk(ifs(le(lv("n"), ci(0)), blk(ret(ci(0)))),
                  ret(call(self(), "f", sub(lv("n"), ci(1))))));
    Program p = pb.build();
    EXPECT_TRUE(hasViolation(verifyCodingRules(p), "rule-6"));
}

TEST(CodingRules, Rule6MutualRecursion) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("f", Type::voidTy()).body(blk(exprS(call(self(), "g")), retVoid()));
    t.method("g", Type::voidTy()).body(blk(exprS(call(self(), "f")), retVoid()));
    Program p = pb.build();
    EXPECT_TRUE(hasViolation(verifyCodingRules(p), "rule-6"));
}

TEST(CodingRules, Rule6VirtualRecursionThroughInterface) {
    // f calls i.g(); some implementation of g calls back into f.
    ProgramBuilder pb;
    pb.cls("I").interfaceClass().method("g", Type::voidTy())
        .param("t", Type::cls("T")).abstractMethod();
    auto& impl = pb.cls("Impl").implements("I").finalClass();
    impl.method("g", Type::voidTy()).param("t", Type::cls("T"))
        .body(blk(exprS(call(lv("t"), "f", lv("t"))), retVoid()));
    // Note: parameter of type T (non-strict-final is fine for params).
    auto& t = pb.cls("T").field("i", Type::cls("I"));
    t.ctor().param("i_", Type::cls("I")).body(blk(setSelf("i", lv("i_"))));
    t.method("f", Type::voidTy()).param("self2", Type::cls("T"))
        .body(blk(exprS(call(selff("i"), "g", lv("self2"))), retVoid()));
    Program p = pb.build();
    EXPECT_TRUE(hasViolation(verifyCodingRules(p), "rule-6"));
}

TEST(CodingRules, SemiImmutableFieldStoreOutsideCtor) {
    ProgramBuilder pb;
    auto& t = pb.cls("T").field("x", Type::i32());
    t.ctor().body(blk(setSelf("x", ci(0))));
    t.method("mutate", Type::voidTy()).body(blk(setSelf("x", ci(1)), retVoid()));
    Program p = pb.build();
    EXPECT_TRUE(hasViolation(verifyCodingRules(p), "semi-immutable"));
}

TEST(CodingRules, ArrayFieldStoreAllowed) {
    // The double-buffer swap idiom: array-typed fields stay mutable.
    ProgramBuilder pb;
    auto& t = pb.cls("T").field("buf", Type::array(Type::f32()));
    t.ctor().body(blk(setSelf("buf", newArr(Type::f32(), ci(4)))));
    t.method("replace", Type::voidTy())
        .body(blk(setSelf("buf", newArr(Type::f32(), ci(8))), retVoid()));
    Program p = pb.build();
    EXPECT_TRUE(verifyCodingRules(p).empty());
}

TEST(CodingRules, NonWootinJClassesExempt) {
    // "The rest of the program does not have to follow the rules."
    ProgramBuilder pb;
    auto& t = pb.cls("Host").notWootinJ();
    t.method("f", Type::i32())
        .param("n", Type::i32())
        .body(blk(ret(ternary(gt(lv("n"), ci(0)), ci(1), ci(0)))));  // ?: ok here
    Program p = pb.build();
    EXPECT_TRUE(verifyCodingRules(p).empty());
}

TEST(CodingRules, ViolationsAggregated) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("f", Type::voidTy())
        .param("p", Type::i32())
        .body(blk(assign("p", ci(0)),
                  decl("x", Type::i32(), ternary(cb(true), ci(1), ci(2))), retVoid()));
    Program p = pb.build();
    auto vs = verifyCodingRules(p);
    EXPECT_GE(vs.size(), 2u);
    EXPECT_TRUE(hasViolation(vs, "rule-3"));
    EXPECT_TRUE(hasViolation(vs, "rule-7"));
}

TEST(CodingRules, RequireThrowsWithDetails) {
    ProgramBuilder pb;
    auto& t = pb.cls("T");
    t.method("f", Type::voidTy()).param("p", Type::i32())
        .body(blk(assign("p", ci(0)), retVoid()));
    Program p = pb.build();
    try {
        requireCodingRules(p);
        FAIL() << "expected RuleViolationError";
    } catch (const RuleViolationError& e) {
        EXPECT_EQ(1u, e.violations().size());
        EXPECT_NE(std::string(e.what()).find("rule-3"), std::string::npos);
    }
}
