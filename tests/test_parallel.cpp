// The intra-rank multithreaded execution backend, end to end: the static
// chunker and thread pool (runtime/threadpool.h), the dependence prover's
// per-loop verdicts (analysis/analysis.cpp), the parallel-for outliner in
// the translator (WJ_PARALLEL), and the determinism contract — threaded
// runs must be bitwise-identical to serial for every WJ_THREADS value.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analysis.h"
#include "gpusim/gpusim.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "runtime/threadpool.h"
#include "runtime/wjrt.h"
#include "stencil/stencil_lib.h"
#include "support/diagnostics.h"

using namespace wj;
using runtime::ThreadPool;
using runtime::staticChunk;

namespace {

/// Scoped setenv that restores the previous value on destruction.
class ScopedEnv {
public:
    ScopedEnv(const char* name, const char* value) : name_(name) {
        if (const char* old = std::getenv(name)) {
            had_ = true;
            old_ = old;
        }
        setenv(name, value, 1);
    }
    ~ScopedEnv() {
        if (had_) setenv(name_, old_.c_str(), 1);
        else unsetenv(name_);
    }

private:
    const char* name_;
    bool had_ = false;
    std::string old_;
};

bool bitEq(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

bool reportHas(const analysis::Result& r, const std::string& needle) {
    for (const auto& line : r.parallelReport) {
        if (line.find(needle) != std::string::npos) return true;
    }
    return false;
}

} // namespace

// ------------------------------------------------------------ staticChunk

TEST(StaticChunk, PartitionIsExactAndContiguous) {
    for (int chunks : {1, 2, 3, 7, 8}) {
        for (int64_t lo : {0, 5, -3}) {
            const int64_t hi = lo + 29;
            int64_t prev = lo;
            for (int i = 0; i < chunks; ++i) {
                int64_t clo, chi;
                staticChunk(lo, hi, chunks, i, &clo, &chi);
                EXPECT_EQ(prev, clo) << "gap before chunk " << i;
                EXPECT_LE(clo, chi);
                prev = chi;
            }
            EXPECT_EQ(hi, prev) << chunks << " chunks over [" << lo << "," << hi << ")";
        }
    }
}

TEST(StaticChunk, BoundariesDependOnlyOnRangeAndCount) {
    int64_t a0, a1, b0, b1;
    staticChunk(0, 100, 4, 2, &a0, &a1);
    staticChunk(0, 100, 4, 2, &b0, &b1);
    EXPECT_EQ(a0, b0);
    EXPECT_EQ(a1, b1);
}

// -------------------------------------------------------------- ThreadPool

namespace {

struct FillCtx {
    int64_t* out;
};

void fillBody(int64_t lo, int64_t hi, void* ctx) {
    auto* c = static_cast<FillCtx*>(ctx);
    for (int64_t i = lo; i < hi; ++i) c->out[i] = i * i;
}

std::vector<int64_t> runFill(int threads, int64_t n) {
    ScopedEnv env("WJ_THREADS", std::to_string(threads).c_str());
    std::vector<int64_t> out(static_cast<size_t>(n), -1);
    FillCtx ctx{out.data()};
    ThreadPool::instance().parallelFor(0, n, fillBody, &ctx);
    return out;
}

} // namespace

TEST(ThreadPoolTest, DisjointWritesIdenticalAcrossThreadCounts) {
    const auto serial = runFill(1, 1000);
    for (int t : {2, 3, 8}) {
        EXPECT_EQ(serial, runFill(t, 1000)) << "WJ_THREADS=" << t;
    }
}

TEST(ThreadPoolTest, EmptyAndSingleIterationRanges) {
    ScopedEnv env("WJ_THREADS", "8");
    std::vector<int64_t> out(4, -1);
    FillCtx ctx{out.data()};
    ThreadPool::instance().parallelFor(3, 3, fillBody, &ctx);  // empty: no-op
    EXPECT_EQ(-1, out[0]);
    ThreadPool::instance().parallelFor(2, 3, fillBody, &ctx);  // one iteration
    EXPECT_EQ(4, out[2]);
}

TEST(ThreadPoolTest, PoolPersistsAcrossDispatches) {
    ScopedEnv env("WJ_THREADS", "4");
    std::vector<int64_t> out(64);
    FillCtx ctx{out.data()};
    ThreadPool::instance().parallelFor(0, 64, fillBody, &ctx);
    const int64_t spawned = ThreadPool::instance().workersSpawned();
    EXPECT_GE(spawned, 3);  // 4 chunks = caller + at least 3 workers
    for (int i = 0; i < 5; ++i) ThreadPool::instance().parallelFor(0, 64, fillBody, &ctx);
    EXPECT_EQ(spawned, ThreadPool::instance().workersSpawned())
        << "dispatches at a fixed WJ_THREADS must reuse workers, not respawn";
}

namespace {

void throwBody(int64_t lo, int64_t, void*) {
    if (lo >= 8) throw ExecError("chunk failed");
}

void nestedBody(int64_t lo, int64_t hi, void* ctx) {
    // A nested dispatch from a worker must run inline and serial rather
    // than deadlock on the pool it is already occupying.
    ThreadPool::instance().parallelFor(lo, hi, fillBody, ctx);
}

void mpiFromWorkerBody(int64_t, int64_t, void*) {
    // Comm intrinsics are only legal on the rank's main thread; the guard
    // must trip on a pool worker (the prover keeps them out of parallel
    // loops, so reaching this is a translator bug in real runs).
    if (ThreadPool::onWorkerThread()) (void)wjrt_mpi_rank();
}

} // namespace

TEST(ThreadPoolTest, WorkerExceptionRethrownAtDispatch) {
    ScopedEnv env("WJ_THREADS", "4");
    EXPECT_THROW(ThreadPool::instance().parallelFor(0, 16, throwBody, nullptr), ExecError);
    // The pool stays usable after a failed job.
    std::vector<int64_t> out(16);
    FillCtx ctx{out.data()};
    ThreadPool::instance().parallelFor(0, 16, fillBody, &ctx);
    EXPECT_EQ(225, out[15]);
}

TEST(ThreadPoolTest, NestedDispatchRunsInline) {
    ScopedEnv env("WJ_THREADS", "4");
    std::vector<int64_t> out(100, -1);
    FillCtx ctx{out.data()};
    ThreadPool::instance().parallelFor(0, 100, nestedBody, &ctx);
    for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(i * i, out[static_cast<size_t>(i)]);
}

TEST(ThreadPoolTest, CommIntrinsicOnWorkerThreadTrips) {
    ScopedEnv env("WJ_THREADS", "4");
    try {
        ThreadPool::instance().parallelFor(0, 4, mpiFromWorkerBody, nullptr);
        FAIL() << "expected the main-thread guard to throw";
    } catch (const ExecError& e) {
        EXPECT_NE(nullptr, std::strstr(e.what(), "main thread"));
    }
}

TEST(ThreadPoolTest, ConcurrentDispatchersStayCorrect) {
    // Two MiniMPI ranks racing for the pool: the loser runs inline and
    // serial (busy flag), so both results must still be exact.
    ScopedEnv env("WJ_THREADS", "4");
    constexpr int64_t kN = 4096;
    std::vector<int64_t> outA(kN), outB(kN);
    std::atomic<int> ready{0};
    auto race = [&ready](std::vector<int64_t>* out) {
        FillCtx ctx{out->data()};
        ready.fetch_add(1);
        while (ready.load() < 2) {}
        for (int rep = 0; rep < 50; ++rep) {
            ThreadPool::instance().parallelFor(0, kN, fillBody, &ctx);
        }
    };
    std::thread ta(race, &outA), tb(race, &outB);
    ta.join();
    tb.join();
    for (int64_t i = 0; i < kN; i += 97) {
        ASSERT_EQ(i * i, outA[static_cast<size_t>(i)]);
        ASSERT_EQ(i * i, outB[static_cast<size_t>(i)]);
    }
}

// -------------------------------------------------- prover verdicts (lint)

TEST(ParallelProver, StencilInteriorLoopProvenWithAliasGuard) {
    Program p = stencil::buildProgram();
    Interp in(p);
    Value r = stencil::makeMpiRunner(in, 18, 18, 8,
                                     stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f), 42);
    auto res = analysis::analyzeEntry(p, r, "run", {Value::ofI32(2)});
    // The interior triple loop: outermost z proven independent up to
    // cur/nxt aliasing, which the translator guards at runtime.
    EXPECT_TRUE(reportHas(res, "StencilCPU3D_MPI.step: for (z): parallel (guarded)"));
    EXPECT_TRUE(reportHas(res, "'cur' != 'nxt'"));
    // The halo-exchange step loop must stay on the rank's main thread.
    EXPECT_TRUE(reportHas(res, "StencilCPU3D_MPI.run: for (s): serial"));
    EXPECT_TRUE(reportHas(res, "must stay on the rank's main thread"));
    // The checksum reduction carries a scalar.
    EXPECT_TRUE(reportHas(res, "loop-carried scalar dependence"));
}

TEST(ParallelProver, FoxBlockMultiplyProvenChecksumRefused) {
    Program p = matmul::buildProgram();
    Interp in(p);
    Value app = matmul::makeMpiFoxApp(in, matmul::Calc::Optimized, 2);
    auto res = analysis::analyzeEntry(p, app, "run", {Value::ofI32(32), Value::ofI32(7)});
    EXPECT_TRUE(
        reportHas(res, "OptimizedCalculator.multiplyAcc: for (i): parallel (guarded)"));
    EXPECT_TRUE(reportHas(res, "'br' != 'cr'"));
    EXPECT_TRUE(reportHas(res, "SimpleMatrix.checksum: for (i): serial"));
    // Verdict map agrees with the report: at least one non-serial loop.
    bool anyParallel = false;
    for (const auto& [_, lp] : res.loopParallel) {
        anyParallel |= lp.verdict != analysis::ParVerdict::Serial;
    }
    EXPECT_TRUE(anyParallel);
}

TEST(ParallelProver, VirtualAccessorLoopsStaySerial) {
    // The double-buffered CPU runner reads grids through virtual get/set —
    // outside the prover's effect allowance, so everything stays serial.
    Program p = stencil::buildProgram();
    Interp in(p);
    Value r = stencil::makeCpuRunner(in, 8, 8, 8,
                                     stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f), 1);
    auto res = analysis::analyzeEntry(p, r, "run", {Value::ofI32(1)});
    for (const auto& [_, lp] : res.loopParallel) {
        EXPECT_EQ(analysis::ParVerdict::Serial, lp.verdict);
    }
    EXPECT_TRUE(reportHas(res, "StencilCPU3DDblB.step: for (z): serial"));
}

TEST(ParallelProver, LintModeDegradesToSerialWithoutEntryContext) {
    // Without a concrete receiver the interval/alias facts are weaker; the
    // prover must degrade to serial verdicts, never to unsound parallel.
    Program p = matmul::buildProgram();
    auto res = analysis::lintProgram(p);
    for (const auto& [_, lp] : res.loopParallel) {
        EXPECT_EQ(analysis::ParVerdict::Serial, lp.verdict);
    }
    EXPECT_TRUE(reportHas(res, "OptimizedCalculator.multiplyAcc: for (i): serial"));
}

// ------------------------------------------------------- codegen outlining

TEST(ParallelCodegen, OutlinesOnlyUnderWjParallel) {
    Program p = stencil::buildProgram();
    Interp in(p);
    Value r = stencil::makeMpiRunner(in, 18, 18, 8,
                                     stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f), 42);
    {
        ScopedEnv off("WJ_PARALLEL", "0");
        Translation t = translate(p, r, "run", {Value::ofI32(2)});
        EXPECT_EQ(0, t.parallelLoops);
        EXPECT_EQ(std::string::npos, t.cSource.find("wjrt_parallel_for"));
    }
    {
        ScopedEnv on("WJ_PARALLEL", "1");
        Translation t = translate(p, r, "run", {Value::ofI32(2)});
        EXPECT_GT(t.parallelLoops, 0);
        EXPECT_NE(std::string::npos, t.cSource.find("wjrt_parallel_for"));
        // The guarded loop keeps a serial fallback branch on the guard.
        EXPECT_NE(std::string::npos, t.cSource.find("wj_pfb"));
    }
}

// --------------------------------------- end-to-end bitwise reproducibility

namespace {

double runStencilMpi(int threads, const char* par, int ranks) {
    ScopedEnv p1("WJ_PARALLEL", par);
    ScopedEnv p2("WJ_THREADS", std::to_string(threads).c_str());
    Program p = stencil::buildProgram();
    Interp in(p);
    Value r = stencil::makeMpiRunner(in, 34, 34, 16,
                                     stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f), 42);
    JitCode code = WootinJ::jit4mpi(p, r, "run", {Value::ofI32(4)});
    code.set4MPI(ranks);
    return code.invoke().asF64();
}

double runFox(int threads, const char* par, int ranks) {
    ScopedEnv p1("WJ_PARALLEL", par);
    ScopedEnv p2("WJ_THREADS", std::to_string(threads).c_str());
    Program p = matmul::buildProgram();
    Interp in(p);
    Value app = matmul::makeMpiFoxApp(in, matmul::Calc::Optimized, 2);
    JitCode code = WootinJ::jit4mpi(p, app, "run", {Value::ofI32(64), Value::ofI32(7)});
    code.set4MPI(ranks);
    return code.invoke().asF64();
}

} // namespace

TEST(ParallelEndToEnd, DiffusionBitwiseEqualAcrossThreadCounts) {
    const double serial = runStencilMpi(1, "0", 2);
    for (int t : {1, 2, 8}) {
        const double par = runStencilMpi(t, "1", 2);
        EXPECT_TRUE(bitEq(serial, par))
            << "WJ_THREADS=" << t << ": serial=" << serial << " parallel=" << par;
    }
}

TEST(ParallelEndToEnd, FoxBitwiseEqualAcrossThreadCounts) {
    const double serial = runFox(1, "0", 4);
    for (int t : {1, 2, 8}) {
        const double par = runFox(t, "1", 4);
        EXPECT_TRUE(bitEq(serial, par))
            << "WJ_THREADS=" << t << ": serial=" << serial << " parallel=" << par;
    }
}

TEST(ParallelEndToEnd, PoolReusedAcrossJitInvocations) {
    (void)runStencilMpi(8, "1", 2);  // warm: spawns up to 7 workers
    const int64_t spawned = ThreadPool::instance().workersSpawned();
    (void)runStencilMpi(8, "1", 2);
    (void)runFox(8, "1", 4);
    EXPECT_EQ(spawned, ThreadPool::instance().workersSpawned())
        << "JIT invocations must share the persistent pool";
}

TEST(ParallelEndToEnd, CommStatsReportPooledTraffic) {
    ScopedEnv p1("WJ_PARALLEL", "1");
    ScopedEnv p2("WJ_THREADS", "2");
    Program p = stencil::buildProgram();
    Interp in(p);
    Value r = stencil::makeMpiRunner(in, 34, 34, 16,
                                     stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f), 42);
    JitCode code = WootinJ::jit4mpi(p, r, "run", {Value::ofI32(4)});
    code.set4MPI(2);
    (void)code.invoke();
    const minimpi::CommStats s = code.commStats();
    EXPECT_GT(s.messages, 0);
    EXPECT_GT(s.bytes, 0);
    // Halo planes (34*34 floats) are far above the pooling threshold, so
    // the large-message fast path must have engaged.
    EXPECT_GT(s.pooledBytes + s.zeroCopyBytes, 0);
    EXPECT_LE(s.copiedBytes(), s.bytes);
}

// -------------------------------------------------- GpuSim block fan-out

namespace {

struct ScaleArgs {
    const float* in;
    float* out;
    int n;
};

void scaleKernel(gpusim::ThreadCtx* t, void* argsv) {
    auto* a = static_cast<ScaleArgs*>(argsv);
    const int i = t->blockIdx.x * t->blockDim.x + t->threadIdx.x;
    if (i < a->n) a->out[i] = a->in[i] * 1.5f + static_cast<float>(t->blockIdx.x);
}

std::vector<float> runScale(int threads, int n) {
    ScopedEnv env("WJ_THREADS", std::to_string(threads).c_str());
    gpusim::Device d;
    std::vector<float> in(static_cast<size_t>(n)), out(static_cast<size_t>(n), -1.0f);
    for (int i = 0; i < n; ++i) in[static_cast<size_t>(i)] = 0.37f * static_cast<float>(i);
    ScaleArgs args{in.data(), out.data(), n};
    d.launch(&scaleKernel, &args, {(n + 63) / 64, 1, 1}, {64, 1, 1}, 0, /*needsSync=*/false);
    return out;
}

} // namespace

TEST(GpuSimParallel, BlockFanOutBitwiseEqualsSerial) {
    const auto serial = runScale(1, 1000);
    for (int t : {2, 8}) {
        const auto par = runScale(t, 1000);
        ASSERT_EQ(serial.size(), par.size());
        EXPECT_EQ(0, std::memcmp(serial.data(), par.data(), serial.size() * sizeof(float)))
            << "WJ_THREADS=" << t;
    }
}
