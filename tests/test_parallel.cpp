// The intra-rank multithreaded execution backend, end to end: the static
// chunker and thread pool (runtime/threadpool.h), the dependence prover's
// per-loop verdicts (analysis/analysis.cpp), the parallel-for outliner in
// the translator (WJ_PARALLEL), and the determinism contract — threaded
// runs must be bitwise-identical to serial for every WJ_THREADS value.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analysis.h"
#include "cg/cg_lib.h"
#include "gpusim/gpusim.h"
#include "interp/interp.h"
#include "ir/builder.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "runtime/threadpool.h"
#include "runtime/wjrt.h"
#include "stencil/stencil_lib.h"
#include "support/diagnostics.h"

using namespace wj;
using namespace wj::dsl;
using runtime::ThreadPool;
using runtime::staticChunk;

namespace {

/// Scoped setenv that restores the previous value on destruction.
class ScopedEnv {
public:
    ScopedEnv(const char* name, const char* value) : name_(name) {
        if (const char* old = std::getenv(name)) {
            had_ = true;
            old_ = old;
        }
        setenv(name, value, 1);
    }
    ~ScopedEnv() {
        if (had_) setenv(name_, old_.c_str(), 1);
        else unsetenv(name_);
    }

private:
    const char* name_;
    bool had_ = false;
    std::string old_;
};

bool bitEq(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

bool reportHas(const analysis::Result& r, const std::string& needle) {
    for (const auto& line : r.parallelReport) {
        if (line.find(needle) != std::string::npos) return true;
    }
    return false;
}

} // namespace

// ------------------------------------------------------------ staticChunk

TEST(StaticChunk, PartitionIsExactAndContiguous) {
    for (int chunks : {1, 2, 3, 7, 8}) {
        for (int64_t lo : {0, 5, -3}) {
            const int64_t hi = lo + 29;
            int64_t prev = lo;
            for (int i = 0; i < chunks; ++i) {
                int64_t clo, chi;
                staticChunk(lo, hi, chunks, i, &clo, &chi);
                EXPECT_EQ(prev, clo) << "gap before chunk " << i;
                EXPECT_LE(clo, chi);
                prev = chi;
            }
            EXPECT_EQ(hi, prev) << chunks << " chunks over [" << lo << "," << hi << ")";
        }
    }
}

TEST(StaticChunk, BoundariesDependOnlyOnRangeAndCount) {
    int64_t a0, a1, b0, b1;
    staticChunk(0, 100, 4, 2, &a0, &a1);
    staticChunk(0, 100, 4, 2, &b0, &b1);
    EXPECT_EQ(a0, b0);
    EXPECT_EQ(a1, b1);
}

// -------------------------------------------------------------- ThreadPool

namespace {

struct FillCtx {
    int64_t* out;
};

void fillBody(int64_t lo, int64_t hi, void* ctx) {
    auto* c = static_cast<FillCtx*>(ctx);
    for (int64_t i = lo; i < hi; ++i) c->out[i] = i * i;
}

std::vector<int64_t> runFill(int threads, int64_t n) {
    ScopedEnv env("WJ_THREADS", std::to_string(threads).c_str());
    std::vector<int64_t> out(static_cast<size_t>(n), -1);
    FillCtx ctx{out.data()};
    ThreadPool::instance().parallelFor(0, n, fillBody, &ctx);
    return out;
}

} // namespace

TEST(ThreadPoolTest, DisjointWritesIdenticalAcrossThreadCounts) {
    const auto serial = runFill(1, 1000);
    for (int t : {2, 3, 8}) {
        EXPECT_EQ(serial, runFill(t, 1000)) << "WJ_THREADS=" << t;
    }
}

TEST(ThreadPoolTest, EmptyAndSingleIterationRanges) {
    ScopedEnv env("WJ_THREADS", "8");
    std::vector<int64_t> out(4, -1);
    FillCtx ctx{out.data()};
    ThreadPool::instance().parallelFor(3, 3, fillBody, &ctx);  // empty: no-op
    EXPECT_EQ(-1, out[0]);
    ThreadPool::instance().parallelFor(2, 3, fillBody, &ctx);  // one iteration
    EXPECT_EQ(4, out[2]);
}

TEST(ThreadPoolTest, PoolPersistsAcrossDispatches) {
    ScopedEnv env("WJ_THREADS", "4");
    std::vector<int64_t> out(64);
    FillCtx ctx{out.data()};
    ThreadPool::instance().parallelFor(0, 64, fillBody, &ctx);
    const int64_t spawned = ThreadPool::instance().workersSpawned();
    EXPECT_GE(spawned, 3);  // 4 chunks = caller + at least 3 workers
    for (int i = 0; i < 5; ++i) ThreadPool::instance().parallelFor(0, 64, fillBody, &ctx);
    EXPECT_EQ(spawned, ThreadPool::instance().workersSpawned())
        << "dispatches at a fixed WJ_THREADS must reuse workers, not respawn";
}

namespace {

void throwBody(int64_t lo, int64_t, void*) {
    if (lo >= 8) throw ExecError("chunk failed");
}

void nestedBody(int64_t lo, int64_t hi, void* ctx) {
    // A nested dispatch from a worker must run inline and serial rather
    // than deadlock on the pool it is already occupying.
    ThreadPool::instance().parallelFor(lo, hi, fillBody, ctx);
}

void mpiFromWorkerBody(int64_t, int64_t, void*) {
    // Comm intrinsics are only legal on the rank's main thread; the guard
    // must trip on a pool worker (the prover keeps them out of parallel
    // loops, so reaching this is a translator bug in real runs).
    if (ThreadPool::onWorkerThread()) (void)wjrt_mpi_rank();
}

} // namespace

TEST(ThreadPoolTest, WorkerExceptionRethrownAtDispatch) {
    ScopedEnv env("WJ_THREADS", "4");
    EXPECT_THROW(ThreadPool::instance().parallelFor(0, 16, throwBody, nullptr), ExecError);
    // The pool stays usable after a failed job.
    std::vector<int64_t> out(16);
    FillCtx ctx{out.data()};
    ThreadPool::instance().parallelFor(0, 16, fillBody, &ctx);
    EXPECT_EQ(225, out[15]);
}

TEST(ThreadPoolTest, NestedDispatchRunsInline) {
    ScopedEnv env("WJ_THREADS", "4");
    std::vector<int64_t> out(100, -1);
    FillCtx ctx{out.data()};
    ThreadPool::instance().parallelFor(0, 100, nestedBody, &ctx);
    for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(i * i, out[static_cast<size_t>(i)]);
}

TEST(ThreadPoolTest, CommIntrinsicOnWorkerThreadTrips) {
    ScopedEnv env("WJ_THREADS", "4");
    try {
        ThreadPool::instance().parallelFor(0, 4, mpiFromWorkerBody, nullptr);
        FAIL() << "expected the main-thread guard to throw";
    } catch (const ExecError& e) {
        EXPECT_NE(nullptr, std::strstr(e.what(), "main thread"));
    }
}

TEST(ThreadPoolTest, ConcurrentDispatchersStayCorrect) {
    // Two MiniMPI ranks racing for the pool: the loser runs inline and
    // serial (busy flag), so both results must still be exact.
    ScopedEnv env("WJ_THREADS", "4");
    constexpr int64_t kN = 4096;
    std::vector<int64_t> outA(kN), outB(kN);
    std::atomic<int> ready{0};
    auto race = [&ready](std::vector<int64_t>* out) {
        FillCtx ctx{out->data()};
        ready.fetch_add(1);
        while (ready.load() < 2) {}
        for (int rep = 0; rep < 50; ++rep) {
            ThreadPool::instance().parallelFor(0, kN, fillBody, &ctx);
        }
    };
    std::thread ta(race, &outA), tb(race, &outB);
    ta.join();
    tb.join();
    for (int64_t i = 0; i < kN; i += 97) {
        ASSERT_EQ(i * i, outA[static_cast<size_t>(i)]);
        ASSERT_EQ(i * i, outB[static_cast<size_t>(i)]);
    }
}

// -------------------------------------------------- prover verdicts (lint)

TEST(ParallelProver, StencilInteriorLoopProvenWithAliasGuard) {
    Program p = stencil::buildProgram();
    Interp in(p);
    Value r = stencil::makeMpiRunner(in, 18, 18, 8,
                                     stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f), 42);
    auto res = analysis::analyzeEntry(p, r, "run", {Value::ofI32(2)});
    // The interior triple loop: outermost z proven independent up to
    // cur/nxt aliasing, which the translator guards at runtime.
    EXPECT_TRUE(reportHas(res, "StencilCPU3D_MPI.step: for (z): parallel (guarded)"));
    EXPECT_TRUE(reportHas(res, "'cur' != 'nxt'"));
    // The halo-exchange step loop must stay on the rank's main thread.
    EXPECT_TRUE(reportHas(res, "StencilCPU3D_MPI.run: for (s): serial"));
    EXPECT_TRUE(reportHas(res, "must stay on the rank's main thread"));
    // The checksum loop is a recognized sum reduction over 'local'.
    EXPECT_TRUE(reportHas(res, "StencilCPU3D_MPI.run: for (i): parallel (reduction)"));
    EXPECT_TRUE(reportHas(res, "reduction over 'local' (+, double)"));
}

TEST(ParallelProver, FoxBlockMultiplyProvenChecksumRefused) {
    Program p = matmul::buildProgram();
    Interp in(p);
    Value app = matmul::makeMpiFoxApp(in, matmul::Calc::Optimized, 2);
    auto res = analysis::analyzeEntry(p, app, "run", {Value::ofI32(32), Value::ofI32(7)});
    EXPECT_TRUE(
        reportHas(res, "OptimizedCalculator.multiplyAcc: for (i): parallel (guarded)"));
    EXPECT_TRUE(reportHas(res, "'br' != 'cr'"));
    EXPECT_TRUE(reportHas(res, "SimpleMatrix.checksum: for (i): serial"));
    // Verdict map agrees with the report: at least one non-serial loop.
    bool anyParallel = false;
    for (const auto& [_, lp] : res.loopParallel) {
        anyParallel |= lp.verdict != analysis::ParVerdict::Serial;
    }
    EXPECT_TRUE(anyParallel);
}

TEST(ParallelProver, VirtualAccessorLoopsStaySerial) {
    // The double-buffered CPU runner reads grids through virtual get/set —
    // outside the prover's effect allowance, so everything stays serial.
    Program p = stencil::buildProgram();
    Interp in(p);
    Value r = stencil::makeCpuRunner(in, 8, 8, 8,
                                     stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f), 1);
    auto res = analysis::analyzeEntry(p, r, "run", {Value::ofI32(1)});
    for (const auto& [_, lp] : res.loopParallel) {
        EXPECT_EQ(analysis::ParVerdict::Serial, lp.verdict);
    }
    EXPECT_TRUE(reportHas(res, "StencilCPU3DDblB.step: for (z): serial"));
}

TEST(ParallelProver, LintModeDegradesToSerialWithoutEntryContext) {
    // Without a concrete receiver the interval/alias facts are weaker; the
    // prover must degrade to serial verdicts, never to unsound parallel.
    Program p = matmul::buildProgram();
    auto res = analysis::lintProgram(p);
    for (const auto& [_, lp] : res.loopParallel) {
        EXPECT_EQ(analysis::ParVerdict::Serial, lp.verdict);
    }
    EXPECT_TRUE(reportHas(res, "OptimizedCalculator.multiplyAcc: for (i): serial"));
}

// ---------------------------------------------- reduction prover (oracle)

namespace {

/// `double run(int n)` around the given body statements; the analysis and
/// translation entry context is T.run(kProbeN).
Program oneMethodProgram(Block body) {
    ProgramBuilder pb;
    pb.cls("T").method("run", Type::f64()).param("n", Type::i32()).body(std::move(body));
    return pb.build();
}

constexpr int kProbeN = 100;

analysis::Result analyzeRun(const Program& p) {
    Interp in(p);
    Value obj = in.instantiate("T", {});
    return analysis::analyzeEntry(p, obj, "run", {Value::ofI32(kProbeN)});
}

} // namespace

TEST(ReductionProver, RecognizesSumInBothOperandOrders) {
    Program p = oneMethodProgram(blk(
        decl("s", Type::f64(), cd(0.0)),
        decl("s2", Type::f64(), cd(0.0)),
        forRange("i", ci(0), lv("n"),
                 blk(assign("s", add(lv("s"), cast(Type::f64(), lv("i")))))),
        forRange("j", ci(0), lv("n"),
                 blk(assign("s2", add(cast(Type::f64(), lv("j")), lv("s2"))))),
        ret(add(lv("s"), lv("s2")))));
    auto res = analyzeRun(p);
    EXPECT_TRUE(reportHas(res, "T.run: for (i): parallel (reduction)"));
    EXPECT_TRUE(reportHas(res, "reduction over 's' (+, double)"));
    EXPECT_TRUE(reportHas(res, "T.run: for (j): parallel (reduction)"));
    EXPECT_TRUE(reportHas(res, "reduction over 's2' (+, double)"));
}

TEST(ReductionProver, RecognizesMulMinMax) {
    // min/max are the guarded-update form `if (e cmp acc) acc = e;` — the
    // language has no min/max operator and rule 7 forbids the ternary.
    auto minExpr = [] { return cast(Type::f32(), lv("i")); };
    auto maxExpr = [] { return cast(Type::i64(), lv("i")); };
    Program p = oneMethodProgram(blk(
        decl("prod", Type::f64(), cd(1.0)),
        decl("m", Type::f32(), cf(1e30f)),
        decl("mx", Type::i64(), cl(0)),
        forRange("i", ci(0), lv("n"),
                 blk(assign("prod", mul(lv("prod"), cd(1.0009765625))))),
        forRange("i", ci(0), lv("n"),
                 blk(ifs(lt(minExpr(), lv("m")), blk(assign("m", minExpr()))))),
        forRange("i", ci(0), lv("n"),
                 blk(ifs(lt(lv("mx"), maxExpr()), blk(assign("mx", maxExpr()))))),
        ret(add(lv("prod"), add(cast(Type::f64(), lv("m")), cast(Type::f64(), lv("mx")))))));
    auto res = analyzeRun(p);
    EXPECT_TRUE(reportHas(res, "reduction over 'prod' (*, double)"));
    EXPECT_TRUE(reportHas(res, "reduction over 'm' (min, float)"));
    EXPECT_TRUE(reportHas(res, "reduction over 'mx' (max, long)"));
}

TEST(ReductionProver, RejectsNonReductionChains) {
    // i32 accumulator: wraparound under reassociation is observable.
    auto res = analyzeRun(oneMethodProgram(blk(
        decl("c", Type::i32(), ci(0)),
        forRange("i", ci(0), lv("n"), blk(assign("c", add(lv("c"), ci(1))))),
        ret(cast(Type::f64(), lv("c"))))));
    EXPECT_TRUE(reportHas(res, "T.run: for (i): serial"));
    EXPECT_TRUE(reportHas(res, "unsupported type"));

    // The accumulator is read outside its own update statement (here into
    // a loop-local temp), so per-chunk partials would observe stale sums.
    res = analyzeRun(oneMethodProgram(blk(
        decl("s", Type::f64(), cd(0.0)),
        decl("a", Type::array(Type::f32()), newArr(Type::f32(), lv("n"))),
        forRange("i", ci(0), lv("n"),
                 blk(decl("t", Type::f64(), lv("s")),
                     aset(lv("a"), lv("i"), cast(Type::f32(), lv("t"))),
                     assign("s", add(lv("s"), cast(Type::f64(), lv("i")))))),
        ret(lv("s")))));
    EXPECT_TRUE(reportHas(res, "read outside its reduction update"));

    // Mixed operators over one accumulator: an affine recurrence, not a
    // reduction — neither grouping is safe.
    res = analyzeRun(oneMethodProgram(blk(
        decl("s", Type::f64(), cd(0.0)),
        forRange("i", ci(0), lv("n"),
                 blk(assign("s", add(lv("s"), cd(2.0))),
                     assign("s", mul(lv("s"), cd(0.5))))),
        ret(lv("s")))));
    EXPECT_TRUE(reportHas(res, "T.run: for (i): serial"));
    EXPECT_TRUE(reportHas(res, "loop-carried scalar dependence"));

    // Plain overwrite: the diagnostic names the variable AND the statement.
    res = analyzeRun(oneMethodProgram(blk(
        decl("s", Type::f64(), cd(0.0)),
        forRange("i", ci(0), lv("n"), blk(assign("s", cast(Type::f64(), lv("i"))))),
        ret(lv("s")))));
    EXPECT_TRUE(reportHas(res, "updates 's'"));
    EXPECT_TRUE(reportHas(res, "is not a recognized reduction"));

    // The update's f(i) side reads the accumulator: not acc = acc op f(i).
    res = analyzeRun(oneMethodProgram(blk(
        decl("s", Type::f64(), cd(1.0)),
        forRange("i", ci(0), lv("n"),
                 blk(assign("s", add(lv("s"), mul(lv("s"), cd(0.5)))))),
        ret(lv("s")))));
    EXPECT_TRUE(reportHas(res, "T.run: for (i): serial"));
    EXPECT_TRUE(reportHas(res, "is not a recognized reduction"));
}

TEST(ReductionProver, SmallOuterLoopCollapsesInFavorOfInner) {
    Program p = oneMethodProgram(blk(
        decl("a", Type::array(Type::f32()), newArr(Type::f32(), lv("n"))),
        forRange("k", ci(0), ci(2),
                 blk(forRange("i", ci(0), lv("n"),
                              blk(aset(lv("a"), lv("i"), cast(Type::f32(), lv("i"))))))),
        ret(cast(Type::f64(), aget(lv("a"), ci(0))))));
    auto res = analyzeRun(p);
    EXPECT_TRUE(reportHas(res, "T.run: for (k): serial"));
    EXPECT_TRUE(reportHas(res, "collapsed in favor of its inner loops"));
    EXPECT_TRUE(reportHas(res, "T.run: for (i): parallel"));
}

// --------------------------------------------- reduction codegen + runtime

namespace {

/// arr fill + dot-product: the CG kernel shape in miniature.
Program dotProgram() {
    return oneMethodProgram(blk(
        decl("a", Type::array(Type::f32()), newArr(Type::f32(), lv("n"))),
        forRange("i", ci(0), lv("n"),
                 blk(aset(lv("a"), lv("i"),
                          cast(Type::f32(), mul(cast(Type::f64(), lv("i")), cd(0.125)))))),
        decl("s", Type::f64(), cd(0.0)),
        forRange("i", ci(0), lv("n"),
                 blk(assign("s", add(lv("s"),
                                     mul(cast(Type::f64(), aget(lv("a"), lv("i"))),
                                         cast(Type::f64(), aget(lv("a"), lv("i")))))))),
        ret(lv("s"))));
}

} // namespace

TEST(ReductionCodegen, OutlinesThroughWjrtParallelReduce) {
    Program p = dotProgram();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    {
        ScopedEnv off("WJ_PARALLEL", "0");
        Translation t = translate(p, obj, "run", {Value::ofI32(kProbeN)});
        EXPECT_EQ(0, t.reduceLoops);
        EXPECT_EQ(std::string::npos, t.cSource.find("wjrt_parallel_reduce"));
    }
    {
        ScopedEnv on("WJ_PARALLEL", "1");
        Translation t = translate(p, obj, "run", {Value::ofI32(kProbeN)});
        EXPECT_EQ(1, t.reduceLoops);
        EXPECT_GE(t.parallelLoops, 1);  // the fill loop
        EXPECT_NE(std::string::npos, t.cSource.find("wjrt_parallel_reduce"));
        EXPECT_NE(std::string::npos, t.cSource.find("wj_rb"));  // outlined chunk fn
    }
}

TEST(ReductionEndToEnd, ShortTripBitwiseEqualsSerialAndInterp) {
    // Up to WJRT_REDUCE_MAX_CHUNKS iterations every chunk holds a single
    // iteration, so the ordered combine IS the serial fold: parallel,
    // serial jit, and the interpreter must agree bitwise.
    Program p = dotProgram();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    const std::vector<Value> args{Value::ofI32(48)};
    const double ref = in.call(obj, "run", args).asF64();
    JitCode serial = [&] {
        ScopedEnv e("WJ_PARALLEL", "0");
        return WootinJ::jit(p, obj, "run", args);
    }();
    JitCode par = [&] {
        ScopedEnv e("WJ_PARALLEL", "1");
        return WootinJ::jit(p, obj, "run", args);
    }();
    EXPECT_TRUE(bitEq(ref, serial.invokeWith(args).asF64()));
    for (int t : {1, 2, 8}) {
        ScopedEnv e("WJ_THREADS", std::to_string(t).c_str());
        EXPECT_TRUE(bitEq(ref, par.invokeWith(args).asF64())) << "WJ_THREADS=" << t;
    }
}

TEST(ReductionEndToEnd, LongTripBitwiseIdenticalAcrossThreadCounts) {
    // Beyond the chunk grid the f64 sum is regrouped (not bitwise vs the
    // serial fold), but the fixed grid + ordered combine make the result
    // invariant in WJ_THREADS.
    Program p = dotProgram();
    Interp in(p);
    Value obj = in.instantiate("T", {});
    const std::vector<Value> args{Value::ofI32(10000)};
    ScopedEnv on("WJ_PARALLEL", "1");
    JitCode par = WootinJ::jit(p, obj, "run", args);
    double first = 0;
    bool haveFirst = false;
    for (int t : {1, 2, 3, 8}) {
        ScopedEnv e("WJ_THREADS", std::to_string(t).c_str());
        const double v = par.invokeWith(args).asF64();
        if (!haveFirst) {
            haveFirst = true;
            first = v;
        }
        EXPECT_TRUE(bitEq(first, v)) << "WJ_THREADS=" << t;
    }
    // And it stays a faithful sum: close to the interpreter's serial fold.
    const double ref = in.call(obj, "run", args).asF64();
    EXPECT_NEAR(ref, first, std::abs(ref) * 1e-12);
}

TEST(ReductionEndToEnd, CgDotProvesAndRunsBitwiseUnderMiniMpi) {
    // The acceptance path: CG's dot loops auto-prove ParallelReduce with
    // no source annotations, and real multi-rank MiniMPI runs produce
    // bitwise-identical residuals at WJ_THREADS 1/2/8.
    Program p = cg::buildProgram();
    Interp in(p);
    {
        Value solver = cg::makeMpiSolver(in, 512);
        auto res = analysis::analyzeEntry(
            p, solver, "run", {Value::ofI32(512), Value::ofI32(3), Value::ofI32(8)});
        EXPECT_TRUE(reportHas(res, "MpiDot.dot: for (i): parallel (reduction)"));
        EXPECT_TRUE(reportHas(res, "reduction over 's' (+, double)"));
    }
    auto run = [&](int threads, const char* par) {
        ScopedEnv e1("WJ_PARALLEL", par);
        ScopedEnv e2("WJ_THREADS", std::to_string(threads).c_str());
        Value solver = cg::makeMpiSolver(in, 512);
        JitCode code = WootinJ::jit4mpi(
            p, solver, "run", {Value::ofI32(512), Value::ofI32(3), Value::ofI32(8)});
        code.set4MPI(2);
        return code.invoke().asF64();
    };
    const double serial = run(1, "0");
    const double t1 = run(1, "1");
    const double t2 = run(2, "1");
    const double t8 = run(8, "1");
    EXPECT_TRUE(bitEq(t1, t2));
    EXPECT_TRUE(bitEq(t1, t8));
    EXPECT_NEAR(serial, t1, std::abs(serial) * 1e-6);
}

// ------------------------------------------------------- codegen outlining

TEST(ParallelCodegen, OutlinesOnlyUnderWjParallel) {
    Program p = stencil::buildProgram();
    Interp in(p);
    Value r = stencil::makeMpiRunner(in, 18, 18, 8,
                                     stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f), 42);
    {
        ScopedEnv off("WJ_PARALLEL", "0");
        Translation t = translate(p, r, "run", {Value::ofI32(2)});
        EXPECT_EQ(0, t.parallelLoops);
        EXPECT_EQ(std::string::npos, t.cSource.find("wjrt_parallel_for"));
    }
    {
        ScopedEnv on("WJ_PARALLEL", "1");
        Translation t = translate(p, r, "run", {Value::ofI32(2)});
        EXPECT_GT(t.parallelLoops, 0);
        EXPECT_NE(std::string::npos, t.cSource.find("wjrt_parallel_for"));
        // The guarded loop keeps a serial fallback branch on the guard.
        EXPECT_NE(std::string::npos, t.cSource.find("wj_pfb"));
    }
}

// --------------------------------------- end-to-end bitwise reproducibility

namespace {

double runStencilMpi(int threads, const char* par, int ranks) {
    ScopedEnv p1("WJ_PARALLEL", par);
    ScopedEnv p2("WJ_THREADS", std::to_string(threads).c_str());
    Program p = stencil::buildProgram();
    Interp in(p);
    Value r = stencil::makeMpiRunner(in, 34, 34, 16,
                                     stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f), 42);
    JitCode code = WootinJ::jit4mpi(p, r, "run", {Value::ofI32(4)});
    code.set4MPI(ranks);
    return code.invoke().asF64();
}

double runFox(int threads, const char* par, int ranks) {
    ScopedEnv p1("WJ_PARALLEL", par);
    ScopedEnv p2("WJ_THREADS", std::to_string(threads).c_str());
    Program p = matmul::buildProgram();
    Interp in(p);
    Value app = matmul::makeMpiFoxApp(in, matmul::Calc::Optimized, 2);
    JitCode code = WootinJ::jit4mpi(p, app, "run", {Value::ofI32(64), Value::ofI32(7)});
    code.set4MPI(ranks);
    return code.invoke().asF64();
}

} // namespace

TEST(ParallelEndToEnd, DiffusionBitwiseEqualAcrossThreadCounts) {
    const double serial = runStencilMpi(1, "0", 2);
    for (int t : {1, 2, 8}) {
        const double par = runStencilMpi(t, "1", 2);
        EXPECT_TRUE(bitEq(serial, par))
            << "WJ_THREADS=" << t << ": serial=" << serial << " parallel=" << par;
    }
}

TEST(ParallelEndToEnd, FoxBitwiseEqualAcrossThreadCounts) {
    const double serial = runFox(1, "0", 4);
    for (int t : {1, 2, 8}) {
        const double par = runFox(t, "1", 4);
        EXPECT_TRUE(bitEq(serial, par))
            << "WJ_THREADS=" << t << ": serial=" << serial << " parallel=" << par;
    }
}

TEST(ParallelEndToEnd, PoolReusedAcrossJitInvocations) {
    (void)runStencilMpi(8, "1", 2);  // warm: spawns up to 7 workers
    const int64_t spawned = ThreadPool::instance().workersSpawned();
    (void)runStencilMpi(8, "1", 2);
    (void)runFox(8, "1", 4);
    EXPECT_EQ(spawned, ThreadPool::instance().workersSpawned())
        << "JIT invocations must share the persistent pool";
}

TEST(ParallelEndToEnd, CommStatsReportPooledTraffic) {
    ScopedEnv p1("WJ_PARALLEL", "1");
    ScopedEnv p2("WJ_THREADS", "2");
    Program p = stencil::buildProgram();
    Interp in(p);
    Value r = stencil::makeMpiRunner(in, 34, 34, 16,
                                     stencil::DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f), 42);
    JitCode code = WootinJ::jit4mpi(p, r, "run", {Value::ofI32(4)});
    code.set4MPI(2);
    (void)code.invoke();
    const minimpi::CommStats s = code.commStats();
    EXPECT_GT(s.messages, 0);
    EXPECT_GT(s.bytes, 0);
    // Halo planes (34*34 floats) are far above the pooling threshold, so
    // the large-message fast path must have engaged.
    EXPECT_GT(s.pooledBytes + s.zeroCopyBytes, 0);
    EXPECT_LE(s.copiedBytes(), s.bytes);
}

// -------------------------------------------------- GpuSim block fan-out

namespace {

struct ScaleArgs {
    const float* in;
    float* out;
    int n;
};

void scaleKernel(gpusim::ThreadCtx* t, void* argsv) {
    auto* a = static_cast<ScaleArgs*>(argsv);
    const int i = t->blockIdx.x * t->blockDim.x + t->threadIdx.x;
    if (i < a->n) a->out[i] = a->in[i] * 1.5f + static_cast<float>(t->blockIdx.x);
}

std::vector<float> runScale(int threads, int n) {
    ScopedEnv env("WJ_THREADS", std::to_string(threads).c_str());
    gpusim::Device d;
    std::vector<float> in(static_cast<size_t>(n)), out(static_cast<size_t>(n), -1.0f);
    for (int i = 0; i < n; ++i) in[static_cast<size_t>(i)] = 0.37f * static_cast<float>(i);
    ScaleArgs args{in.data(), out.data(), n};
    d.launch(&scaleKernel, &args, {(n + 63) / 64, 1, 1}, {64, 1, 1}, 0, /*needsSync=*/false);
    return out;
}

} // namespace

TEST(GpuSimParallel, BlockFanOutBitwiseEqualsSerial) {
    const auto serial = runScale(1, 1000);
    for (int t : {2, 8}) {
        const auto par = runScale(t, 1000);
        ASSERT_EQ(serial.size(), par.size());
        EXPECT_EQ(0, std::memcmp(serial.data(), par.data(), serial.size() * sizeof(float)))
            << "WJ_THREADS=" << t;
    }
}
