// Property-based differential testing: generate random rule-compliant WJ
// programs and check that every execution config computes bit-identical
// results. This is the strongest evidence that the translation preserves
// semantics: any divergence in arithmetic, control flow, dispatch,
// inlining, marshalling, bounds-guard insertion, or parallel-for outlining
// shows up as a mismatch.
//
// The config matrix, per generated program:
//   interp            the tree-walking interpreter (the reference)
//   jit               plain translation (no guards, serial)
//   jit+bounds        WJ_BOUNDS=all — every array access guarded
//   jit+par@1         WJ_PARALLEL=1 codegen, WJ_THREADS=1 (inline dispatch)
//   jit+par@4         the same translation fanned out over 4 pool threads
//   jit+simd          WJ_SIMD=1 — `#pragma omp simd` on proven loops
//   jit+par+simd@4    both codegens composed, 4 pool threads
//   jit+soa           WJ_SOA=1 — the AoS→SoA layout split (a no-op here:
//                     random programs carry no class-element arrays, so
//                     this pins the restructured element-access codegen)
//   jit+par+simd+soa@4  all three codegens composed, 4 pool threads
// The non-simd rows must agree BITWISE (uint64 payload of the f64 result) on
// every argument. The simd configs are also expected bitwise (the emitter
// never reassociates floats: reduction clauses are limited to exact
// operators), but are checked to a 1-ulp ceiling so a compiler that
// contracts differently under -fopenmp-simd reads as a tolerance, not a
// failure; the failing seed is printed so a divergence replays exactly.
//
// The generator is deliberately conservative about C undefined behaviour:
// integer expressions stay in a small range (constants, bounded add/sub,
// remainder by non-zero constants), divisions use non-zero constant
// denominators, and unbounded growth only happens in doubles.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>

#include <string>
#include <vector>

#include "interp/interp.h"
#include "ir/builder.h"
#include "jit/jit.h"
#include "support/prng.h"

using namespace wj;
using namespace wj::dsl;

namespace {

class Gen {
public:
    explicit Gen(uint64_t seed) : rng_(seed) {}

    /// A random f64 expression of bounded depth over the declared locals.
    ExprPtr f64Expr(int depth) {
        if (depth <= 0 || rng_.nextBelow(4) == 0) {
            return f64Leaf();
        }
        switch (rng_.nextBelow(6)) {
        case 0: return add(f64Expr(depth - 1), f64Expr(depth - 1));
        case 1: return sub(f64Expr(depth - 1), f64Expr(depth - 1));
        case 2: return mul(f64Expr(depth - 1), f64Expr(depth - 1));
        case 3: // division by a constant bounded away from zero
            return divE(f64Expr(depth - 1), cd(1.0 + rng_.nextDouble() * 3.0));
        case 4: return neg(f64Expr(depth - 1));
        default: return cast(Type::f64(), i32Expr(depth - 1));
        }
    }

    /// A random *small* i32 expression (no overflow potential).
    ExprPtr i32Expr(int depth) {
        if (depth <= 0 || rng_.nextBelow(3) == 0) {
            return i32Leaf();
        }
        switch (rng_.nextBelow(3)) {
        case 0: return rem(add(i32Expr(depth - 1), i32Expr(depth - 1)),
                           ci(7 + static_cast<int32_t>(rng_.nextBelow(90))));
        case 1: return sub(i32Leaf(), i32Leaf());
        default: return rem(mul(i32Leaf(), i32Leaf()),
                            ci(11 + static_cast<int32_t>(rng_.nextBelow(80))));
        }
    }

    ExprPtr boolExpr(int depth) {
        switch (rng_.nextBelow(4)) {
        case 0: return lt(f64Expr(depth), f64Expr(depth));
        case 1: return ge(i32Expr(depth), i32Expr(depth));
        case 2: return land(boolShallow(), boolShallow());
        default: return lor(boolShallow(), boolShallow());
        }
    }

    /// A random statement block mutating the accumulator locals.
    Block stmts(int count, int depth) {
        Block b;
        for (int i = 0; i < count; ++i) {
            switch (rng_.nextBelow(5)) {
            case 0:
                b.push_back(assign("acc", f64Expr(depth)));
                break;
            case 1:
                b.push_back(assign("k", i32Expr(depth)));
                break;
            case 2: {
                Block thenB = stmts(1, depth - 1);
                Block elseB = stmts(1, depth - 1);
                b.push_back(ifs(boolExpr(depth - 1), std::move(thenB), std::move(elseB)));
                break;
            }
            case 3: {
                const std::string var = "L" + std::to_string(loopCount_++);
                Block body;
                body.push_back(assign("acc", add(lv("acc"), f64Expr(depth - 1))));
                b.push_back(forRange(var, ci(0),
                                     ci(1 + static_cast<int32_t>(rng_.nextBelow(6))),
                                     std::move(body)));
                break;
            }
            default:
                // Indices wrapped non-negatively: Java's % keeps the sign of
                // the dividend, and translated code has NO bounds checks.
                b.push_back(aset(lv("arr"),
                                 rem(add(rem(i32Expr(depth), ci(16)), ci(16)), ci(16)),
                                 cast(Type::f32(), f64Expr(depth - 1))));
                b.push_back(assign(
                    "acc", add(lv("acc"),
                               cast(Type::f64(),
                                    aget(lv("arr"),
                                         rem(add(rem(lv("k"), ci(16)), ci(16)), ci(16)))))));
                break;
            }
        }
        return b;
    }

private:
    ExprPtr f64Leaf() {
        switch (rng_.nextBelow(3)) {
        case 0: return cd(rng_.nextDouble() * 8.0 - 4.0);
        case 1: return lv("acc");
        default: return lv("x");
        }
    }

    ExprPtr i32Leaf() {
        switch (rng_.nextBelow(3)) {
        case 0: return ci(static_cast<int32_t>(rng_.nextBelow(19)) - 9);
        case 1: return lv("k");
        default: return lv("p");
        }
    }

    ExprPtr boolShallow() {
        return lt(i32Leaf(), i32Leaf());
    }

    SplitMix64 rng_;
    int loopCount_ = 0;
};

/// Builds one random program: double run(int p) with locals acc/x/k and a
/// 16-element float scratch array.
Program randomProgram(uint64_t seed) {
    Gen g(seed);
    ProgramBuilder pb;
    Block body;
    body.push_back(decl("acc", Type::f64(), cd(1.0)));
    body.push_back(decl("x", Type::f64(), cast(Type::f64(), lv("p"))));
    body.push_back(decl("k", Type::i32(), rem(lv("p"), ci(13))));
    body.push_back(decl("arr", Type::array(Type::f32()), newArr(Type::f32(), ci(16))));
    Block rest = g.stmts(8, 3);
    for (auto& s : rest) body.push_back(std::move(s));
    body.push_back(ret(lv("acc")));
    pb.cls("T").method("run", Type::f64()).param("p", Type::i32()).body(std::move(body));
    return pb.build();
}

/// Sets (or clears, for nullptr) an env var for the enclosing scope and
/// restores the previous state on exit — the translator reads WJ_BOUNDS /
/// WJ_PARALLEL at translate() time and the pool reads WJ_THREADS per
/// dispatch, so configs are just env scopes around jit()/invoke().
class ScopedEnv {
public:
    ScopedEnv(const char* name, const char* value) : name_(name) {
        if (const char* old = std::getenv(name)) {
            had_ = true;
            old_ = old;
        }
        if (value) setenv(name, value, 1);
        else unsetenv(name);
    }
    ~ScopedEnv() {
        if (had_) setenv(name_, old_.c_str(), 1);
        else unsetenv(name_);
    }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

private:
    const char* name_;
    bool had_ = false;
    std::string old_;
};

uint64_t bitsOf(double d) {
    uint64_t u;
    std::memcpy(&u, &d, sizeof u);
    return u;
}

/// ULP distance between two doubles: bit patterns mapped onto a monotone
/// integer line (sign-magnitude -> biased), so adjacent representable
/// values differ by exactly 1. NaNs are equal only bitwise.
uint64_t ulpDistance(double a, double b) {
    if (std::isnan(a) || std::isnan(b)) return bitsOf(a) == bitsOf(b) ? 0 : ~0ull;
    uint64_t ua = bitsOf(a);
    uint64_t ub = bitsOf(b);
    ua = (ua >> 63) ? ~ua : (ua | 0x8000000000000000ull);
    ub = (ub >> 63) ? ~ub : (ub | 0x8000000000000000ull);
    return ua > ub ? ua - ub : ub - ua;
}

} // namespace

class RandomDifferential : public ::testing::TestWithParam<int> {};

TEST_P(RandomDifferential, AllExecutionConfigsBitwiseAgree) {
    const uint64_t seed = static_cast<uint64_t>(GetParam()) * 0x9e3779b9u + 1;
    // Pin the knobs the matrix varies so the ambient environment cannot
    // skew a config (a stray WJ_BOUNDS=all would make "plain" = "bounds").
    ScopedEnv pinB("WJ_BOUNDS", nullptr);
    ScopedEnv pinP("WJ_PARALLEL", nullptr);
    ScopedEnv pinT("WJ_THREADS", nullptr);
    ScopedEnv pinS("WJ_SIMD", nullptr);
    ScopedEnv pinL("WJ_SOA", nullptr);

    Program p = randomProgram(seed);
    Interp in(p);
    Value obj = in.instantiate("T", {});

    JitCode plain = WootinJ::jit(p, obj, "run", {Value::ofI32(0)});
    JitCode bounds = [&] {
        ScopedEnv e("WJ_BOUNDS", "all");
        return WootinJ::jit(p, obj, "run", {Value::ofI32(0)});
    }();
    // One translation serves both thread counts: the generated C is
    // WJ_THREADS-independent (chunking happens in wjrt_parallel_for).
    JitCode par = [&] {
        ScopedEnv e("WJ_PARALLEL", "1");
        return WootinJ::jit(p, obj, "run", {Value::ofI32(0)});
    }();
    JitCode simd = [&] {
        ScopedEnv e("WJ_SIMD", "1");
        return WootinJ::jit(p, obj, "run", {Value::ofI32(0)});
    }();
    JitCode parSimd = [&] {
        ScopedEnv e1("WJ_PARALLEL", "1");
        ScopedEnv e2("WJ_SIMD", "1");
        return WootinJ::jit(p, obj, "run", {Value::ofI32(0)});
    }();
    // The WJ_SOA configs exercise the restructured FieldGet/ArraySet paths
    // in the translator; random programs have no class-element arrays, so
    // the flag must be a provable no-op on them.
    JitCode soa = [&] {
        ScopedEnv e("WJ_SOA", "1");
        return WootinJ::jit(p, obj, "run", {Value::ofI32(0)});
    }();
    JitCode parSimdSoa = [&] {
        ScopedEnv e1("WJ_PARALLEL", "1");
        ScopedEnv e2("WJ_SIMD", "1");
        ScopedEnv e3("WJ_SOA", "1");
        return WootinJ::jit(p, obj, "run", {Value::ofI32(0)});
    }();

    for (int arg : {0, 1, 7, -5, 123}) {
        const std::vector<Value> args{Value::ofI32(arg)};
        const double refD = in.call(obj, "run", args).asF64();
        const uint64_t ref = bitsOf(refD);

        struct Row {
            const char* config;
            double v;
            bool simdRow;
        };
        std::vector<Row> rows;
        rows.push_back({"jit", plain.invokeWith(args).asF64(), false});
        rows.push_back({"jit+bounds=all", bounds.invokeWith(args).asF64(), false});
        {
            ScopedEnv t("WJ_THREADS", "1");
            rows.push_back({"jit+parallel@1", par.invokeWith(args).asF64(), false});
        }
        {
            ScopedEnv t("WJ_THREADS", "4");
            rows.push_back({"jit+parallel@4", par.invokeWith(args).asF64(), false});
        }
        rows.push_back({"jit+simd", simd.invokeWith(args).asF64(), true});
        {
            ScopedEnv t("WJ_THREADS", "4");
            rows.push_back({"jit+parallel+simd@4", parSimd.invokeWith(args).asF64(), true});
        }
        rows.push_back({"jit+soa", soa.invokeWith(args).asF64(), false});
        {
            ScopedEnv t("WJ_THREADS", "4");
            rows.push_back(
                {"jit+parallel+simd+soa@4", parSimdSoa.invokeWith(args).asF64(), true});
        }
        for (const Row& r : rows) {
            if (r.simdRow) {
                // Expected bitwise too, but tolerated to 1 ulp (see the
                // file header); exact-type payloads inside the f64 differ
                // by 0 or the ulpDistance is already nonzero.
                EXPECT_LE(ulpDistance(refD, r.v), 1u)
                    << "config=" << r.config << " diverged from the interpreter: seed="
                    << seed << " arg=" << arg << " (replay: RandomDifferential sweep index "
                    << GetParam() << ")";
            } else {
                EXPECT_EQ(ref, bitsOf(r.v))
                    << "config=" << r.config << " diverged from the interpreter: seed="
                    << seed << " arg=" << arg << " (replay: RandomDifferential sweep index "
                    << GetParam() << ")";
            }
        }
    }
}

// 200+ programs x 8 jit configs x 5 arguments, per the tracing-PR and
// layout-PR acceptance criteria (9 configurations counting the interpreter
// reference row).
// criteria. Each sweep index is its own ctest entry (gtest_discover_tests),
// so the three compiles per program run under per-test timeouts.
INSTANTIATE_TEST_SUITE_P(Sweep, RandomDifferential, ::testing::Range(0, 200));

// ------------------------------------------------- reduction-heavy family
//
// Programs whose loops are all recognized reductions (`acc = acc op f(i)`
// over +, *, min, max on f64/i64/f32 accumulators). Trip counts stay at or
// below 48 — within the fixed WJRT_REDUCE_MAX_CHUNKS grid every chunk is a
// single iteration, so the ordered combine IS the serial fold and the
// bitwise interp-vs-jit contract extends to the parallel configs.

namespace {

/// One random reduction program: double run(int p) folding four
/// accumulators (sum, product, i64 sum, f32 min) over seeded trip counts.
Program reductionProgram(uint64_t seed) {
    SplitMix64 rng(seed);
    const int32_t tSum = 1 + static_cast<int32_t>(rng.nextBelow(48));
    const int32_t tProd = 1 + static_cast<int32_t>(rng.nextBelow(48));
    const int32_t tLong = 1 + static_cast<int32_t>(rng.nextBelow(48));
    const int32_t tMin = 1 + static_cast<int32_t>(rng.nextBelow(48));
    const double w = 0.25 + rng.nextDouble();
    // Exactly representable factor near 1: product stays finite and the
    // mul-by-identity seeding cannot flush anything denormal.
    const double q = 1.0 + static_cast<double>(rng.nextBelow(16)) / 1024.0;
    const int32_t mMod = 3 + static_cast<int32_t>(rng.nextBelow(9));

    // arr[j] = f32(j * w + p), filled by a proven parallel-for; the min
    // reduction then scans it through the same index expression twice
    // (textually equal sides, the recognized guarded-update form).
    auto scan = [] { return aget(lv("arr"), rem(lv("i"), ci(16))); };

    Block body;
    body.push_back(decl("arr", Type::array(Type::f32()), newArr(Type::f32(), ci(16))));
    body.push_back(forRange(
        "j", ci(0), ci(16),
        blk(aset(lv("arr"), lv("j"),
                 cast(Type::f32(), add(mul(cast(Type::f64(), lv("j")), cd(w)),
                                       cast(Type::f64(), lv("p"))))))));
    body.push_back(decl("s", Type::f64(), cd(0.0)));
    body.push_back(forRange(
        "i", ci(0), ci(tSum),
        blk(assign("s", add(lv("s"),
                            mul(cast(Type::f64(), aget(lv("arr"), rem(lv("i"), ci(16)))),
                                cd(w)))))));
    body.push_back(decl("prod", Type::f64(), cd(1.0)));
    body.push_back(
        forRange("i", ci(0), ci(tProd), blk(assign("prod", mul(cd(q), lv("prod"))))));
    body.push_back(decl("m", Type::i64(), cast(Type::i64(), lv("p"))));
    body.push_back(forRange(
        "i", ci(0), ci(tLong),
        blk(assign("m", add(lv("m"), cast(Type::i64(), rem(lv("i"), ci(mMod))))))));
    body.push_back(decl("lo", Type::f32(), cf(1e30f)));
    body.push_back(forRange("i", ci(0), ci(tMin),
                            blk(ifs(lt(scan(), lv("lo")), blk(assign("lo", scan()))))));
    body.push_back(ret(add(add(lv("s"), lv("prod")),
                           add(cast(Type::f64(), lv("m")), cast(Type::f64(), lv("lo"))))));
    ProgramBuilder pb;
    pb.cls("R").method("run", Type::f64()).param("p", Type::i32()).body(std::move(body));
    return pb.build();
}

} // namespace

class ReductionDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ReductionDifferential, ParallelReduceConfigsBitwiseAgree) {
    const uint64_t seed = static_cast<uint64_t>(GetParam()) * 0x51c64b6u + 3;
    ScopedEnv pinB("WJ_BOUNDS", nullptr);
    ScopedEnv pinP("WJ_PARALLEL", nullptr);
    ScopedEnv pinT("WJ_THREADS", nullptr);
    ScopedEnv pinS("WJ_SIMD", nullptr);
    ScopedEnv pinL("WJ_SOA", nullptr);

    Program p = reductionProgram(seed);
    Interp in(p);
    Value obj = in.instantiate("R", {});

    JitCode plain = WootinJ::jit(p, obj, "run", {Value::ofI32(0)});
    JitCode par = [&] {
        ScopedEnv e("WJ_PARALLEL", "1");
        return WootinJ::jit(p, obj, "run", {Value::ofI32(0)});
    }();
    EXPECT_GE(par.reduceLoops(), 4) << "every accumulator loop must outline";
    JitCode parSimd = [&] {
        ScopedEnv e1("WJ_PARALLEL", "1");
        ScopedEnv e2("WJ_SIMD", "1");
        return WootinJ::jit(p, obj, "run", {Value::ofI32(0)});
    }();

    for (int arg : {0, 2, -7, 55}) {
        const std::vector<Value> args{Value::ofI32(arg)};
        const double refD = in.call(obj, "run", args).asF64();
        const uint64_t ref = bitsOf(refD);
        EXPECT_EQ(ref, bitsOf(plain.invokeWith(args).asF64()))
            << "jit diverged: seed=" << seed << " arg=" << arg;
        for (int t : {1, 4, 8}) {
            ScopedEnv e("WJ_THREADS", std::to_string(t).c_str());
            EXPECT_EQ(ref, bitsOf(par.invokeWith(args).asF64()))
                << "jit+parallel@" << t << " diverged: seed=" << seed << " arg=" << arg;
            // simd composed on top: exact reduction clauses (i64 +, f32
            // min) stay bitwise; the 1-ulp ceiling covers the rest.
            EXPECT_LE(ulpDistance(refD, parSimd.invokeWith(args).asF64()), 1u)
                << "jit+parallel+simd@" << t << " diverged: seed=" << seed
                << " arg=" << arg;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(ReduceSweep, ReductionDifferential, ::testing::Range(0, 24));
