// Unit tests for the span tracer (src/trace/) — the observability contract
// the rest of the codebase leans on:
//
//   * disabled-tracer overhead guard: with tracing off, Span construction
//     records nothing and allocates nothing (no per-thread buffer appears);
//   * span nesting: an enclosing span brackets its children in time and the
//     snapshot orders spans by start;
//   * ring-buffer wraparound: pushing past kRingCapacity drops the OLDEST
//     spans, keeps the newest, and accounts the drops;
//   * multi-rank merge: spans recorded by MiniMPI ranks carry their rank,
//     and toJson() is valid JSON with per-rank process metadata and
//     non-decreasing timestamps.
//
// Every test runs against the process-global tracer, so each pins the state
// it needs (enable("")/disable() + reset()) rather than assuming a fresh
// process — the suite passes filtered per-test (ctest) and all-in-one.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "minimpi/minimpi.h"
#include "trace/metrics.h"
#include "trace/trace.h"

using namespace wj;
using trace::SpanRec;
using trace::Tracer;

namespace {

/// Minimal recursive-descent JSON validity checker (no parser dependency).
class JsonChecker {
public:
    static bool valid(const std::string& s) {
        JsonChecker c(s);
        c.skipWs();
        if (!c.value()) return false;
        c.skipWs();
        return c.i_ == s.size();
    }

private:
    explicit JsonChecker(const std::string& s) : s_(s) {}

    bool value() {
        if (i_ >= s_.size()) return false;
        switch (s_[i_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    bool object() {
        ++i_;  // '{'
        skipWs();
        if (peek() == '}') { ++i_; return true; }
        for (;;) {
            skipWs();
            if (!string()) return false;
            skipWs();
            if (peek() != ':') return false;
            ++i_;
            skipWs();
            if (!value()) return false;
            skipWs();
            if (peek() == ',') { ++i_; continue; }
            if (peek() == '}') { ++i_; return true; }
            return false;
        }
    }

    bool array() {
        ++i_;  // '['
        skipWs();
        if (peek() == ']') { ++i_; return true; }
        for (;;) {
            skipWs();
            if (!value()) return false;
            skipWs();
            if (peek() == ',') { ++i_; continue; }
            if (peek() == ']') { ++i_; return true; }
            return false;
        }
    }

    bool string() {
        if (peek() != '"') return false;
        for (++i_; i_ < s_.size(); ++i_) {
            if (s_[i_] == '\\') { ++i_; continue; }
            if (s_[i_] == '"') { ++i_; return true; }
        }
        return false;
    }

    bool number() {
        size_t start = i_;
        if (peek() == '-') ++i_;
        while (i_ < s_.size() && (std::isdigit(s_[i_]) || s_[i_] == '.' ||
                                  s_[i_] == 'e' || s_[i_] == 'E' ||
                                  s_[i_] == '+' || s_[i_] == '-'))
            ++i_;
        return i_ > start;
    }

    bool literal(const char* lit) {
        for (; *lit; ++lit, ++i_)
            if (i_ >= s_.size() || s_[i_] != *lit) return false;
        return true;
    }

    char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
    void skipWs() {
        while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' ||
                                  s_[i_] == '\t' || s_[i_] == '\r'))
            ++i_;
    }

    const std::string& s_;
    size_t i_ = 0;
};

/// Extracts every "ts": value from a trace JSON, in document order.
std::vector<double> timestamps(const std::string& json) {
    std::vector<double> out;
    size_t pos = 0;
    while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
        pos += 5;
        out.push_back(std::stod(json.substr(pos)));
    }
    return out;
}

/// Pins the tracer enabled (no flush destination) with empty rings for the
/// duration of a test, restoring "disabled" after.
struct EnabledScope {
    EnabledScope() {
        Tracer::instance().enable("");
        Tracer::instance().reset();
    }
    ~EnabledScope() { Tracer::instance().disable(); }
};

} // namespace

TEST(TraceDisabled, SpansCostNothingWhenOff) {
    Tracer& tr = Tracer::instance();
    tr.disable();
    const int64_t before = tr.spansRecorded();
    const int64_t buffersBefore = tr.buffersCreated();

    for (int i = 0; i < 1000; ++i) {
        trace::Span span("test", "hot", "i", i);
        span.arg(1, "j", i * 2);
        trace::instant("test", "tick", "i", i);
    }

    // Nothing recorded, and — the allocation guard — no per-thread ring was
    // created: the disabled path must not touch the buffer registry at all.
    EXPECT_EQ(before, tr.spansRecorded());
    EXPECT_EQ(buffersBefore, tr.buffersCreated());
}

TEST(TraceDisabled, SpanStartedWhileEnabledStillRecords) {
    EnabledScope on;
    Tracer& tr = Tracer::instance();
    {
        trace::Span span("test", "crossing");
        tr.disable();
        // Destructor records even though tracing stopped mid-span: dropping
        // it would truncate the enclosing timeline.
    }
    ASSERT_EQ(1, tr.spansRecorded());
    tr.enable("");
}

TEST(TraceSpans, NestingBracketsChildren) {
    EnabledScope on;
    {
        trace::Span outer("test", "outer");
        {
            trace::Span inner("test", "inner", "k", 42);
        }
    }
    std::vector<SpanRec> spans = Tracer::instance().snapshot();
    ASSERT_EQ(2u, spans.size());
    // snapshot() sorts by start: the outer span started first.
    EXPECT_STREQ("outer", spans[0].name);
    EXPECT_STREQ("inner", spans[1].name);
    // The child lies inside the parent's [start, start+dur] window.
    EXPECT_GE(spans[1].startNs, spans[0].startNs);
    EXPECT_LE(spans[1].startNs + spans[1].durNs, spans[0].startNs + spans[0].durNs);
    EXPECT_STREQ("k", spans[1].argKey[0]);
    EXPECT_EQ(42, spans[1].argVal[0]);
}

TEST(TraceSpans, EndRecordsOnceAndDisarms) {
    EnabledScope on;
    {
        trace::Span span("test", "lookup");
        span.end();
        span.end();  // idempotent
    }                // destructor must not record again
    EXPECT_EQ(1, Tracer::instance().spansRecorded());
}

TEST(TraceSpans, InstantsAreMarked) {
    EnabledScope on;
    trace::instant("test", "blip", "a", 1, "b", 2, "c", 3);
    std::vector<SpanRec> spans = Tracer::instance().snapshot();
    ASSERT_EQ(1u, spans.size());
    EXPECT_EQ(-1, spans[0].durNs);
    EXPECT_EQ(3, spans[0].argVal[2]);
}

TEST(TraceSpans, InternReturnsStablePointers) {
    const char* a = trace::intern("invoke run");
    const char* b = trace::intern("invoke run");
    EXPECT_EQ(a, b);
    EXPECT_STREQ("invoke run", a);
}

TEST(TraceRing, WraparoundDropsOldestKeepsNewest) {
    EnabledScope on;
    Tracer& tr = Tracer::instance();
    const int64_t extra = 100;
    const int64_t total = static_cast<int64_t>(Tracer::kRingCapacity) + extra;
    for (int64_t i = 0; i < total; ++i)
        trace::instant("test", "n", "i", i);

    EXPECT_EQ(total, tr.spansRecorded());
    EXPECT_EQ(extra, tr.spansDropped());

    // This thread's ring holds exactly capacity spans: the newest `total`
    // minus the dropped oldest `extra`. Other threads' rings are empty
    // (reset() in the fixture), so the merged snapshot is this ring.
    std::vector<SpanRec> spans = tr.snapshot();
    ASSERT_EQ(Tracer::kRingCapacity, spans.size());
    // Oldest surviving span is #extra, newest is #total-1, in order.
    EXPECT_EQ(extra, spans.front().argVal[0]);
    EXPECT_EQ(total - 1, spans.back().argVal[0]);
}

TEST(TraceJson, EmptyTraceIsValid) {
    EnabledScope on;
    const std::string json = Tracer::instance().toJson();
    EXPECT_TRUE(JsonChecker::valid(json)) << json;
}

TEST(TraceJson, EscapesSpecialCharacters) {
    EnabledScope on;
    trace::instant("test", trace::intern("quote\" slash\\ tab\t"));
    const std::string json = Tracer::instance().toJson();
    EXPECT_TRUE(JsonChecker::valid(json)) << json;
    EXPECT_NE(std::string::npos, json.find("quote\\\" slash\\\\ tab\\t"));
}

TEST(TraceJson, MultiRankMergeIsValidAndOrdered) {
    EnabledScope on;
    // Four MiniMPI ranks, each recording comm spans (World::run tags the
    // rank threads via setThreadRank; barrier/send/recv are instrumented).
    minimpi::World world(4);
    world.run([](minimpi::Comm& comm) {
        trace::Span span("test", "rankwork", "rank", comm.rank());
        comm.barrier();
        if (comm.rank() == 0) {
            for (int r = 1; r < comm.size(); ++r) {
                int v = r;
                comm.send(&v, sizeof v, r, 7);
            }
        } else {
            int v = 0;
            comm.recv(&v, sizeof v, 0, 7);
        }
        comm.barrier();
    });

    Tracer& tr = Tracer::instance();
    std::vector<SpanRec> spans = tr.snapshot();
    ASSERT_FALSE(spans.empty());

    // Every rank contributed, with its own rank tag.
    for (int r = 0; r < 4; ++r) {
        bool found = false;
        for (const SpanRec& s : spans)
            if (s.rank == r) { found = true; break; }
        EXPECT_TRUE(found) << "no spans from rank " << r;
    }
    // The snapshot is sorted by start time across all per-thread rings.
    for (size_t i = 1; i < spans.size(); ++i)
        EXPECT_LE(spans[i - 1].startNs, spans[i].startNs);

    const std::string json = tr.toJson();
    ASSERT_TRUE(JsonChecker::valid(json)) << json.substr(0, 400);
    // Per-rank process metadata: pid = rank+1, named "rank r".
    for (int r = 0; r < 4; ++r)
        EXPECT_NE(std::string::npos, json.find("rank " + std::to_string(r)));
    // Event timestamps are normalized (first = 0) and non-decreasing.
    std::vector<double> ts = timestamps(json);
    ASSERT_FALSE(ts.empty());
    EXPECT_EQ(0.0, ts.front());
    for (size_t i = 1; i < ts.size(); ++i) EXPECT_LE(ts[i - 1], ts[i]);
}

TEST(TraceMetrics, CountersAndHistogramsRoundTrip) {
    trace::Metrics& m = trace::Metrics::instance();
    m.reset();
    m.counter("test.count").add(5);
    m.counter("test.count").inc();
    auto& h = m.histogram("test.lat");
    h.observe(1);
    h.observe(1000);
    h.observe(0);

    EXPECT_EQ(6, m.counter("test.count").value());
    EXPECT_EQ(3, h.count());
    EXPECT_EQ(1001, h.sum());
    EXPECT_EQ(0, h.min());
    EXPECT_EQ(1000, h.max());

    const std::string json = m.toJson();
    EXPECT_TRUE(JsonChecker::valid(json)) << json;
    EXPECT_NE(std::string::npos, json.find("\"test.count\": 6"));
}
