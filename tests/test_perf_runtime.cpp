// Perf model properties and wjrt runtime behaviors.
#include <gtest/gtest.h>

#include "perf/perfmodel.h"
#include "runtime/context.h"
#include "runtime/wjrt.h"
#include "support/diagnostics.h"
#include "support/prng.h"
#include "support/strings.h"
#include "runtime/rng_hash.h"

using namespace wj;
using namespace wj::perf;

// ------------------------------------------------------------- perf model

TEST(PerfModel, TransferTimeIsAffine) {
    NetModel net{2e-6, 1e9};
    EXPECT_DOUBLE_EQ(2e-6, net.transferTime(0));
    EXPECT_DOUBLE_EQ(2e-6 + 1.0, net.transferTime(1e9));
    // Monotone in bytes.
    EXPECT_LT(net.transferTime(100), net.transferTime(200));
}

TEST(PerfModel, RooflineTakesTheBindingLimit) {
    GpuModel g{100e9, 10e9, 1e9, 0};
    // Memory bound: 10 GB at 10 GB/s = 1 s >> 1 Gflop at 100 GF/s.
    EXPECT_DOUBLE_EQ(1.0, g.kernelTime(10e9, 1e9));
    // Compute bound.
    EXPECT_DOUBLE_EQ(1.0, g.kernelTime(1e6, 100e9));
}

TEST(PerfModel, SquareSide) {
    EXPECT_EQ(1, squareSide(1));
    EXPECT_EQ(1, squareSide(2));
    EXPECT_EQ(1, squareSide(3));
    EXPECT_EQ(2, squareSide(4));
    EXPECT_EQ(2, squareSide(8));
    EXPECT_EQ(3, squareSide(9));
    EXPECT_EQ(11, squareSide(121));
    EXPECT_EQ(11, squareSide(143));
    EXPECT_EQ(12, squareSide(144));
}

TEST(PerfModel, WeakScalingStepTimeIsFlatPlusComm) {
    const auto m = MachineProfile::tsubame2();
    StencilScaling s{};
    s.nx = s.ny = 128;
    s.nzPerNodeOrGlobal = 128;
    s.secondsPerCell = 5e-9;
    const double t1 = s.weakStepCpu(m, 1);
    const double t2 = s.weakStepCpu(m, 2);
    const double t64 = s.weakStepCpu(m, 64);
    EXPECT_LT(t1, t2);                    // communication appears
    EXPECT_DOUBLE_EQ(t2, t64);            // ring halo: P-independent beyond 2
}

TEST(PerfModel, StrongScalingSpeedupBounded) {
    const auto m = MachineProfile::tsubame2();
    StencilScaling s{};
    s.nx = s.ny = 128;
    s.nzPerNodeOrGlobal = 1024;
    s.secondsPerCell = 5e-9;
    double prev = s.strongStepCpu(m, 1);
    for (int p : {2, 4, 8, 16, 32}) {
        const double t = s.strongStepCpu(m, p);
        EXPECT_LT(t, prev);                              // still scaling
        EXPECT_GT(t, prev / 2.0 - 1e-12);                // never super-linear
        prev = t;
    }
}

TEST(PerfModel, FoxWeakWorkGrowsWithGrid) {
    const auto m = MachineProfile::tsubame2();
    FoxScaling f{};
    f.nPerNodeOrGlobal = 1024;
    f.secondsPerFma = 1e-9;
    // Weak scaling of matmul is not flat (n^3 total work grows faster than
    // q^2 nodes): time grows linearly with q. This is the paper's Figure 9
    // upward slope.
    const double t1 = f.totalCpu(m, 1, true);
    const double t4 = f.totalCpu(m, 4, true);
    const double t16 = f.totalCpu(m, 16, true);
    EXPECT_NEAR(2.0, t4 / t1, 0.2);
    EXPECT_NEAR(2.0, t16 / t4, 0.2);
}

TEST(PerfModel, FoxStrongScalesDown) {
    const auto m = MachineProfile::tsubame2();
    FoxScaling f{};
    f.nPerNodeOrGlobal = 4096;
    f.secondsPerFma = 1e-9;
    EXPECT_GT(f.totalCpu(m, 1, false), f.totalCpu(m, 4, false));
    EXPECT_GT(f.totalCpu(m, 4, false), f.totalCpu(m, 16, false));
}

TEST(PerfModel, GpuStrongScalingSaturates) {
    const auto m = MachineProfile::tsubame2();
    StencilScaling s{};
    s.nx = s.ny = 384;
    s.nzPerNodeOrGlobal = 384 * 4;
    const double t1 = s.strongStepGpu(m, 1);
    const double t64 = s.strongStepGpu(m, 64);
    const double speedup = t1 / t64;
    EXPECT_GT(speedup, 2.0);
    EXPECT_LT(speedup, 64.0);  // PCIe staging caps it — the paper's story
}

TEST(PerfModel, FitAlphaBetaRecoversAnExactAffineLink) {
    const NetModel truth{3e-6, 2e9};
    std::vector<LinkSample> s;
    for (double b : {64.0, 4096.0, 65536.0, 262144.0})
        s.push_back({b, truth.transferTime(b)});
    const NetModel fit = fitAlphaBeta(s);
    EXPECT_NEAR(truth.latency, fit.latency, 1e-12);
    EXPECT_NEAR(truth.bandwidth, fit.bandwidth, truth.bandwidth * 1e-6);
    // And the fit predicts its own inputs exactly.
    for (const auto& p : s) EXPECT_NEAR(p.seconds, fit.transferTime(p.bytes), 1e-15);
}

TEST(PerfModel, FitAlphaBetaDegenerateInputsFallBackOrClamp) {
    // No samples / one sample: nothing to fit -> the default profile.
    const NetModel dflt = MachineProfile::tsubame2().net;
    EXPECT_DOUBLE_EQ(dflt.latency, fitAlphaBeta({}).latency);
    EXPECT_DOUBLE_EQ(dflt.bandwidth, fitAlphaBeta({{4096.0, 5e-6}}).bandwidth);
    // Repeated sizes have zero variance in bytes -> same fallback.
    EXPECT_DOUBLE_EQ(dflt.latency, fitAlphaBeta({{64.0, 1e-6}, {64.0, 2e-6}}).latency);
    // A noise-tilted negative slope clamps to a usable (huge-bandwidth)
    // link instead of producing a negative beta.
    const NetModel neg = fitAlphaBeta({{64.0, 1e-3}, {65536.0, 1e-6}});
    EXPECT_GT(neg.bandwidth, 0.0);
    EXPECT_GE(neg.latency, 0.0);
    EXPECT_GT(neg.transferTime(1e6), 0.0);
}

// ------------------------------------------------------------------- wjrt

TEST(Wjrt, ArrayAllocZeroedAndFreed) {
    wj_array* a = wjrt_alloc_array(16, 4);
    ASSERT_NE(nullptr, a);
    EXPECT_EQ(16, a->len);
    EXPECT_EQ(4, a->elem_size);
    auto* data = static_cast<int32_t*>(wj_array_data(a));
    for (int i = 0; i < 16; ++i) EXPECT_EQ(0, data[i]);
    wjrt_free_array(a);
    EXPECT_THROW(wjrt_alloc_array(-1, 4), ExecError);
}

TEST(Wjrt, RankSizeWithoutWorldIsSingleton) {
    EXPECT_EQ(0, wjrt_mpi_rank());
    EXPECT_EQ(1, wjrt_mpi_size());
    EXPECT_THROW(wjrt_mpi_barrier(), ExecError);
}

TEST(Wjrt, GpuCallsWithoutDeviceTrap) {
    EXPECT_THROW(wjrt_gpu_alloc_f32(4), ExecError);
}

TEST(Wjrt, RankScopeBindsAndRestores) {
    gpusim::Device dev(3);
    {
        runtime::RankScope scope(nullptr, &dev);
        EXPECT_EQ(&dev, runtime::currentDevice());
        wj_array* a = wjrt_gpu_alloc_f32(8);
        EXPECT_EQ(8, a->len);
        EXPECT_TRUE(a->flags & WJ_ARRAY_DEVICE);
        wjrt_gpu_free(a);
        {
            runtime::RankScope inner(nullptr, nullptr);
            EXPECT_EQ(nullptr, runtime::currentDevice());
        }
        EXPECT_EQ(&dev, runtime::currentDevice());
    }
    EXPECT_EQ(nullptr, runtime::currentDevice());
}

TEST(Wjrt, DeviceHostFreeMismatchRejected) {
    gpusim::Device dev;
    runtime::RankScope scope(nullptr, &dev);
    wj_array* host = wjrt_alloc_array(4, 4);
    wj_array* device = wjrt_gpu_alloc_f32(4);
    EXPECT_THROW(wjrt_gpu_free(host), ExecError);
    EXPECT_THROW(wjrt_free_array(device), ExecError);
    wjrt_free_array(host);
    wjrt_gpu_free(device);
}

TEST(Wjrt, TrapThrows) {
    EXPECT_THROW(wjrt_trap("boom"), ExecError);
}

// ---------------------------------------------------------------- support

TEST(Support, SplitMixDeterministic) {
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
    SplitMix64 c(43);
    EXPECT_NE(SplitMix64(42).next(), c.next());
}

TEST(Support, SplitMixRanges) {
    SplitMix64 r(7);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        const float f = r.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
        EXPECT_LT(r.nextBelow(17), 17u);
    }
}

TEST(Support, RngHashStableAcrossPlatforms) {
    // Golden values pin the generator shared by interpreter, generated C,
    // and baselines: changing it invalidates every checksum test.
    EXPECT_FLOAT_EQ(wj_rng_hash_f32(0, 0), wj_rng_hash_f32(0, 0));
    EXPECT_NE(wj_rng_hash_f32(0, 1), wj_rng_hash_f32(0, 2));
    EXPECT_NE(wj_rng_hash_f32(1, 0), wj_rng_hash_f32(2, 0));
    float sum = 0;
    for (int i = 0; i < 10000; ++i) sum += wj_rng_hash_f32(5, i);
    EXPECT_NEAR(5000.0f, sum, 150.0f);  // roughly uniform on [0,1)
}

TEST(Support, StringHelpers) {
    EXPECT_EQ("a, b, c", join({"a", "b", "c"}, ", "));
    EXPECT_EQ("", join({}, ","));
    EXPECT_TRUE(isIdentifier("abc_123"));
    EXPECT_FALSE(isIdentifier("1abc"));
    EXPECT_FALSE(isIdentifier(""));
    EXPECT_FALSE(isIdentifier("a-b"));
    EXPECT_EQ("a_b", mangle("a-b"));
    EXPECT_EQ("n3x", mangle("3x"));
    EXPECT_EQ("x12", format("x%d", 12));
}

TEST(Wjrt, OffsetMemcpyMovesSubranges) {
    gpusim::Device dev;
    runtime::RankScope scope(nullptr, &dev);
    wj_array* host = wjrt_alloc_array(8, 4);
    auto* h = static_cast<float*>(wj_array_data(host));
    for (int i = 0; i < 8; ++i) h[i] = static_cast<float>(i);
    wj_array* devArr = wjrt_gpu_alloc_f32(8);
    // Host [2..5] -> device [0..3], then device [1..2] -> host [6..7].
    wjrt_gpu_memcpy_h2d_off_f32(devArr, 0, host, 2, 4);
    wjrt_gpu_memcpy_d2h_off_f32(host, 6, devArr, 1, 2);
    EXPECT_FLOAT_EQ(3.0f, h[6]);
    EXPECT_FLOAT_EQ(4.0f, h[7]);
    // Direction confusion is rejected.
    EXPECT_THROW(wjrt_gpu_memcpy_h2d_off_f32(host, 0, devArr, 0, 1), ExecError);
    EXPECT_THROW(wjrt_gpu_memcpy_d2h_off_f32(devArr, 0, host, 0, 1), ExecError);
    wjrt_gpu_free(devArr);
    wjrt_free_array(host);
}

TEST(Wjrt, SharedHeaderReflectsLaunchConfig) {
    gpusim::Device dev;
    runtime::RankScope scope(nullptr, &dev);
    static int64_t observedLen;
    observedLen = -1;
    auto kernel = [](wjrt_gpu_tctx* t, void*) {
        wj_array* sh = wjrt_gpu_shared_f32(t);
        observedLen = sh->len;
    };
    wjrt_gpu_launch(kernel, nullptr, 1, 1, 1, 1, 1, 1, /*shared_bytes=*/48, 0);
    EXPECT_EQ(12, observedLen);  // 48 bytes / 4
}

TEST(PerfModel, OverlapHidesCommunicationUpToInteriorTime) {
    const auto m = MachineProfile::tsubame2();
    StencilScaling s{};
    s.nx = s.ny = 128;
    s.nzPerNodeOrGlobal = 128;
    s.secondsPerCell = 5e-9;
    const double sync = s.weakStepCpu(m, 4);
    const double ovl = s.weakStepCpuOverlap(m, 4);
    EXPECT_LT(ovl, sync);                        // overlap helps
    EXPECT_GE(ovl, sync - 2 * m.net.transferTime(128 * 128 * 4.0));  // bounded by comm
}
