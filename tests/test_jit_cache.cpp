// The persistent JIT compile cache (src/jit/cache.h): content-addressed
// hit/miss behavior, invalidation on flag changes, recovery from corrupted
// entries, LRU eviction, reuse across MPI worlds, and the decoded
// diagnostics of the external-compiler failure path.
//
// Every test redirects the store with WJ_CACHE_DIR into a private temp
// directory (the cache re-reads its environment on each call) and clears
// the in-process module registry, so tests are hermetic against each other
// and against developer caches.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <chrono>
#include <future>
#include <thread>

#include "interp/interp.h"
#include "ir/builder.h"
#include "jit/cache.h"
#include "jit/compile.h"
#include "jit/jit.h"
#include "support/diagnostics.h"

namespace fs = std::filesystem;
using namespace wj;
using namespace wj::dsl;

namespace {

/// A minimal but distinct program per test: `bias + n*k` so each test can
/// vary `k` to get a unique translation unit (unique cache key).
Program makeProgram() {
    ProgramBuilder pb;
    auto& c = pb.cls("Calc").finalClass();
    c.field("bias", Type::f64());
    c.ctor().param("b", Type::f64()).body(blk(setSelf("bias", lv("b"))));
    c.method("run", Type::f64())
        .param("n", Type::i32())
        .body(blk(decl("acc", Type::f64(), selff("bias")),
                  forRange("i", ci(0), lv("n"), blk(assign("acc", add(lv("acc"), cd(1.0))))),
                  ret(lv("acc"))));
    return pb.build();
}

class JitCacheTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() / ("wjcache-test-" + std::to_string(::getpid()) + "-" +
                                            ::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        setenv("WJ_CACHE_DIR", dir_.c_str(), 1);
        unsetenv("WJ_CACHE_MAX_BYTES");
        unsetenv("WJ_CFLAGS");
        unsetenv("WJ_CC");
        setenv("WJ_CACHE", "1", 1);
        JitCache::instance().clearLoaded();
        JitCache::instance().resetStats();
    }

    void TearDown() override {
        unsetenv("WJ_CACHE_DIR");
        unsetenv("WJ_CACHE_MAX_BYTES");
        unsetenv("WJ_CFLAGS");
        unsetenv("WJ_CC");
        unsetenv("WJ_CACHE");
        unsetenv("WJ_CACHE_EVICT_GRACE_MS");
        unsetenv("WJ_CACHE_LOCK");
        unsetenv("TMPDIR");
        JitCache::instance().clearLoaded();
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    /// Number of .so entries currently stored.
    size_t entryCount() const {
        size_t n = 0;
        for (const auto& de : fs::directory_iterator(dir_)) {
            if (de.path().extension() == ".so") ++n;
        }
        return n;
    }

    fs::path dir_;
};

} // namespace

TEST_F(JitCacheTest, ColdMissThenWarmHit) {
    Program p = makeProgram();
    Interp in(p);
    Value calc = in.instantiate("Calc", {Value::ofF64(2.0)});

    JitCode cold = WootinJ::jit(p, calc, "run", {Value::ofI32(5)});
    EXPECT_FALSE(cold.cacheHit());
    EXPECT_GT(cold.compileSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(7.0, cold.invoke().asF64());
    EXPECT_EQ(1u, entryCount());

    // Same translation unit again in-process: served by the registry.
    JitCode warmMem = WootinJ::jit(p, calc, "run", {Value::ofI32(5)});
    EXPECT_TRUE(warmMem.cacheHit());
    EXPECT_EQ(0.0, warmMem.compileSeconds());
    EXPECT_DOUBLE_EQ(7.0, warmMem.invoke().asF64());

    // Drop the registry: the next jit() exercises the on-disk store (what
    // a fresh process would see) and still skips the external compiler.
    JitCache::instance().clearLoaded();
    JitCode warmDisk = WootinJ::jit(p, calc, "run", {Value::ofI32(5)});
    EXPECT_TRUE(warmDisk.cacheHit());
    EXPECT_EQ(0.0, warmDisk.compileSeconds());
    EXPECT_DOUBLE_EQ(7.0, warmDisk.invoke().asF64());

    const CacheStats s = JitCache::instance().stats();
    EXPECT_GE(s.misses, 1);
    EXPECT_GE(s.memoryHits, 1);
    EXPECT_GE(s.diskHits, 1);
    EXPECT_GE(s.stores, 1);
}

TEST_F(JitCacheTest, FlagChangeInvalidates) {
    Program p = makeProgram();
    Interp in(p);
    Value calc = in.instantiate("Calc", {Value::ofF64(0.0)});

    setenv("WJ_CFLAGS", "-O1", 1);
    JitCode o1 = WootinJ::jit(p, calc, "run", {Value::ofI32(3)});
    EXPECT_FALSE(o1.cacheHit());

    // Different flags -> different key -> a fresh compile, even though the
    // generated C is byte-identical.
    setenv("WJ_CFLAGS", "-O0", 1);
    JitCache::instance().clearLoaded();
    JitCode o0 = WootinJ::jit(p, calc, "run", {Value::ofI32(3)});
    EXPECT_FALSE(o0.cacheHit());
    EXPECT_EQ(2u, entryCount());

    // Returning to the first flag set hits the first entry again.
    setenv("WJ_CFLAGS", "-O1", 1);
    JitCache::instance().clearLoaded();
    JitCode again = WootinJ::jit(p, calc, "run", {Value::ofI32(3)});
    EXPECT_TRUE(again.cacheHit());
}

TEST_F(JitCacheTest, CorruptedEntryIsRecompiled) {
    Program p = makeProgram();
    Interp in(p);
    Value calc = in.instantiate("Calc", {Value::ofF64(1.0)});

    {
        JitCode cold = WootinJ::jit(p, calc, "run", {Value::ofI32(4)});
        EXPECT_FALSE(cold.cacheHit());
        ASSERT_EQ(1u, entryCount());
    }
    // Drop the registry so the module is unloaded (its mapping must be
    // gone before the file is rewritten in place), then garble the stored
    // .so as a crashed writer on a non-atomic filesystem would. The next
    // lookup's dlopen fails; the cache must drop the entry and recompile
    // instead of surfacing the dlopen error.
    JitCache::instance().clearLoaded();
    for (const auto& de : fs::directory_iterator(dir_)) {
        if (de.path().extension() != ".so") continue;
        std::ofstream garble(de.path(), std::ios::trunc);
        garble << "not an ELF object";
    }

    JitCode recovered = WootinJ::jit(p, calc, "run", {Value::ofI32(4)});
    EXPECT_FALSE(recovered.cacheHit());  // it really recompiled
    EXPECT_DOUBLE_EQ(5.0, recovered.invoke().asF64());
    EXPECT_GE(JitCache::instance().stats().corrupt, 1);

    // And the rewritten entry serves the next lookup.
    JitCache::instance().clearLoaded();
    EXPECT_TRUE(WootinJ::jit(p, calc, "run", {Value::ofI32(4)}).cacheHit());
}

TEST_F(JitCacheTest, CrossWorldReuse) {
    // The same MPI translation unit jit4mpi()ed twice (fresh World each
    // invoke) reuses one compiled module and computes identical results.
    Program p = makeProgram();
    Interp in(p);
    Value calc = in.instantiate("Calc", {Value::ofF64(0.5)});

    JitCode a = WootinJ::jit4mpi(p, calc, "run", {Value::ofI32(8)});
    a.set4MPI(3);
    const double ra = a.invoke().asF64();
    EXPECT_FALSE(a.cacheHit());

    JitCode b = WootinJ::jit4mpi(p, calc, "run", {Value::ofI32(8)});
    b.set4MPI(2);  // different world size, same binary
    const double rb = b.invoke().asF64();
    EXPECT_TRUE(b.cacheHit());
    EXPECT_DOUBLE_EQ(ra, rb);
    EXPECT_EQ(1u, entryCount());
}

TEST_F(JitCacheTest, LruEvictionRespectsByteCap) {
    // Compile three distinct TUs under a cap that fits only ~one entry;
    // the oldest entries must be evicted.
    Program p = makeProgram();
    Interp in(p);

    JitCode first = WootinJ::jit(p, in.instantiate("Calc", {Value::ofF64(1.0)}), "run",
                                 {Value::ofI32(1)});
    uint64_t oneEntry = JitCache::instance().diskBytes();
    ASSERT_GT(oneEntry, 0u);
    setenv("WJ_CACHE_MAX_BYTES", std::to_string(oneEntry + oneEntry / 2).c_str(), 1);

    // Distinct receivers bake distinct constants into the C source, giving
    // unique translation units.
    for (double bias : {2.0, 3.0, 4.0}) {
        JitCache::instance().clearLoaded();
        WootinJ::jit(p, in.instantiate("Calc", {Value::ofF64(bias)}), "run", {Value::ofI32(1)});
    }
    EXPECT_GE(JitCache::instance().stats().evictions, 1);
    EXPECT_LE(JitCache::instance().diskBytes(), oneEntry + oneEntry / 2);
}

TEST_F(JitCacheTest, DisabledCacheAlwaysCompiles) {
    setenv("WJ_CACHE", "0", 1);
    Program p = makeProgram();
    Interp in(p);
    Value calc = in.instantiate("Calc", {Value::ofF64(6.0)});
    JitCode a = WootinJ::jit(p, calc, "run", {Value::ofI32(2)});
    JitCode b = WootinJ::jit(p, calc, "run", {Value::ofI32(2)});
    EXPECT_FALSE(a.cacheHit());
    EXPECT_FALSE(b.cacheHit());
    EXPECT_GT(b.compileSeconds(), 0.0);
    EXPECT_EQ(0u, entryCount());
}

TEST_F(JitCacheTest, ParallelAsyncCompilesOfDistinctUnits) {
    Program p = makeProgram();
    Interp in(p);
    std::vector<std::future<JitCode>> futs;
    for (double bias : {10.0, 20.0, 30.0, 40.0}) {
        futs.push_back(WootinJ::jitAsync(p, in.instantiate("Calc", {Value::ofF64(bias)}), "run",
                                         {Value::ofI32(3)}));
    }
    double expect = 13.0;
    for (auto& f : futs) {
        JitCode code = f.get();
        EXPECT_DOUBLE_EQ(expect, code.invoke().asF64());
        expect += 10.0;
    }
    EXPECT_EQ(4u, entryCount());
}

// ---- external-compiler failure diagnostics (the decoded-status bugfix) --

TEST_F(JitCacheTest, CompilerExitCodeIsDecoded) {
    // Invalid C source: the compiler exits non-zero; the error must carry
    // a decoded exit code, not a raw wait status.
    try {
        compileAndLoad("this is not C at all !!!", "broken");
        FAIL() << "expected the compile to fail";
    } catch (const UsageError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("exit code"), std::string::npos) << msg;
        EXPECT_EQ(msg.find("signal"), std::string::npos) << msg;
    }
}

TEST_F(JitCacheTest, CompilerSignalDeathIsReported) {
    // A "compiler" that kills itself: the diagnostic must say signal, and
    // nothing may be cached for this key.
    const fs::path cc = dir_ / "killer-cc.sh";
    {
        std::ofstream out(cc);
        out << "#!/bin/sh\nkill -KILL $$\n";
    }
    ::chmod(cc.c_str(), 0755);
    setenv("WJ_CC", cc.c_str(), 1);
    try {
        compileAndLoad("int wj_entry(void) { return 0; }\n", "sigdeath");
        FAIL() << "expected the compile to fail";
    } catch (const UsageError& e) {
        EXPECT_NE(std::string(e.what()).find("signal"), std::string::npos) << e.what();
    }
    EXPECT_EQ(0u, entryCount());
}

TEST_F(JitCacheTest, HonorsTmpdirForScratch) {
    // Point TMPDIR at a private dir: the generated .c must land there.
    const fs::path scratch = dir_ / "scratch";
    fs::create_directories(scratch);
    setenv("TMPDIR", scratch.c_str(), 1);
    auto res = compileAndLoad("int wj_probe(void) { return 41; }\n", "tmpdir_probe");
    unsetenv("TMPDIR");
    EXPECT_FALSE(res.cacheHit);
    ASSERT_FALSE(res.module->sourcePath().empty());
    EXPECT_EQ(res.module->sourcePath().rfind(scratch.string(), 0), 0u)
        << "source " << res.module->sourcePath() << " not under " << scratch;
    using Fn = int (*)(void);
    EXPECT_EQ(41, reinterpret_cast<Fn>(res.module->symbol("wj_probe"))());
}

// ---- publish vs. evict under concurrency (the multi-process cap fix) ----

TEST_F(JitCacheTest, EvictionGraceProtectsJustPublishedEntries) {
    // With a grace window armed (as wjd arms it), an over-cap sweep must
    // NOT unlink entries another thread/process just published — even
    // though the store is far beyond its byte cap.
    Program p = makeProgram();
    Interp in(p);

    WootinJ::jit(p, in.instantiate("Calc", {Value::ofF64(1.0)}), "run", {Value::ofI32(1)});
    const uint64_t oneEntry = JitCache::instance().diskBytes();
    ASSERT_GT(oneEntry, 0u);
    setenv("WJ_CACHE_MAX_BYTES", std::to_string(oneEntry / 2).c_str(), 1);
    setenv("WJ_CACHE_EVICT_GRACE_MS", "60000", 1);

    const int64_t evictionsBefore = JitCache::instance().stats().evictions;
    for (double bias : {2.0, 3.0, 4.0}) {
        JitCache::instance().clearLoaded();
        WootinJ::jit(p, in.instantiate("Calc", {Value::ofF64(bias)}), "run", {Value::ofI32(1)});
    }
    // Every entry is younger than the grace window: all four survive.
    EXPECT_EQ(4u, entryCount());
    EXPECT_EQ(evictionsBefore, JitCache::instance().stats().evictions);

    // Dropping the grace restores the exact byte cap (the default).
    setenv("WJ_CACHE_EVICT_GRACE_MS", "0", 1);
    JitCache::instance().clearLoaded();
    WootinJ::jit(p, in.instantiate("Calc", {Value::ofF64(5.0)}), "run", {Value::ofI32(1)});
    EXPECT_GE(JitCache::instance().stats().evictions, evictionsBefore + 1);
    EXPECT_LE(JitCache::instance().diskBytes(), oneEntry / 2);
    unsetenv("WJ_CACHE_EVICT_GRACE_MS");
}

TEST_F(JitCacheTest, CompileSurvivesImmediateEvictionOfItsOwnEntry) {
    // Regression: a byte cap smaller than one entry (the extreme of "a
    // concurrent sweep evicted the artifact between store() and dlopen()")
    // used to fail the compile with a dlopen error on the vanished path.
    // compileAndLoad must fall back to the temp .so it just built.
    setenv("WJ_CACHE_MAX_BYTES", "1", 1);
    auto res = compileAndLoad("int wj_tiny(void) { return 7; }\n", "evicted_at_birth");
    EXPECT_FALSE(res.cacheHit);
    using Fn = int (*)(void);
    EXPECT_EQ(7, reinterpret_cast<Fn>(res.module->symbol("wj_tiny"))());
    EXPECT_EQ(0u, entryCount());  // the sweep did run
}

// ---- the cross-process build lock (wjd's singleflight substrate) --------

TEST_F(JitCacheTest, BuildLockSecondClaimantJoinsThePublish) {
    JitCache& cache = JitCache::instance();
    const uint64_t key = 0xabcdef0123456789ULL;

    JitCache::BuildLock leader = cache.lockForBuild(key);
    ASSERT_EQ(JitCache::BuildLock::State::Acquired, leader.state());

    // A waiter in another thread blocks on the leader's lock file...
    std::promise<JitCache::BuildLock::State> got;
    std::thread waiter([&] { got.set_value(cache.lockForBuild(key).state()); });
    // Give the waiter time to reach its polling loop while the lock is
    // still held, so it observes the publish, not the release.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    // ...until the leader publishes the artifact (still holding the lock:
    // waiters join off the published entry without waiting for release).
    const fs::path fakeSo = dir_ / "fake.so";
    { std::ofstream out(fakeSo); out << "pretend shared object"; }
    ASSERT_FALSE(cache.store(key, fakeSo.string(), "fake").empty());

    EXPECT_EQ(JitCache::BuildLock::State::Published, got.get_future().get());
    waiter.join();
    leader.release();
}

TEST_F(JitCacheTest, BuildLockStealsLocksOfDeadHolders) {
    // A leader that died without cleanup (SIGKILL) leaves its lock file
    // behind; the next claimant must steal it, not wait out the timeout.
    pid_t dead = fork();
    if (dead == 0) ::_exit(0);
    ASSERT_GT(dead, 0);
    ASSERT_EQ(dead, ::waitpid(dead, nullptr, 0));

    const uint64_t key = 0x1122334455667788ULL;
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx", (unsigned long long)key);
    {
        std::ofstream lock(dir_ / (std::string(hex) + ".building"));
        lock << dead << "\n";
    }
    JitCache::BuildLock stolen = JitCache::instance().lockForBuild(key);
    EXPECT_EQ(JitCache::BuildLock::State::Acquired, stolen.state());
}

TEST_F(JitCacheTest, BuildLockDisabledMeansSkipped) {
    setenv("WJ_CACHE_LOCK", "0", 1);
    JitCache::BuildLock l = JitCache::instance().lockForBuild(0x42);
    EXPECT_EQ(JitCache::BuildLock::State::Skipped, l.state());
    unsetenv("WJ_CACHE_LOCK");
}
