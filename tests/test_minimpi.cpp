// MiniMPI substrate: point-to-point semantics, collectives, determinism,
// and failure injection (world abort).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "minimpi/minimpi.h"
#include "support/diagnostics.h"

using namespace wj;
using namespace wj::minimpi;

TEST(MiniMpi, RankAndSize) {
    World w(4);
    std::vector<int> seen(4, -1);
    w.run([&](Comm& c) {
        EXPECT_EQ(4, c.size());
        seen[static_cast<size_t>(c.rank())] = c.rank();
    });
    for (int r = 0; r < 4; ++r) EXPECT_EQ(r, seen[static_cast<size_t>(r)]);
}

TEST(MiniMpi, RejectsNonPositiveSize) {
    EXPECT_THROW(World(0), UsageError);
    EXPECT_THROW(World(-3), UsageError);
}

TEST(MiniMpi, PointToPoint) {
    World w(2);
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            const int payload = 12345;
            c.send(&payload, sizeof payload, 1, 7);
        } else {
            int got = 0;
            const int src = c.recv(&got, sizeof got, 0, 7);
            EXPECT_EQ(12345, got);
            EXPECT_EQ(0, src);
        }
    });
}

TEST(MiniMpi, TagMatching) {
    // Messages with a different tag must not satisfy a receive.
    World w(2);
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            int a = 1, b = 2;
            c.send(&a, sizeof a, 1, 10);
            c.send(&b, sizeof b, 1, 20);
        } else {
            int got = 0;
            c.recv(&got, sizeof got, 0, 20);  // out of order by tag
            EXPECT_EQ(2, got);
            c.recv(&got, sizeof got, 0, 10);
            EXPECT_EQ(1, got);
        }
    });
}

TEST(MiniMpi, FifoPerSourceAndTag) {
    World w(2);
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            for (int i = 0; i < 100; ++i) c.send(&i, sizeof i, 1, 1);
        } else {
            for (int i = 0; i < 100; ++i) {
                int got = -1;
                c.recv(&got, sizeof got, 0, 1);
                EXPECT_EQ(i, got);
            }
        }
    });
}

TEST(MiniMpi, AnySource) {
    World w(3);
    w.run([](Comm& c) {
        if (c.rank() != 0) {
            const int v = c.rank() * 100;
            c.send(&v, sizeof v, 0, 5);
        } else {
            int sum = 0;
            for (int i = 0; i < 2; ++i) {
                int got = 0;
                const int src = c.recv(&got, sizeof got, kAnySource, 5);
                EXPECT_EQ(src * 100, got);
                sum += got;
            }
            EXPECT_EQ(300, sum);
        }
    });
}

TEST(MiniMpi, SizeMismatchThrows) {
    World w(2);
    EXPECT_THROW(w.run([](Comm& c) {
        if (c.rank() == 0) {
            int v = 0;
            c.send(&v, sizeof v, 1, 1);
        } else {
            double got;
            c.recv(&got, sizeof got, 0, 1);  // 8 bytes expected, 4 sent
        }
    }),
                 ExecError);
}

TEST(MiniMpi, InvalidRankThrows) {
    World w(2);
    EXPECT_THROW(w.run([](Comm& c) {
        int v = 0;
        if (c.rank() == 0) c.send(&v, sizeof v, 5, 1);
        else c.recv(&v, sizeof v, 0, 1);
    }),
                 ExecError);
}

TEST(MiniMpi, SendRecvRingExchange) {
    // The stencil halo pattern: every rank exchanges with both neighbors.
    const int P = 5;
    World w(P);
    w.run([&](Comm& c) {
        const int up = (c.rank() + 1) % P;
        const int down = (c.rank() + P - 1) % P;
        const float mine = static_cast<float>(c.rank());
        float fromDown = -1, fromUp = -1;
        c.sendrecv(&mine, sizeof mine, up, &fromDown, sizeof fromDown, down, 1);
        c.sendrecv(&mine, sizeof mine, down, &fromUp, sizeof fromUp, up, 2);
        EXPECT_EQ(static_cast<float>(down), fromDown);
        EXPECT_EQ(static_cast<float>(up), fromUp);
    });
}

TEST(MiniMpi, SendRecvToSelf) {
    // Buffered sends make self-exchange legal (used by 1-rank MPI runs).
    World w(1);
    w.run([](Comm& c) {
        int out = 9, in_ = 0;
        c.sendrecv(&out, sizeof out, 0, &in_, sizeof in_, 0, 3);
        EXPECT_EQ(9, in_);
    });
}

TEST(MiniMpi, Barrier) {
    const int P = 8;
    World w(P);
    std::atomic<int> phase1{0};
    std::atomic<bool> violated{false};
    w.run([&](Comm& c) {
        phase1.fetch_add(1);
        c.barrier();
        if (phase1.load() != P) violated.store(true);
    });
    EXPECT_FALSE(violated.load());
}

TEST(MiniMpi, Bcast) {
    World w(4);
    w.run([](Comm& c) {
        double buf[3] = {0, 0, 0};
        if (c.rank() == 2) {
            buf[0] = 1.5;
            buf[1] = 2.5;
            buf[2] = 3.5;
        }
        c.bcast(buf, sizeof buf, 2);
        EXPECT_DOUBLE_EQ(1.5, buf[0]);
        EXPECT_DOUBLE_EQ(3.5, buf[2]);
    });
}

TEST(MiniMpi, AllreduceSumDeterministic) {
    const int P = 6;
    World w(P);
    std::vector<double> results(P, 0);
    w.run([&](Comm& c) {
        results[static_cast<size_t>(c.rank())] = c.allreduceSum(0.1 * (c.rank() + 1));
    });
    // Reduction in rank order: 0.1 + 0.2 + ... + 0.6 with fixed grouping.
    double expect = 0;
    for (int r = 0; r < P; ++r) expect += 0.1 * (r + 1);
    for (double r : results) EXPECT_DOUBLE_EQ(expect, r);
}

TEST(MiniMpi, AllreduceMax) {
    World w(5);
    w.run([](Comm& c) {
        const double v = c.rank() == 3 ? 99.0 : static_cast<double>(c.rank());
        EXPECT_DOUBLE_EQ(99.0, c.allreduceMax(v));
    });
}

TEST(MiniMpi, RepeatedCollectives) {
    World w(3);
    w.run([](Comm& c) {
        for (int i = 0; i < 50; ++i) {
            EXPECT_DOUBLE_EQ(3.0 * i, c.allreduceSum(static_cast<double>(i)));
        }
    });
}

TEST(MiniMpi, WorldReusableAcrossRuns) {
    World w(2);
    for (int iter = 0; iter < 3; ++iter) {
        w.run([](Comm& c) {
            int v = c.rank();
            int got = -1;
            c.sendrecv(&v, sizeof v, 1 - c.rank(), &got, sizeof got, 1 - c.rank(), 1);
            EXPECT_EQ(1 - c.rank(), got);
        });
    }
}

TEST(MiniMpi, FailureInjectionAbortsBlockedRanks) {
    // Rank 1 dies; rank 0 is blocked in recv and must be released with an
    // error instead of hanging (MPI_Abort semantics).
    World w(2);
    try {
        w.run([](Comm& c) {
            if (c.rank() == 1) throw ExecError("injected fault");
            int got;
            c.recv(&got, sizeof got, 1, 1);  // never satisfied
        });
        FAIL() << "expected the injected fault to propagate";
    } catch (const ExecError& e) {
        EXPECT_NE(std::string(e.what()).find("injected fault"), std::string::npos);
    }
    // The world remains usable after an abort.
    w.run([](Comm& c) { c.barrier(); });
}

TEST(MiniMpi, FailureInjectionReleasesBarrier) {
    World w(3);
    EXPECT_THROW(w.run([](Comm& c) {
        if (c.rank() == 2) throw ExecError("boom");
        c.barrier();
    }),
                 ExecError);
}

TEST(MiniMpi, AbortDuringBarrierStress) {
    // Regression for the missed-wakeup race in World::abort(): the abort
    // notified barrierCv_ without holding barrierM_, so a rank that had
    // just evaluated the wait predicate (not yet blocked) could sleep
    // forever. Many iterations of ranks piling into a barrier while one
    // rank throws makes the window reliably observable (run under TSan via
    // the tsan ctest label).
    const int P = 4;
    World w(P);
    for (int iter = 0; iter < 150; ++iter) {
        EXPECT_THROW(w.run([&](Comm& c) {
                         if (c.rank() == iter % P) {
                             throw ExecError("abort-in-barrier stress");
                         }
                         // No pre-synchronization: some ranks are already
                         // waiting, some are between check and wait, some
                         // have not arrived when the abort fires.
                         c.barrier();
                         c.barrier();
                     }),
                     ExecError);
    }
    // The world stays usable after every abort.
    w.run([](Comm& c) { c.barrier(); });
}

TEST(MiniMpi, AbortDuringCollectivesStress) {
    // Same race, via the mailbox path: ranks blocked in recvSys inside
    // bcast/allreduce must all be released when a peer dies.
    const int P = 3;
    World w(P);
    for (int iter = 0; iter < 100; ++iter) {
        EXPECT_THROW(w.run([&](Comm& c) {
                         if (c.rank() == iter % P) throw ExecError("die");
                         double v = c.rank();
                         c.bcast(&v, sizeof v, (iter + 1) % P);
                         c.allreduceSum(v);
                     }),
                     ExecError);
    }
}

TEST(MiniMpi, CollectiveBytesAreCounted) {
    // Regression for bytesSent() undercounting: sendSys posted collective
    // messages without accounting, so bcast/allreduce traffic was invisible
    // to the perf model's communication-volume input.
    const int P = 4;
    {
        World w(P);
        w.run([](Comm& c) {
            double buf[2] = {1.0, 2.0};
            c.bcast(buf, sizeof buf, 0);
        });
        // Root sends the 16-byte payload to each of the P-1 others.
        EXPECT_EQ(static_cast<int64_t>(sizeof(double) * 2 * (P - 1)), w.bytesSent());
        EXPECT_EQ(static_cast<int64_t>(P - 1), w.messagesSent());
    }
    {
        World w(P);
        w.run([](Comm& c) { c.allreduceSum(1.0); });
        // Gather to rank 0 then fan back out: 2*(P-1) doubles on the wire.
        EXPECT_EQ(static_cast<int64_t>(sizeof(double) * 2 * (P - 1)), w.bytesSent());
    }
}

TEST(MiniMpi, InstrumentationCounts) {
    World w(2);
    const int64_t m0 = w.messagesSent();
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            float buf[16] = {};
            c.sendF32(buf, 16, 1, 1);
        } else {
            float buf[16];
            c.recvF32(buf, 16, 0, 1);
        }
    });
    EXPECT_EQ(m0 + 1, w.messagesSent());
    EXPECT_EQ(static_cast<int64_t>(16 * sizeof(float)), w.bytesSent());
}

class MiniMpiScale : public ::testing::TestWithParam<int> {};

TEST_P(MiniMpiScale, AllToAllRing) {
    const int P = GetParam();
    World w(P);
    w.run([&](Comm& c) {
        // Pass a token all the way around the ring.
        int token = 0;
        if (c.rank() == 0) {
            token = 1;
            c.send(&token, sizeof token, 1 % P, 9);
            if (P > 1) c.recv(&token, sizeof token, P - 1, 9);
            EXPECT_EQ(P, token);
        } else {
            c.recv(&token, sizeof token, c.rank() - 1, 9);
            ++token;
            c.send(&token, sizeof token, (c.rank() + 1) % P, 9);
        }
    });
}

INSTANTIATE_TEST_SUITE_P(Rings, MiniMpiScale, ::testing::Values(1, 2, 3, 4, 8, 16, 32));

// ----------------------------------------------------- robustness (PR 3)

TEST(MiniMpi, SizeMismatchDiagnosticsNameBothEnds) {
    // The error must identify who was receiving, from whom, on which tag,
    // and both byte counts — enough to debug a type mismatch from the log.
    World w(2);
    try {
        w.run([](Comm& c) {
            if (c.rank() == 0) {
                const int v = 0;
                c.send(&v, sizeof v, 1, 7);
            } else {
                double got;
                c.recv(&got, sizeof got, 0, 7);
            }
        });
        FAIL() << "expected a size-mismatch error";
    } catch (const ExecError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("src 0"), std::string::npos) << msg;
        EXPECT_NE(msg.find("tag 7"), std::string::npos) << msg;
        EXPECT_NE(msg.find("expected 8 bytes, got 4"), std::string::npos) << msg;
    }
}

TEST(MiniMpi, AnySourceDeliveryIsFifoPerSender) {
    // kAnySource must preserve each sender's own ordering even when
    // matching across sources.
    World w(2);
    w.run([](Comm& c) {
        if (c.rank() == 1) {
            for (int i = 0; i < 5; ++i) c.send(&i, sizeof i, 0, 3);
        } else {
            for (int i = 0; i < 5; ++i) {
                int got = -1;
                const int src = c.recv(&got, sizeof got, kAnySource, 3);
                EXPECT_EQ(1, src);
                EXPECT_EQ(i, got);  // FIFO within the (src, tag) stream
            }
        }
    });
}

TEST(MiniMpi, AbortDuringBcast) {
    World w(3);
    EXPECT_THROW(w.run([](Comm& c) {
                     if (c.rank() == 2) throw ExecError("die in bcast");
                     double v = 1.0;
                     c.bcast(&v, sizeof v, 0);
                 }),
                 ExecError);
    // Reusable afterwards.
    w.run([](Comm& c) { c.barrier(); });
}

TEST(MiniMpi, AbortDuringAllreduce) {
    World w(3);
    EXPECT_THROW(w.run([](Comm& c) {
                     if (c.rank() == 0) throw ExecError("die in allreduce");
                     c.allreduceSum(1.0);
                 }),
                 ExecError);
    w.run([](Comm& c) { c.barrier(); });
}

TEST(MiniMpi, RunDrainsStaleMailboxesAfterAbort) {
    // Regression: an aborted run used to leave in-flight messages queued,
    // so the next run() on the same World could deliver a stale payload.
    World w(2);
    EXPECT_THROW(w.run([](Comm& c) {
                     if (c.rank() == 0) {
                         const int stale = 111;
                         c.send(&stale, sizeof stale, 1, 9);
                         throw ExecError("die after send");
                     }
                     // Rank 1 blocks on a different tag so the tag-9 message
                     // is still undelivered when the abort fires.
                     int got = 0;
                     c.recv(&got, sizeof got, 0, 8);
                 }),
                 ExecError);
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            const int fresh = 222;
            c.send(&fresh, sizeof fresh, 1, 9);
        } else {
            int got = 0;
            c.recv(&got, sizeof got, 0, 9);
            EXPECT_EQ(222, got) << "stale message from the aborted run leaked through";
        }
    });
}

TEST(MiniMpi, RecvTimeoutDeliversWhenMessageArrives) {
    World w(2);
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            const int v = 42;
            c.send(&v, sizeof v, 1, 4);
        } else {
            int got = 0;
            const int src = c.recvTimeout(&got, sizeof got, 0, 4, 5000);
            EXPECT_EQ(0, src);
            EXPECT_EQ(42, got);
        }
    });
}

TEST(MiniMpi, RecvTimeoutExpires) {
    World w(2);
    try {
        w.run([](Comm& c) {
            if (c.rank() == 1) {
                int got = 0;
                c.recvTimeout(&got, sizeof got, 0, 4, 50);  // nothing coming
            }
        });
        FAIL() << "expected the receive to time out";
    } catch (const ExecError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("timeout"), std::string::npos) << msg;
        EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("tag=4"), std::string::npos) << msg;
    }
}

TEST(MiniMpi, RecvTimeoutRejectsNegative) {
    World w(1);
    EXPECT_THROW(w.run([](Comm& c) {
                     int got;
                     c.recvTimeout(&got, sizeof got, 0, 1, -5);
                 }),
                 UsageError);
}

TEST(MiniMpi, WatchdogFiresOnDeadlock) {
    // A classic head-to-head deadlock: both ranks receive first. The
    // watchdog must abort within its quantum and name every waiter.
    World w(2);
    w.setWatchdogMillis(150);
    EXPECT_EQ(150, w.watchdogMillis());
    try {
        w.run([](Comm& c) {
            int got = 0;
            c.recv(&got, sizeof got, 1 - c.rank(), 6);  // neither sends
        });
        FAIL() << "expected the watchdog to break the deadlock";
    } catch (const ExecError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("watchdog"), std::string::npos) << msg;
        EXPECT_NE(msg.find("rank 0: blocked in recv(src=1, tag=6"), std::string::npos) << msg;
        EXPECT_NE(msg.find("rank 1: blocked in recv(src=0, tag=6"), std::string::npos) << msg;
    }
    EXPECT_TRUE(w.watchdogFired());
    // The same world runs cleanly afterwards and the flag resets.
    w.run([](Comm& c) { c.barrier(); });
    EXPECT_FALSE(w.watchdogFired());
}

// ------------------------------------------- both transports (PR: wjrun)
//
// The same semantics suite against the threads AND the proc transport.
// Rules of the proc world: the rank body runs in a forked child, so gtest
// assertions there are invisible to the parent — every in-rank check
// throws ExecError instead (the transport carries the message back), and
// results cross the fork boundary only via Comm::publishResult. The two
// instantiations are split at discovery time: ProcXport/* carries the
// "proc" ctest label instead of "tsan" (forking a TSan'd process is
// unsupported).

namespace {
/// In-rank assertion: visible to the parent as a propagated ExecError.
void require(bool cond, const std::string& what) {
    if (!cond) throw ExecError("in-rank check failed: " + what);
}
} // namespace

class XportSemantics : public ::testing::TestWithParam<TransportKind> {};

TEST_P(XportSemantics, PointToPointAndTagMatching) {
    World w(2, GetParam());
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            int a = 1, b = 2;
            c.send(&a, sizeof a, 1, 10);
            c.send(&b, sizeof b, 1, 20);
        } else {
            int got = 0;
            c.recv(&got, sizeof got, 0, 20);  // out of order by tag
            require(got == 2, "tag 20 payload");
            c.recv(&got, sizeof got, 0, 10);
            require(got == 1, "tag 10 payload");
        }
    });
}

TEST_P(XportSemantics, FifoPerSourceAndTag) {
    World w(2, GetParam());
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            for (int i = 0; i < 50; ++i) c.send(&i, sizeof i, 1, 1);
        } else {
            for (int i = 0; i < 50; ++i) {
                int got = -1;
                c.recv(&got, sizeof got, 0, 1);
                require(got == i, "FIFO order at " + std::to_string(i));
            }
        }
    });
}

TEST_P(XportSemantics, AnySourceMatchesAllSenders) {
    World w(3, GetParam());
    w.run([](Comm& c) {
        if (c.rank() != 0) {
            const int v = c.rank() * 100;
            c.send(&v, sizeof v, 0, 5);
        } else {
            int sum = 0;
            for (int i = 0; i < 2; ++i) {
                int got = 0;
                const int src = c.recv(&got, sizeof got, kAnySource, 5);
                require(src * 100 == got, "payload names its source");
                sum += got;
            }
            require(sum == 300, "both senders seen");
        }
    });
}

TEST_P(XportSemantics, SendRecvRingExchange) {
    const int P = 4;
    World w(P, GetParam());
    w.run([&](Comm& c) {
        const int up = (c.rank() + 1) % P;
        const int down = (c.rank() + P - 1) % P;
        const float mine = static_cast<float>(c.rank());
        float fromDown = -1, fromUp = -1;
        c.sendrecv(&mine, sizeof mine, up, &fromDown, sizeof fromDown, down, 1);
        c.sendrecv(&mine, sizeof mine, down, &fromUp, sizeof fromUp, up, 2);
        require(fromDown == static_cast<float>(down), "halo from below");
        require(fromUp == static_cast<float>(up), "halo from above");
    });
}

TEST_P(XportSemantics, SendRecvToSelf) {
    World w(1, GetParam());
    w.run([](Comm& c) {
        int out = 9, in_ = 0;
        c.sendrecv(&out, sizeof out, 0, &in_, sizeof in_, 0, 3);
        require(in_ == 9, "buffered self-exchange");
    });
}

TEST_P(XportSemantics, Collectives) {
    const int P = 4;
    World w(P, GetParam());
    w.run([&](Comm& c) {
        double buf[3] = {0, 0, 0};
        if (c.rank() == 2) {
            buf[0] = 1.5;
            buf[1] = 2.5;
            buf[2] = 3.5;
        }
        c.bcast(buf, sizeof buf, 2);
        require(buf[0] == 1.5 && buf[2] == 3.5, "bcast payload");
        double expect = 0;
        for (int r = 0; r < P; ++r) expect += 0.1 * (r + 1);
        require(c.allreduceSum(0.1 * (c.rank() + 1)) == expect,
                "rank-order deterministic allreduce");
        require(c.allreduceMax(c.rank() == 1 ? 99.0 : 0.0) == 99.0, "allreduce max");
        c.barrier();
    });
}

TEST_P(XportSemantics, RepeatedCollectives) {
    World w(3, GetParam());
    w.run([](Comm& c) {
        for (int i = 0; i < 20; ++i) {
            require(c.allreduceSum(static_cast<double>(i)) == 3.0 * i,
                    "allreduce round " + std::to_string(i));
        }
    });
}

TEST_P(XportSemantics, WorldReusableAcrossRuns) {
    World w(2, GetParam());
    for (int iter = 0; iter < 3; ++iter) {
        w.run([](Comm& c) {
            int v = c.rank();
            int got = -1;
            c.sendrecv(&v, sizeof v, 1 - c.rank(), &got, sizeof got, 1 - c.rank(), 1);
            require(got == 1 - c.rank(), "pair exchange");
        });
    }
}

TEST_P(XportSemantics, LargePayloadCrossesTransport) {
    // 300 kB: above the threads pooled threshold AND above the proc ring
    // half-capacity, so this exercises the pool path and the Unix-socket
    // large-message path respectively.
    const size_t kBytes = 300000;
    World w(2, GetParam());
    w.run([&](Comm& c) {
        if (c.rank() == 0) {
            std::vector<uint8_t> buf(kBytes);
            for (size_t i = 0; i < kBytes; ++i) buf[i] = static_cast<uint8_t>(i * 7 % 251);
            c.send(buf.data(), buf.size(), 1, 2);
        } else {
            std::vector<uint8_t> buf(kBytes, 0);
            c.recv(buf.data(), buf.size(), 0, 2);
            for (size_t i = 0; i < kBytes; ++i) {
                require(buf[i] == static_cast<uint8_t>(i * 7 % 251),
                        "large payload byte " + std::to_string(i));
            }
        }
    });
    EXPECT_EQ(static_cast<int64_t>(kBytes), w.bytesSent());
}

TEST_P(XportSemantics, SizeMismatchThrowsWithTransportContext) {
    World w(2, GetParam());
    try {
        w.run([](Comm& c) {
            if (c.rank() == 0) {
                int v = 0;
                c.send(&v, sizeof v, 1, 1);
            } else {
                double got;
                c.recv(&got, sizeof got, 0, 1);
            }
        });
        FAIL() << "expected a size-mismatch error";
    } catch (const ExecError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("expected 8 bytes, got 4"), std::string::npos) << msg;
        EXPECT_NE(msg.find("transport="), std::string::npos) << msg;
    }
}

TEST_P(XportSemantics, InvalidRankThrows) {
    World w(2, GetParam());
    EXPECT_THROW(w.run([](Comm& c) {
        int v = 0;
        if (c.rank() == 0) c.send(&v, sizeof v, 5, 1);
        else c.recv(&v, sizeof v, 0, 1);
    }),
                 ExecError);
}

TEST_P(XportSemantics, RecvTimeoutNamesTransportAndPeer) {
    // Satellite contract: the timeout text says which transport the world
    // ran on, and (proc) who the absent peer was, down to its pid.
    World w(2, GetParam());
    try {
        w.run([](Comm& c) {
            if (c.rank() == 1) {
                int got = 0;
                c.recvTimeout(&got, sizeof got, 0, 4, 150);  // nothing coming
            } else {
                std::this_thread::sleep_for(std::chrono::milliseconds(400));
            }
        });
        FAIL() << "expected the receive to time out";
    } catch (const ExecError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("timeout"), std::string::npos) << msg;
        EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("tag=4"), std::string::npos) << msg;
        if (GetParam() == TransportKind::Proc) {
            EXPECT_NE(msg.find("transport=proc"), std::string::npos) << msg;
            EXPECT_NE(msg.find("peer pid"), std::string::npos) << msg;
        } else {
            EXPECT_NE(msg.find("transport=threads"), std::string::npos) << msg;
        }
    }
}

TEST_P(XportSemantics, PublishedResultCrossesTheWorldBoundary) {
    World w(2, GetParam());
    w.run([](Comm& c) {
        const double sum = c.allreduceSum(c.rank() + 1.0);
        if (c.rank() == 0) {
            int64_t bits = 0;
            std::memcpy(&bits, &sum, sizeof sum);
            c.publishResult(5, bits);
        }
    });
    int kind = 0;
    int64_t bits = 0;
    ASSERT_TRUE(w.takeResult(&kind, &bits));
    EXPECT_EQ(5, kind);
    double sum = 0;
    std::memcpy(&sum, &bits, sizeof sum);
    EXPECT_DOUBLE_EQ(3.0, sum);
    EXPECT_FALSE(w.takeResult(&kind, &bits)) << "takeResult must clear the slot";
}

TEST_P(XportSemantics, InstrumentationCounts) {
    World w(2, GetParam());
    w.run([](Comm& c) {
        if (c.rank() == 0) {
            float buf[16] = {};
            c.sendF32(buf, 16, 1, 1);
        } else {
            float buf[16];
            c.recvF32(buf, 16, 0, 1);
        }
        c.barrier();  // barrier traffic must stay invisible to the stats
    });
    EXPECT_EQ(1, w.messagesSent());
    EXPECT_EQ(static_cast<int64_t>(16 * sizeof(float)), w.bytesSent());
}

INSTANTIATE_TEST_SUITE_P(ThreadsXport, XportSemantics,
                         ::testing::Values(TransportKind::Threads),
                         [](const auto&) { return std::string("threads"); });
INSTANTIATE_TEST_SUITE_P(ProcXport, XportSemantics, ::testing::Values(TransportKind::Proc),
                         [](const auto&) { return std::string("proc"); });

// Stats must be bit-for-bit identical across transports for identical
// traffic — the accounting half of the determinism contract.
TEST(ProcXportCross, StatsMatchAcrossTransports) {
    auto traffic = [](Comm& c) {
        double v = c.rank() + 0.5;
        c.bcast(&v, sizeof v, 0);
        c.allreduceSum(v);
        c.barrier();
        if (c.rank() == 0) {
            std::vector<uint8_t> big(4096, 1);
            c.send(big.data(), big.size(), 1, 3);
        } else if (c.rank() == 1) {
            std::vector<uint8_t> big(4096);
            c.recv(big.data(), big.size(), 0, 3);
        }
    };
    World threads(3, TransportKind::Threads);
    threads.run(traffic);
    World proc(3, TransportKind::Proc);
    proc.run(traffic);
    EXPECT_EQ(threads.messagesSent(), proc.messagesSent());
    EXPECT_EQ(threads.bytesSent(), proc.bytesSent());
}

TEST(MiniMpi, WatchdogSparesProgressingWorlds) {
    // Slow-but-alive traffic must never trip the stall detector: each
    // exchange bumps the progress counter, so consecutive quiet samples
    // never accumulate.
    World w(2);
    w.setWatchdogMillis(60);
    w.run([](Comm& c) {
        for (int i = 0; i < 8; ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            int v = i, got = -1;
            c.sendrecv(&v, sizeof v, 1 - c.rank(), &got, sizeof got, 1 - c.rank(), 2);
            EXPECT_EQ(i, got);
        }
    });
    EXPECT_FALSE(w.watchdogFired());
}
